//! # cobra
//!
//! Facade crate for the COBRA branch-predictor composition framework
//! reproduction (ISPASS 2021). Re-exports the workspace crates under one
//! roof so examples and downstream users need a single dependency:
//!
//! * [`core`] — the COBRA interface, sub-component library, and composer;
//! * [`uarch`] — the BOOM-like host core model;
//! * [`workloads`] — synthetic SPECint17 profiles and kernels;
//! * [`area`] — the FinFET-class area model;
//! * [`sim`] — the shared simulation primitives.
//!
//! ```
//! use cobra::core::designs;
//! use cobra::uarch::{Core, CoreConfig};
//! use cobra::workloads::kernels;
//!
//! let mut core = Core::new(
//!     &designs::tage_l(),
//!     CoreConfig::boom_4wide(),
//!     kernels::dhrystone().build(),
//! )?;
//! let report = core.run(20_000, "dhrystone");
//! assert!(report.counters.ipc() > 0.5);
//! # Ok::<(), cobra::core::ComposeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cobra_area as area;
pub use cobra_core as core;
pub use cobra_sim as sim;
pub use cobra_uarch as uarch;
pub use cobra_workloads as workloads;
