//! Cross-crate integration tests: workloads → core model → predictor unit,
//! checking the end-to-end behaviours the paper's evaluation relies on.

use cobra::core::composer::GhistRepairMode;
use cobra::core::designs;
use cobra::uarch::{Core, CoreConfig, PerfReport};
use cobra::workloads::{kernels, spec17, ProgramSpec};

const INSTS: u64 = 60_000;

fn run(design: &cobra::core::composer::Design, cfg: CoreConfig, spec: &ProgramSpec) -> PerfReport {
    let mut core = Core::new(design, cfg, spec.build()).expect("design composes");
    core.run(INSTS, &spec.name)
}

#[test]
fn all_designs_run_all_kernels_sanely() {
    for design in designs::all() {
        for name in ["dhrystone", "coremark", "loop-stress"] {
            let spec = match name {
                "dhrystone" => kernels::dhrystone(),
                "coremark" => kernels::coremark(false),
                _ => kernels::loop_stress(),
            };
            let r = run(&design, CoreConfig::boom_4wide(), &spec);
            let c = &r.counters;
            assert!(
                c.committed_insts >= INSTS,
                "{}/{name}: too few instructions",
                design.name
            );
            assert!(
                c.ipc() > 0.1 && c.ipc() <= 8.0,
                "{}/{name}: IPC {}",
                design.name,
                c.ipc()
            );
            assert!(
                c.branch_accuracy() > 50.0 && c.branch_accuracy() <= 100.0,
                "{}/{name}: accuracy {}",
                design.name,
                c.branch_accuracy()
            );
            assert!(
                c.cond_branches > 0,
                "{}/{name}: no branches committed",
                design.name
            );
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let spec = spec17::spec17("gcc");
    let a = run(&designs::tage_l(), CoreConfig::boom_4wide(), &spec);
    let b = run(&designs::tage_l(), CoreConfig::boom_4wide(), &spec);
    assert_eq!(a.counters, b.counters, "same seed must give identical runs");
}

#[test]
fn tage_l_beats_untagged_designs_on_history_code() {
    // Depth-20 correlations exceed B2's 16-bit global history but sit
    // inside TAGE's 26-bit table.
    let spec = kernels::history_depth(20);
    let tage = run(&designs::tage_l(), CoreConfig::boom_4wide(), &spec);
    let b2 = run(&designs::b2(), CoreConfig::boom_4wide(), &spec);
    assert!(
        tage.counters.branch_accuracy() >= b2.counters.branch_accuracy(),
        "TAGE-L {} vs B2 {}",
        tage.counters.branch_accuracy(),
        b2.counters.branch_accuracy()
    );
}

#[test]
fn loop_predictor_earns_its_keep() {
    // TAGE-L (with the loop corrector) must be strong on counted loops.
    let r = run(
        &designs::tage_l(),
        CoreConfig::boom_4wide(),
        &kernels::loop_stress(),
    );
    assert!(
        r.counters.branch_accuracy() > 97.0,
        "loop accuracy {}",
        r.counters.branch_accuracy()
    );
}

#[test]
fn serialized_fetch_costs_ipc() {
    let spec = kernels::dhrystone();
    let base = run(&designs::tage_l(), CoreConfig::boom_4wide(), &spec);
    let mut cfg = CoreConfig::boom_4wide();
    cfg.serialize_branches = true;
    let ser = run(&designs::tage_l(), cfg, &spec);
    assert!(
        ser.counters.ipc() < base.counters.ipc() * 0.97,
        "serialization must cost IPC: {} vs {}",
        ser.counters.ipc(),
        base.counters.ipc()
    );
}

#[test]
fn replay_mode_is_at_least_as_accurate_as_snapshot_only() {
    // Section VI-B's direction on a history-sensitive workload.
    let spec = spec17::spec17("gcc");
    let snap = run(
        &designs::tage_l(),
        CoreConfig::boom_4wide().with_repair_mode(GhistRepairMode::SnapshotOnly),
        &spec,
    );
    let replay = run(
        &designs::tage_l(),
        CoreConfig::boom_4wide().with_repair_mode(GhistRepairMode::ReplayFetch),
        &spec,
    );
    assert!(
        replay.counters.mpki() <= snap.counters.mpki() * 1.02,
        "replay {} vs snapshot {}",
        replay.counters.mpki(),
        snap.counters.mpki()
    );
}

#[test]
fn sfb_predication_improves_accuracy_for_every_design() {
    for design in designs::all() {
        let base = run(&design, CoreConfig::boom_4wide(), &kernels::coremark(false));
        let sfb = run(&design, CoreConfig::boom_4wide(), &kernels::coremark(true));
        assert!(
            sfb.counters.branch_accuracy() > base.counters.branch_accuracy(),
            "{}: {} vs {}",
            design.name,
            sfb.counters.branch_accuracy(),
            base.counters.branch_accuracy()
        );
    }
}

#[test]
fn tage_latency_sweep_keeps_accuracy() {
    // Section VI-A: varying the TAGE latency must not change accuracy
    // much; the interface isolates the change.
    let spec = spec17::spec17("gcc");
    let l2 = run(
        &designs::tage_l_with_latency(2),
        CoreConfig::boom_4wide(),
        &spec,
    );
    let l3 = run(
        &designs::tage_l_with_latency(3),
        CoreConfig::boom_4wide(),
        &spec,
    );
    let diff = (l2.counters.branch_accuracy() - l3.counters.branch_accuracy()).abs();
    assert!(diff < 2.0, "accuracy moved {diff} points with latency");
    assert!(l2.counters.ipc() >= l3.counters.ipc() * 0.97);
}

#[test]
fn extension_designs_run() {
    for design in [designs::tage_sc_l(), designs::perceptron()] {
        let r = run(&design, CoreConfig::boom_4wide(), &kernels::dhrystone());
        assert!(
            r.counters.ipc() > 0.3,
            "{}: IPC {}",
            design.name,
            r.counters.ipc()
        );
    }
}

#[test]
fn spec_suite_ordering_headline() {
    // The paper's headline: TAGE-L has the best harmonic-mean IPC.
    let mut means = Vec::new();
    for design in designs::all() {
        let ipcs: Vec<f64> = ["gcc", "leela", "x264"]
            .iter()
            .map(|w| {
                run(&design, CoreConfig::boom_4wide(), &spec17::spec17(w))
                    .counters
                    .ipc()
            })
            .collect();
        means.push((design.name.clone(), cobra::uarch::harmonic_mean(&ipcs)));
    }
    let tage = means.iter().find(|(n, _)| n == "TAGE-L").unwrap().1;
    for (name, m) in &means {
        assert!(
            tage >= *m - 1e-9,
            "TAGE-L ({tage}) must not lose to {name} ({m})"
        );
    }
}

#[test]
fn wrong_path_speculation_is_bounded() {
    // The history file bounds in-flight speculation; a hostile workload
    // must not leak entries.
    let design = designs::b2();
    let mut core = Core::new(
        &design,
        CoreConfig::boom_4wide(),
        spec17::spec17("leela").build(),
    )
    .expect("composes");
    let r = core.run(INSTS, "leela");
    assert!(core.bpu().in_flight() <= core.bpu().config().history_file_entries);
    assert!(r.counters.cond_mispredicts > 0, "leela must mispredict");
}

#[test]
fn stock_designs_respect_their_sram_port_budgets() {
    // Every component declares single/dual-ported macros; a full simulated
    // run must never demand more ports per cycle than declared — the
    // property the metadata field exists to make achievable (paper
    // Section III-D).
    for design in designs::all() {
        let mut core = Core::new(
            &design,
            CoreConfig::boom_4wide(),
            spec17::spec17("gcc").build(),
        )
        .expect("composes");
        core.run(INSTS, "gcc");
        assert_eq!(
            core.bpu().port_violations(),
            0,
            "{} violated an SRAM port budget",
            design.name
        );
    }
}
