//! Interface-conformance sweep over every stock registry component.
//!
//! `validate::check_component` is the per-component assertion bench; this
//! test guarantees no component ships in a built-in design without passing
//! it — including the extension components (ITTAGE, statistical
//! corrector, perceptron) that only appear in non-paper designs.

use cobra::core::designs;
use cobra::core::validate::{check_component, CheckConfig};

/// Every label the stock registry resolves. Kept explicit so a new
/// component cannot be registered without extending the conformance sweep.
const EXPECTED_LABELS: &[&str] = &[
    "BIM2", "BTB2", "GBIM2", "GTAG3", "ITTAGE3", "LBIM2", "LOOP3", "PERC3", "SC3", "TAGE3",
    "TOURNEY3", "UBTB1",
];

#[test]
fn stock_registry_covers_expected_labels() {
    let registry = designs::stock_registry();
    let mut names: Vec<String> = registry.names().map(String::from).collect();
    names.sort();
    assert_eq!(names, EXPECTED_LABELS, "stock registry labels changed");
}

#[test]
fn every_registry_component_conforms() {
    let registry = designs::stock_registry();
    for label in EXPECTED_LABELS {
        for width in [4u8, 8] {
            let mut c = registry
                .build(label, width, None)
                .expect("label is in the stock registry");
            let violations = check_component(
                &mut c,
                CheckConfig {
                    width,
                    ..CheckConfig::default()
                },
            );
            assert!(
                violations.is_empty(),
                "{label} (width {width}) violates the interface contract: {violations:?}"
            );
        }
    }
}

#[test]
fn every_design_registry_component_conforms() {
    // Also sweep each design's own registry: parameterizations can differ
    // from the stock labels (e.g. TAGE-L's smaller BIM2).
    for design in designs::catalog() {
        let names: Vec<String> = design.registry.names().map(String::from).collect();
        for label in names {
            let mut c = design
                .registry
                .build(&label, 8, None)
                .expect("label from this registry");
            let violations = check_component(
                &mut c,
                CheckConfig {
                    width: 8,
                    ..CheckConfig::default()
                },
            );
            assert!(
                violations.is_empty(),
                "{}::{label} violates the interface contract: {violations:?}",
                design.name
            );
        }
    }
}
