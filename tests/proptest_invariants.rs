//! Randomized property tests over the framework's core data structures and
//! invariants.
//!
//! The build environment has no access to crates.io, so instead of
//! `proptest` these tests drive each invariant with a seeded
//! [`SplitMix64`] generator: same coverage style (hundreds of random
//! cases per property), fully deterministic, zero external dependencies.

use cobra::core::composer::Topology;
use cobra::core::{BranchKind, PredictionBundle, SlotPrediction};
use cobra::sim::{CircularBuffer, FoldedHistory, HistoryRegister, SaturatingCounter, SplitMix64};

const CASES: u64 = 300;

fn arb_kind(rng: &mut SplitMix64) -> Option<BranchKind> {
    match rng.below(6) {
        0 => None,
        1 => Some(BranchKind::Conditional),
        2 => Some(BranchKind::Jump),
        3 => Some(BranchKind::Call),
        4 => Some(BranchKind::Ret),
        _ => Some(BranchKind::Indirect),
    }
}

fn arb_slot(rng: &mut SplitMix64) -> SlotPrediction {
    SlotPrediction::new(
        arb_kind(rng),
        match rng.below(3) {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        },
        rng.chance(0.5).then(|| rng.below(1 << 40)),
    )
}

fn arb_bundle(rng: &mut SplitMix64) -> PredictionBundle {
    let width = 1 + rng.below(8) as u8;
    let mut b = PredictionBundle::new(width);
    for i in 0..width as usize {
        *b.slot_mut(i) = arb_slot(rng);
    }
    b
}

#[test]
fn override_by_empty_is_identity() {
    let mut rng = SplitMix64::new(0x0b1);
    for _ in 0..CASES {
        let b = arb_bundle(&mut rng);
        let empty = PredictionBundle::new(b.width());
        assert_eq!(b.overridden_by(&empty), b);
    }
}

#[test]
fn override_is_idempotent() {
    let mut rng = SplitMix64::new(0x0b2);
    for _ in 0..CASES {
        let width = 1 + rng.below(8) as u8;
        let mut b = PredictionBundle::new(width);
        let mut o = PredictionBundle::new(width);
        for i in 0..width as usize {
            *b.slot_mut(i) = arb_slot(&mut rng);
            *o.slot_mut(i) = arb_slot(&mut rng);
        }
        let once = b.overridden_by(&o);
        let twice = once.overridden_by(&o);
        assert_eq!(once, twice);
    }
}

#[test]
fn redirect_slot_always_wants_redirect() {
    let mut rng = SplitMix64::new(0x0b3);
    for _ in 0..CASES {
        let b = arb_bundle(&mut rng);
        if let Some((slot, target)) = b.redirect() {
            assert!(b.slot(slot).wants_redirect());
            assert_eq!(b.slot(slot).target(), Some(target));
            // Nothing earlier redirects with a target.
            for i in 0..slot {
                assert!(!(b.slot(i).wants_redirect() && b.slot(i).target().is_some()));
            }
        }
    }
}

#[test]
fn history_bits_bounded_by_width() {
    let mut rng = SplitMix64::new(0x0b4);
    for _ in 0..CASES {
        let b = arb_bundle(&mut rng);
        let n = b.history_bits().count();
        assert!(n <= b.width() as usize);
    }
}

#[test]
fn next_pc_is_target_or_block_fallthrough() {
    let mut rng = SplitMix64::new(0x0b5);
    for _ in 0..CASES {
        let b = arb_bundle(&mut rng);
        let pc = rng.below(1 << 30) * 2;
        let next = b.next_pc(pc, 16);
        match b.redirect() {
            Some((_, t)) => assert_eq!(next, t),
            None => assert_eq!(next, (pc & !15) + 16),
        }
    }
}

#[test]
fn history_register_matches_vec_model() {
    let mut rng = SplitMix64::new(0x0c1);
    for _ in 0..100 {
        let width = 1 + rng.below(199) as u32;
        let n_pushes = rng.below(300);
        let mut h = HistoryRegister::new(width);
        let mut model: Vec<bool> = Vec::new(); // newest first
        for _ in 0..n_pushes {
            let t = rng.chance(0.5);
            h.push(t);
            model.insert(0, t);
            model.truncate(width as usize);
        }
        for (i, &bit) in model.iter().enumerate() {
            assert_eq!(h.bit(i as u32), bit, "bit {i} mismatch");
        }
        let n = width.min(24);
        if model.len() >= n as usize {
            let mut expect = 0u64;
            for (i, &bit) in model.iter().enumerate().take(n as usize) {
                expect |= (bit as u64) << i;
            }
            assert_eq!(h.low_bits(n), expect);
        }
    }
}

#[test]
fn snapshot_restore_is_exact() {
    let mut rng = SplitMix64::new(0x0c2);
    for _ in 0..100 {
        let width = 1 + rng.below(129) as u32;
        let prefix: Vec<bool> = (0..rng.below(100)).map(|_| rng.chance(0.5)).collect();
        let suffix: Vec<bool> = (0..rng.below(100)).map(|_| rng.chance(0.5)).collect();
        let mut h = HistoryRegister::new(width);
        h.push_all(prefix.iter().copied());
        let snap = h.snapshot();
        let reference = h.clone();
        h.push_all(suffix.iter().copied());
        h.restore(&snap);
        assert_eq!(h, reference);
    }
}

#[test]
fn folded_history_tracks_reference() {
    let mut rng = SplitMix64::new(0x0c3);
    for _ in 0..100 {
        let length = 1 + rng.below(63) as u32;
        let width = 1 + rng.below(15) as u32;
        let n_pushes = 1 + rng.below(199);
        let mut ghist = HistoryRegister::new(length + 1);
        let mut fold = FoldedHistory::new(length, width);
        for _ in 0..n_pushes {
            let t = rng.chance(0.5);
            let outgoing = ghist.bit(length - 1);
            fold.update(t, outgoing);
            ghist.push(t);
            assert_eq!(fold.value(), ghist.folded(length, width));
        }
    }
}

#[test]
fn saturating_counter_stays_in_range() {
    let mut rng = SplitMix64::new(0x0c4);
    for _ in 0..100 {
        let bits = 1 + rng.below(8) as u8;
        let n_ops = rng.below(100);
        let mut c = SaturatingCounter::weakly_taken(bits);
        for _ in 0..n_ops {
            c.train(rng.chance(0.5));
            assert!(c.value() <= c.max());
        }
        // Saturate up: must predict taken.
        for _ in 0..(1u32 << bits) {
            c.train(true);
        }
        assert!(c.is_taken() && c.is_strong());
    }
}

#[test]
fn circular_buffer_matches_deque_model() {
    let mut rng = SplitMix64::new(0x0c5);
    for _ in 0..100 {
        let capacity = 1 + rng.below(15) as usize;
        let n_ops = rng.below(200);
        let mut buf: CircularBuffer<u32> = CircularBuffer::new(capacity);
        let mut model: std::collections::VecDeque<(u64, u32)> = Default::default();
        let mut next_val = 0u32;
        let mut next_token = 0u64;
        for _ in 0..n_ops {
            match rng.below(4) {
                0 => {
                    let r = buf.push(next_val);
                    if model.len() < capacity {
                        let t = r.expect("model says there is room");
                        assert_eq!(t, next_token);
                        model.push_back((next_token, next_val));
                        next_token += 1;
                    } else {
                        assert!(r.is_err());
                    }
                    next_val += 1;
                }
                1 => {
                    let popped = buf.pop();
                    let expect = model.pop_front();
                    assert_eq!(popped, expect);
                }
                2 => {
                    // Random access on a live token.
                    if let Some(&(t, v)) = model.front() {
                        assert_eq!(buf.get(t), Some(&v));
                    }
                }
                _ => {
                    // Squash after the oldest (keep only it).
                    if let Some(&(t, _)) = model.front() {
                        buf.squash_after(t);
                        model.truncate(1);
                        next_token = t + 1;
                    }
                }
            }
            assert_eq!(buf.len(), model.len());
        }
    }
}

#[test]
fn splitmix_below_respects_bounds() {
    let mut seeder = SplitMix64::new(0x0c6);
    for _ in 0..100 {
        let seed = seeder.next_u64();
        let bound = 1 + seeder.below((1 << 40) - 1);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..20 {
            assert!(rng.below(bound) < bound);
        }
    }
}

fn arb_name(rng: &mut SplitMix64) -> String {
    let first = (b'A' + rng.below(26) as u8) as char;
    let mut s = String::new();
    s.push(first);
    for _ in 0..rng.below(7) {
        let c = match rng.below(36) {
            n @ 0..=25 => (b'A' + n as u8) as char,
            n => (b'0' + (n - 26) as u8) as char,
        };
        s.push(c);
    }
    s
}

/// Random topology whose `Over` left operands are always leaves — the
/// shapes expressible in the paper's notation.
fn arb_topology(rng: &mut SplitMix64, depth: u32) -> Topology {
    if depth == 0 || rng.chance(0.4) {
        return Topology::Leaf(arb_name(rng));
    }
    if rng.chance(0.5) {
        Topology::Over(
            Box::new(Topology::Leaf(arb_name(rng))),
            Box::new(arb_topology(rng, depth - 1)),
        )
    } else {
        let n = 2 + rng.below(2) as usize;
        Topology::Arbiter {
            selector: arb_name(rng),
            inputs: (0..n).map(|_| arb_topology(rng, depth - 1)).collect(),
        }
    }
}

#[test]
fn topology_display_parse_round_trip() {
    let mut rng = SplitMix64::new(0x0d1);
    for _ in 0..CASES {
        let t = arb_topology(&mut rng, 3);
        let text = t.to_string();
        let parsed = Topology::parse(&text).expect("display must parse");
        assert_eq!(parsed, t);
    }
}
