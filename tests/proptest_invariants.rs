//! Property-based tests over the framework's core data structures and
//! invariants.

use cobra::core::composer::Topology;
use cobra::core::{BranchKind, PredictionBundle, SlotPrediction};
use cobra::sim::{CircularBuffer, FoldedHistory, HistoryRegister, SaturatingCounter, SplitMix64};
use proptest::prelude::*;

fn arb_slot() -> impl Strategy<Value = SlotPrediction> {
    (
        proptest::option::of(prop_oneof![
            Just(BranchKind::Conditional),
            Just(BranchKind::Jump),
            Just(BranchKind::Call),
            Just(BranchKind::Ret),
            Just(BranchKind::Indirect),
        ]),
        proptest::option::of(any::<bool>()),
        proptest::option::of(0u64..1 << 40),
    )
        .prop_map(|(kind, taken, target)| SlotPrediction { kind, taken, target })
}

fn arb_bundle() -> impl Strategy<Value = PredictionBundle> {
    (1u8..=8, proptest::collection::vec(arb_slot(), 8)).prop_map(|(width, slots)| {
        let mut b = PredictionBundle::new(width);
        for (i, s) in slots.iter().enumerate().take(width as usize) {
            *b.slot_mut(i) = *s;
        }
        b
    })
}

proptest! {
    #[test]
    fn override_by_empty_is_identity(b in arb_bundle()) {
        let empty = PredictionBundle::new(b.width());
        prop_assert_eq!(b.overridden_by(&empty), b);
    }

    #[test]
    fn override_is_idempotent(
        width in 1u8..=8,
        bs in proptest::collection::vec(arb_slot(), 8),
        os in proptest::collection::vec(arb_slot(), 8),
    ) {
        let mut b = PredictionBundle::new(width);
        let mut o = PredictionBundle::new(width);
        for i in 0..width as usize {
            *b.slot_mut(i) = bs[i];
            *o.slot_mut(i) = os[i];
        }
        let once = b.overridden_by(&o);
        let twice = once.overridden_by(&o);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn redirect_slot_always_wants_redirect(b in arb_bundle()) {
        if let Some((slot, target)) = b.redirect() {
            prop_assert!(b.slot(slot).wants_redirect());
            prop_assert_eq!(b.slot(slot).target, Some(target));
            // Nothing earlier redirects with a target.
            for i in 0..slot {
                prop_assert!(!(b.slot(i).wants_redirect() && b.slot(i).target.is_some()));
            }
        }
    }

    #[test]
    fn history_bits_bounded_by_width(b in arb_bundle()) {
        let n = b.history_bits().count();
        prop_assert!(n <= b.width() as usize);
    }

    #[test]
    fn next_pc_is_target_or_block_fallthrough(b in arb_bundle(), pc in 0u64..1 << 30) {
        let pc = pc * 2;
        let next = b.next_pc(pc, 16);
        match b.redirect() {
            Some((_, t)) => prop_assert_eq!(next, t),
            None => {
                prop_assert_eq!(next, (pc & !15) + 16);
            }
        }
    }
}

proptest! {
    #[test]
    fn history_register_matches_vec_model(
        width in 1u32..200,
        pushes in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        let mut h = HistoryRegister::new(width);
        let mut model: Vec<bool> = Vec::new(); // newest first
        for &t in &pushes {
            h.push(t);
            model.insert(0, t);
            model.truncate(width as usize);
        }
        for (i, &bit) in model.iter().enumerate() {
            prop_assert_eq!(h.bit(i as u32), bit, "bit {} mismatch", i);
        }
        let n = width.min(24);
        if model.len() >= n as usize {
            let mut expect = 0u64;
            for i in 0..n {
                expect |= (model[i as usize] as u64) << i;
            }
            prop_assert_eq!(h.low_bits(n), expect);
        }
    }

    #[test]
    fn snapshot_restore_is_exact(
        width in 1u32..130,
        prefix in proptest::collection::vec(any::<bool>(), 0..100),
        suffix in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let mut h = HistoryRegister::new(width);
        h.push_all(prefix.iter().copied());
        let snap = h.snapshot();
        let reference = h.clone();
        h.push_all(suffix.iter().copied());
        h.restore(&snap);
        prop_assert_eq!(h, reference);
    }

    #[test]
    fn folded_history_tracks_reference(
        length in 1u32..64,
        width in 1u32..16,
        pushes in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut ghist = HistoryRegister::new(length + 1);
        let mut fold = FoldedHistory::new(length, width);
        for &t in &pushes {
            let outgoing = ghist.bit(length - 1);
            fold.update(t, outgoing);
            ghist.push(t);
            prop_assert_eq!(fold.value(), ghist.folded(length, width));
        }
    }

    #[test]
    fn saturating_counter_stays_in_range(
        bits in 1u8..=8,
        ops in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let mut c = SaturatingCounter::weakly_taken(bits);
        for &t in &ops {
            c.train(t);
            prop_assert!(c.value() <= c.max());
        }
        // Saturate up: must predict taken.
        for _ in 0..(1 << bits) {
            c.train(true);
        }
        prop_assert!(c.is_taken() && c.is_strong());
    }

    #[test]
    fn circular_buffer_matches_deque_model(
        capacity in 1usize..16,
        ops in proptest::collection::vec(0u8..4, 0..200),
    ) {
        let mut buf: CircularBuffer<u32> = CircularBuffer::new(capacity);
        let mut model: std::collections::VecDeque<(u64, u32)> = Default::default();
        let mut next_val = 0u32;
        let mut next_token = 0u64;
        for op in ops {
            match op {
                0 => {
                    let r = buf.push(next_val);
                    if model.len() < capacity {
                        let t = r.expect("model says there is room");
                        prop_assert_eq!(t, next_token);
                        model.push_back((next_token, next_val));
                        next_token += 1;
                    } else {
                        prop_assert!(r.is_err());
                    }
                    next_val += 1;
                }
                1 => {
                    let popped = buf.pop();
                    let expect = model.pop_front();
                    prop_assert_eq!(popped, expect);
                }
                2 => {
                    // Random access on a live token.
                    if let Some(&(t, v)) = model.front() {
                        prop_assert_eq!(buf.get(t), Some(&v));
                    }
                }
                _ => {
                    // Squash after the oldest (keep only it).
                    if let Some(&(t, _)) = model.front() {
                        buf.squash_after(t);
                        model.truncate(1);
                        next_token = t + 1;
                    }
                }
            }
            prop_assert_eq!(buf.len(), model.len());
        }
    }

    #[test]
    fn splitmix_below_respects_bounds(seed in any::<u64>(), bound in 1u64..1 << 40) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..20 {
            prop_assert!(rng.below(bound) < bound);
        }
    }
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    let leaf = "[A-Z][A-Z0-9]{0,6}".prop_map(Topology::Leaf);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                // `Over` left operands must be leaves for composability,
                // but Display/parse round-trips arbitrary shapes.
                Topology::Over(Box::new(a), Box::new(b))
            }),
            (
                "[A-Z][A-Z0-9]{0,6}",
                proptest::collection::vec(inner, 2..4)
            )
                .prop_map(|(selector, inputs)| Topology::Arbiter { selector, inputs }),
        ]
    })
}

proptest! {
    #[test]
    fn topology_display_parse_round_trip(t in arb_topology()) {
        // Only topologies whose Over-left operands are leaves are
        // expressible in the notation; skip the rest.
        fn expressible(t: &Topology) -> bool {
            match t {
                Topology::Leaf(_) => true,
                Topology::Over(a, b) => {
                    matches!(**a, Topology::Leaf(_)) && expressible(b)
                }
                Topology::Arbiter { inputs, .. } => inputs.iter().all(expressible),
            }
        }
        prop_assume!(expressible(&t));
        let text = t.to_string();
        let parsed = Topology::parse(&text).expect("display must parse");
        prop_assert_eq!(parsed, t);
    }
}
