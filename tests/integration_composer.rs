//! Cross-crate integration tests at the composer/BPU protocol level:
//! driving the predictor unit the way the host frontend does, and checking
//! the management structures' invariants.

use cobra::core::composer::{BpuConfig, BranchPredictorUnit, Design};
use cobra::core::validate::{check_component, CheckConfig};
use cobra::core::{designs, BranchKind, SlotResolution};
use cobra::sim::SplitMix64;

fn build(design: &Design) -> BranchPredictorUnit {
    BranchPredictorUnit::build(
        design,
        BpuConfig {
            history_file_entries: 16,
            ..BpuConfig::default()
        },
    )
    .expect("stock design composes")
}

fn cond(slot: u8, taken: bool, target: u64) -> SlotResolution {
    SlotResolution {
        slot,
        kind: BranchKind::Conditional,
        taken,
        target,
    }
}

#[test]
fn every_registered_component_conforms_to_the_interface() {
    // The paper validates sub-components independently before composing
    // (Section V-A); do the same for every component of every design.
    for design in [
        designs::tournament(),
        designs::b2(),
        designs::tage_l(),
        designs::tage_sc_l(),
        designs::perceptron(),
    ] {
        let mut names: Vec<&str> = design.registry.names().collect();
        names.sort_unstable();
        for name in names {
            let mut c = design
                .registry
                .build(name, 8, None)
                .expect("name registered");
            let v = check_component(&mut c, CheckConfig::default());
            assert!(
                v.is_empty(),
                "{}::{name} violates the interface: {v:?}",
                design.name
            );
        }
    }
}

#[test]
fn speculative_history_survives_a_random_protocol_storm() {
    // Drive the full query/speculate/revise/accept/resolve/commit protocol
    // with randomized decisions and check the structural invariants the
    // management structures must hold.
    let mut bpu = build(&designs::tage_l());
    let mut rng = SplitMix64::new(0x57011);
    let mut live: Vec<u64> = Vec::new();
    for step in 0..20_000u64 {
        bpu.tick();
        // Fetch.
        if rng.chance(0.8) {
            if let Some(id) = bpu.query(0x1_0000 + rng.below(1 << 9) * 16) {
                bpu.speculate(id, 1);
                live.push(id);
            }
        }
        // Accept the oldest in-flight packet sometimes.
        if rng.chance(0.7) {
            if let Some(&id) = live.first() {
                let depth = bpu.depth();
                if let Some(p) = bpu.prediction(id, depth).copied() {
                    bpu.accept(id, p);
                    // Resolve one branch, occasionally mispredicted.
                    let taken = rng.chance(0.5);
                    let misp = rng.chance(0.15);
                    let redirect = bpu.resolve(id, cond(0, taken, 0x4_0000), misp);
                    if misp {
                        assert!(redirect.is_some(), "mispredict must redirect");
                        // Everything younger is gone.
                        live.retain(|&t| t <= id);
                    }
                    live.retain(|&t| t != id || !misp);
                    let _ = bpu.commit_front();
                    live.retain(|&t| t != id);
                }
            }
        }
        // Occasional full flush (exception).
        if rng.chance(0.01) {
            bpu.flush();
            live.clear();
        }
        assert!(
            bpu.in_flight() <= bpu.config().history_file_entries,
            "history file overflow at step {step}"
        );
        assert!(
            bpu.speculative_ghist().width() == 64,
            "history register width is invariant"
        );
    }
    let stats = bpu.stats();
    assert!(stats.queries > 1000, "storm must exercise queries");
    assert!(stats.mispredicts > 50, "storm must exercise repair");
}

#[test]
fn revise_then_flush_restores_clean_history() {
    let mut bpu = build(&designs::b2());
    let before = bpu.speculative_ghist().clone();
    let a = bpu.query(0x4000).unwrap();
    bpu.speculate(a, 1);
    let mut pred = *bpu.prediction(a, 3).unwrap();
    pred.slot_mut(0).kind = Some(BranchKind::Conditional);
    pred.slot_mut(0).taken = Some(true);
    pred.slot_mut(0).set_target(Some(0x9000));
    bpu.revise(a, &pred, true);
    assert_ne!(*bpu.speculative_ghist(), before, "revision pushed a bit");
    bpu.flush();
    assert_eq!(*bpu.speculative_ghist(), before, "flush rewinds history");
}

#[test]
fn committed_packets_report_their_resolutions() {
    let mut bpu = build(&designs::tournament());
    let a = bpu.query(0x8000).unwrap();
    bpu.speculate(a, 1);
    let p = *bpu.prediction(a, 3).unwrap();
    bpu.accept(a, p);
    bpu.resolve(a, cond(2, true, 0xa000), false);
    bpu.resolve(a, cond(0, false, 0), false);
    let pkt = bpu.commit_front().expect("accepted packet commits");
    assert_eq!(pkt.resolutions.len(), 2);
    assert_eq!(pkt.resolutions[0].slot, 0, "resolutions kept in slot order");
    assert_eq!(pkt.resolutions[1].slot, 2);
    assert_eq!(pkt.mispredicted_slot, None);
}

#[test]
fn meta_storage_tracks_design_shape() {
    // The Tournament's local-history provider must appear in its Meta
    // storage and nowhere else.
    let tourney = build(&designs::tournament());
    let tage = build(&designs::tage_l());
    let has_lhist = |b: &BranchPredictorUnit| {
        b.meta_storage()
            .srams
            .iter()
            .any(|(n, _)| n == "local-history-table")
    };
    assert!(has_lhist(&tourney));
    assert!(!has_lhist(&tage));
}

#[test]
fn topology_dsl_and_composer_agree_on_structure() {
    use cobra::core::composer::{PredictorPipeline, Topology};
    for design in designs::all() {
        let topo = Topology::parse(&design.topology).expect("stock topology parses");
        let pipeline = PredictorPipeline::compile(&topo, &design.registry, 8).expect("compiles");
        assert_eq!(
            pipeline.num_nodes(),
            topo.len(),
            "{}: node count mismatch",
            design.name
        );
        assert_eq!(
            pipeline.depth(),
            3,
            "{}: all stock designs are 3-deep",
            design.name
        );
        // Display round-trip.
        let reparsed = Topology::parse(&topo.to_string()).expect("round-trips");
        assert_eq!(topo, reparsed);
    }
}
