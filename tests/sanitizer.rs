//! Runtime-sanitizer tests: a seeded monotonic-refinement violation is
//! caught when the sanitizer is on, and the same pipeline runs untouched
//! when it is off (the default).
//!
//! The sanitizer's global switch is process-wide, so every test here sets
//! it explicitly and these tests avoid relying on ambient state.

use cobra::core::composer::{ComponentRegistry, PredictorPipeline, Topology};
use cobra::core::{
    sanitize, Component, HistoryView, Meta, PredictQuery, PredictionBundle, Response, StorageReport,
};
use cobra::sim::{HistoryRegister, SnapError, StateReader, StateWriter};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};

/// The sanitizer switch is process-global; tests toggling it must not
/// overlap. Poisoning is ignored — a failed test already reported itself.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Latency-1 hint: always predicts slot 0 taken.
struct Hint;

impl Component for Hint {
    fn kind(&self) -> &'static str {
        "hint"
    }
    fn latency(&self) -> u8 {
        1
    }
    fn storage(&self) -> StorageReport {
        StorageReport::new()
    }
    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        let mut pred = PredictionBundle::new(q.width);
        pred.slot_mut(0).taken = Some(true);
        Response {
            pred,
            meta: Meta::ZERO,
        }
    }
    fn save_state(&self, _w: &mut StateWriter) {}
    fn load_state(&mut self, _r: &mut StateReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// Latency-2 dropper: its compose is deliberately broken — once its own
/// response arrives it discards the input instead of refining it, so the
/// stage-1 prediction vanishes at stage 2.
struct Dropper;

impl Component for Dropper {
    fn kind(&self) -> &'static str {
        "dropper"
    }
    fn latency(&self) -> u8 {
        2
    }
    fn storage(&self) -> StorageReport {
        StorageReport::new()
    }
    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        Response {
            pred: PredictionBundle::new(q.width),
            meta: Meta::ZERO,
        }
    }
    fn compose(
        &self,
        width: u8,
        own: Option<&Response>,
        inputs: &[PredictionBundle],
    ) -> PredictionBundle {
        match own {
            Some(_) => PredictionBundle::new(width), // drops the hint
            None => inputs
                .first()
                .copied()
                .unwrap_or_else(|| PredictionBundle::new(width)),
        }
    }
    fn save_state(&self, _w: &mut StateWriter) {}
    fn load_state(&mut self, _r: &mut StateReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

fn broken_pipeline() -> PredictorPipeline {
    let mut registry = ComponentRegistry::new();
    registry.register("DROP2", |_| Box::new(Dropper));
    registry.register("HINT1", |_| Box::new(Hint));
    let topo = Topology::parse("DROP2 > HINT1").expect("valid topology text");
    PredictorPipeline::compile(&topo, &registry, 4).expect("statically legal pipeline")
}

fn predict_once(p: &mut PredictorPipeline) -> cobra::core::composer::PacketPrediction {
    let ghist = HistoryRegister::new(16);
    let hist = HistoryView {
        ghist: &ghist,
        lhist: 0,
        phist: 0,
    };
    p.predict_packet(0, 0x1000, &hist)
}

#[test]
fn sanitizer_catches_seeded_refinement_violation() {
    let _guard = serialize();
    let mut p = broken_pipeline();
    sanitize::set_enabled(true);
    let result = catch_unwind(AssertUnwindSafe(|| predict_once(&mut p)));
    sanitize::set_enabled(false);
    let payload = result.expect_err("the dropped stage-1 prediction must be caught");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
        .expect("panic payload is a message");
    assert!(
        msg.contains("cobra-sanitizer") && msg.contains("monotonic refinement"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn sanitizer_off_leaves_broken_pipeline_unchecked() {
    // Off by default: the same defective composition runs to completion,
    // exactly as on the untouched hot path.
    let _guard = serialize();
    let mut p = broken_pipeline();
    sanitize::set_enabled(false);
    let out = predict_once(&mut p);
    assert_eq!(out.stages[0].slot(0).taken, Some(true), "hint at stage 1");
    assert_eq!(out.stages[1].slot(0).taken, None, "silently dropped");
}

#[test]
fn sanitizer_accepts_legal_stock_design() {
    // A clean design must produce no violations with the sanitizer on.
    use cobra::core::composer::{BpuConfig, BranchPredictorUnit};
    use cobra::core::designs;
    let _guard = serialize();
    sanitize::set_enabled(true);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut bpu = BranchPredictorUnit::build(&designs::tage_l(), BpuConfig::default()).unwrap();
        for i in 0..64u64 {
            if let Some(id) = bpu.query(0x8000 + i * 32) {
                bpu.tick();
                let pred = *bpu.prediction(id, 3).unwrap();
                bpu.accept(id, pred);
                bpu.commit_front();
            }
        }
    }));
    sanitize::set_enabled(false);
    assert!(result.is_ok(), "stock TAGE-L must be sanitizer-clean");
}
