//! Lints every built-in design and pins the analyzer's contract:
//! paper designs are error-clean, the warning set is snapshot-empty, and
//! broken topologies produce specific diagnostics (code + span) both from
//! the analyzer and from `BranchPredictorUnit::build`.

use cobra::core::analysis::{self, AnalysisConfig, DiagCode, Severity};
use cobra::core::composer::{BpuConfig, BranchPredictorUnit};
use cobra::core::{designs, ComposeError, Span};

#[test]
fn builtin_designs_are_error_clean() {
    for design in designs::catalog() {
        let report = analysis::analyze_design(&design, &AnalysisConfig::default())
            .expect("built-in topologies parse");
        let errors: Vec<String> = report.errors().map(ToString::to_string).collect();
        assert!(errors.is_empty(), "{}: {errors:?}", design.name);
    }
}

#[test]
fn builtin_design_warning_snapshot_is_empty() {
    // Snapshot of the warning set per design. Stock designs are
    // deliberately warning-free so CI can run `cobra-lint --deny warnings`;
    // a new warning here is a behaviour change that must be explicit.
    for design in designs::catalog() {
        let report = analysis::analyze_design(&design, &AnalysisConfig::default()).unwrap();
        let warnings: Vec<String> = report.warnings().map(ToString::to_string).collect();
        assert_eq!(
            warnings,
            Vec::<String>::new(),
            "{}: unexpected warnings",
            design.name
        );
    }
}

#[test]
fn every_report_runs_all_five_passes() {
    // The storage pass always emits its C0402 note, and the report carries
    // per-component facts each pass consumed — use both as evidence the
    // full pass stack ran for every design.
    for design in designs::catalog() {
        let report = analysis::analyze_design(&design, &AnalysisConfig::default()).unwrap();
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == DiagCode::StorageSummary),
            "{}: storage pass did not run",
            design.name
        );
        assert!(!report.components.is_empty());
        assert!(report.meta_bits > 0);
    }
}

#[test]
fn latency_inversion_has_code_and_span() {
    let registry = designs::stock_registry();
    let report = analysis::analyze_topology(
        "broken",
        "UBTB1 > BIM2",
        &registry,
        64,
        0,
        &AnalysisConfig::default(),
    )
    .unwrap();
    let d = report
        .errors()
        .find(|d| d.code == DiagCode::LatencyInversion)
        .expect("UBTB1 (lat 1) over BIM2 (lat 2) is an inversion");
    assert_eq!(d.severity, Severity::Error);
    // The span underlines the overriding component's occurrence.
    assert_eq!(d.span, Some(Span::new(0, 5)));
    assert_eq!(d.component.as_deref(), Some("UBTB1"));
    assert!(d.hint.is_some(), "inversions carry a fix hint");
}

#[test]
fn unknown_component_has_code_and_span() {
    let registry = designs::stock_registry();
    let report = analysis::analyze_topology(
        "broken",
        "GTAG3 > NOPE9 > BIM2",
        &registry,
        16,
        0,
        &AnalysisConfig::default(),
    )
    .unwrap();
    let d = report
        .errors()
        .find(|d| d.code == DiagCode::UnknownComponent)
        .expect("NOPE9 is unregistered");
    assert_eq!(d.span, Some(Span::new(8, 13)));
}

#[test]
fn building_broken_design_returns_diagnostics_not_panic() {
    let mut design = designs::tage_l();
    design.topology = "UBTB1 > BIM2".into();
    let err = match BranchPredictorUnit::build(&design, BpuConfig::default()) {
        Err(e) => e,
        Ok(_) => panic!("inverted topology must not build"),
    };
    match err {
        ComposeError::Analysis { diagnostics } => {
            assert!(!diagnostics.is_empty());
            assert!(diagnostics.iter().all(|d| d.is_error()));
            let d = diagnostics
                .iter()
                .find(|d| d.code == DiagCode::LatencyInversion)
                .expect("the inversion is reported");
            assert_eq!(d.span, Some(Span::new(0, 5)));
        }
        other => panic!("expected ComposeError::Analysis, got {other:?}"),
    }
}

#[test]
fn compose_error_display_carries_first_diagnostic() {
    let mut design = designs::tage_l();
    design.topology = "UBTB1 > BIM2".into();
    let err = BranchPredictorUnit::build(&design, BpuConfig::default()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("C0201"), "display names the code: {msg}");
}

#[test]
fn shadowed_component_is_a_warning_not_an_error() {
    // BIM2 > GBIM2: same latency, BIM2 always provides everything GBIM2
    // may produce — GBIM2 is dead weight, but the design still simulates.
    let registry = designs::stock_registry();
    let report = analysis::analyze_topology(
        "shadow",
        "BIM2 > GBIM2",
        &registry,
        32,
        0,
        &AnalysisConfig::default(),
    )
    .unwrap();
    let d = report
        .warnings()
        .find(|d| d.code == DiagCode::ShadowedComponent)
        .expect("GBIM2 is fully shadowed");
    assert_eq!(d.component.as_deref(), Some("GBIM2"));
    // And Bpu::build accepts it: warnings do not gate construction.
    let mut design = designs::tournament();
    design.topology = "BIM2 > GBIM2".into();
    design.registry.register("BIM2", |w| {
        Box::new(cobra::core::components::Hbim::new(
            cobra::core::components::HbimConfig::bim(1024, w),
        ))
    });
    assert!(BranchPredictorUnit::build(&design, BpuConfig::default()).is_ok());
}

#[test]
fn json_reports_round_trip_key_fields() {
    let report = analysis::analyze_design(&designs::tage_l(), &AnalysisConfig::default()).unwrap();
    let j = report.render_json();
    for key in [
        "\"design\":\"TAGE-L\"",
        "\"depth\":3",
        "\"errors\":0",
        "\"code\":\"C0402\"",
    ] {
        assert!(j.contains(key), "missing {key} in {j}");
    }
}
