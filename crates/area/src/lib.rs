//! # cobra-area
//!
//! An analytical area model standing in for the paper's commercial-FinFET
//! synthesis flow (Cadence Genus at 1 GHz).
//!
//! The paper's Figs 8 and 9 report *relative* area: predictor
//! sub-components versus management structures, and the whole predictor
//! versus the rest of a 4-wide out-of-order core. Those ratios derive from
//! bit counts and port structure, which the components report exactly
//! through [`cobra_core::StorageReport`]; this crate costs
//! them with per-bit constants calibrated to a 7 nm-class process:
//!
//! * SRAM bits are dense; each extra port roughly doubles bit-cell area;
//! * flip-flop (CAM / register) bits are ~15× SRAM bits;
//! * tag comparators and peripheral logic add per-macro overhead.
//!
//! Absolute µm² values are indicative only; the reproduction target is the
//! breakdown *shape*: tagged structures (TAGE tables, BTB) costly, the
//! management "Meta" share non-trivial, and the whole predictor a small
//! fraction of the core (the paper's observations for Figs 8-9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cobra_core::{AccessReport, StorageReport};
use cobra_sim::{PortKind, SramSpec};

/// Per-bit and per-macro area constants for a FinFET-class process, in
/// square micrometres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessModel {
    /// One single-ported SRAM bit cell.
    pub sram_bit_um2: f64,
    /// One flip-flop bit (registers, CAMs, history snapshots).
    pub flop_bit_um2: f64,
    /// Fixed peripheral overhead per SRAM macro (decoders, sense amps).
    pub macro_overhead_um2: f64,
    /// Additional multiplier per extra port beyond the first.
    pub port_factor: f64,
}

impl ProcessModel {
    /// A 7 nm-class FinFET process.
    pub fn finfet_7nm() -> Self {
        Self {
            sram_bit_um2: 0.045,
            flop_bit_um2: 0.65,
            macro_overhead_um2: 220.0,
            port_factor: 0.85,
        }
    }

    fn ports_of(kind: PortKind) -> f64 {
        match kind {
            PortKind::SinglePort => 1.0,
            PortKind::DualPort => 2.0,
            PortKind::TwoReadOneWrite => 3.0,
        }
    }

    /// Area of one SRAM macro (banked structures pay the peripheral
    /// overhead once per bank).
    pub fn sram_area_um2(&self, spec: &SramSpec) -> f64 {
        let ports = Self::ports_of(spec.ports);
        let bit = self.sram_bit_um2 * (1.0 + self.port_factor * (ports - 1.0));
        spec.total_bits() as f64 * bit + self.macro_overhead_um2 * spec.banks.max(1) as f64
    }

    /// Area of a full storage report (SRAM macros + flops).
    pub fn report_area_um2(&self, report: &StorageReport) -> f64 {
        let srams: f64 = report
            .srams
            .iter()
            .map(|(_, s)| self.sram_area_um2(s))
            .sum();
        srams + report.flop_bits as f64 * self.flop_bit_um2
    }
}

impl Default for ProcessModel {
    fn default() -> Self {
        Self::finfet_7nm()
    }
}

/// Per-access SRAM energy constants, in picojoules, for the same
/// FinFET-class process — the predictor-energy concern the paper flags as
/// future work ("the energy cost of continuously reading predictor SRAMs
/// is significant", Section VI-A citing Parikh et al.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Read energy per bit of the accessed entry.
    pub read_pj_per_bit: f64,
    /// Write energy per bit of the accessed entry.
    pub write_pj_per_bit: f64,
    /// Fixed per-access peripheral energy (decode, sense).
    pub access_overhead_pj: f64,
}

impl EnergyModel {
    /// A 7 nm-class SRAM energy model.
    pub fn finfet_7nm() -> Self {
        Self {
            read_pj_per_bit: 0.012,
            write_pj_per_bit: 0.018,
            access_overhead_pj: 0.9,
        }
    }

    /// Energy of all accesses in one report, in nanojoules.
    pub fn report_energy_nj(&self, r: &AccessReport) -> f64 {
        let bits = r.spec.entry_bits as f64;
        let read = r.reads as f64 * (bits * self.read_pj_per_bit + self.access_overhead_pj);
        let write = r.writes as f64 * (bits * self.write_pj_per_bit + self.access_overhead_pj);
        (read + write) / 1000.0
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::finfet_7nm()
    }
}

/// One bar segment of an area breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaItem {
    /// Component / block label.
    pub label: String,
    /// Area in µm².
    pub area_um2: f64,
}

/// A labelled area breakdown (one Fig 8 bar, or one Fig 9 bar).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AreaBreakdown {
    /// The segments, in display order.
    pub items: Vec<AreaItem>,
}

impl AreaBreakdown {
    /// Builds a breakdown from labelled storage reports.
    pub fn from_reports<'a>(
        model: &ProcessModel,
        reports: impl IntoIterator<Item = (String, &'a StorageReport)>,
    ) -> Self {
        Self {
            items: reports
                .into_iter()
                .map(|(label, r)| AreaItem {
                    label,
                    area_um2: model.report_area_um2(r),
                })
                .collect(),
        }
    }

    /// Total area in µm².
    pub fn total_um2(&self) -> f64 {
        self.items.iter().map(|i| i.area_um2).sum()
    }

    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1e6
    }

    /// Adds a pre-computed block (used for the fixed core blocks of Fig 9).
    pub fn push(&mut self, label: impl Into<String>, area_um2: f64) {
        self.items.push(AreaItem {
            label: label.into(),
            area_um2,
        });
    }
}

/// Fixed area estimates for the non-predictor blocks of the 4-wide BOOM
/// core (Fig 9's "rest of core"), in µm², scaled from published BOOM
/// floorplans to the same process model.
pub fn core_blocks_um2() -> Vec<(&'static str, f64)> {
    vec![
        ("ifu-other", 60_000.0), // icache control, TLB, fetch buffer
        ("icache", 140_000.0),   // 32 KB + tags
        ("decode-rename", 90_000.0),
        ("rob", 70_000.0),
        ("issue-units", 150_000.0),
        ("regfiles", 120_000.0),
        ("exec-units", 260_000.0),
        ("lsu", 110_000.0),
        ("dcache", 150_000.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(entries: u64, bits: u64, ports: PortKind) -> SramSpec {
        SramSpec {
            entries,
            entry_bits: bits,
            ports,
            banks: 1,
        }
    }

    #[test]
    fn more_bits_cost_more() {
        let m = ProcessModel::finfet_7nm();
        let small = m.sram_area_um2(&spec(1024, 2, PortKind::DualPort));
        let big = m.sram_area_um2(&spec(16384, 2, PortKind::DualPort));
        assert!(big > small);
    }

    #[test]
    fn banking_costs_peripheral_area() {
        let m = ProcessModel::finfet_7nm();
        let flat = m.sram_area_um2(&spec(4096, 8, PortKind::DualPort));
        let banked = m.sram_area_um2(&SramSpec {
            entries: 4096,
            entry_bits: 8,
            ports: PortKind::DualPort,
            banks: 8,
        });
        assert!(banked > flat, "eight banks pay eight peripheries");
    }

    #[test]
    fn extra_ports_cost_more() {
        let m = ProcessModel::finfet_7nm();
        let p1 = m.sram_area_um2(&spec(4096, 8, PortKind::SinglePort));
        let p2 = m.sram_area_um2(&spec(4096, 8, PortKind::DualPort));
        let p3 = m.sram_area_um2(&spec(4096, 8, PortKind::TwoReadOneWrite));
        assert!(p1 < p2 && p2 < p3);
    }

    #[test]
    fn flops_far_denser_than_sram_per_bit_cost() {
        let m = ProcessModel::finfet_7nm();
        assert!(m.flop_bit_um2 > 10.0 * m.sram_bit_um2);
    }

    #[test]
    fn breakdown_totals() {
        let m = ProcessModel::finfet_7nm();
        let mut r1 = StorageReport::new();
        r1.add_sram("a", spec(1024, 2, PortKind::DualPort));
        let mut r2 = StorageReport::new();
        r2.add_flops(512);
        let b = AreaBreakdown::from_reports(&m, [("x".to_string(), &r1), ("y".to_string(), &r2)]);
        assert_eq!(b.items.len(), 2);
        let expected = m.report_area_um2(&r1) + m.report_area_um2(&r2);
        assert!((b.total_um2() - expected).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_traffic_and_width() {
        let m = EnergyModel::finfet_7nm();
        let mk = |entry_bits, reads, writes| AccessReport {
            name: "t".into(),
            spec: spec(1024, entry_bits, PortKind::DualPort),
            reads,
            writes,
            rows_touched: 0,
        };
        let base = m.report_energy_nj(&mk(8, 1000, 100));
        assert!(m.report_energy_nj(&mk(8, 2000, 100)) > base);
        assert!(m.report_energy_nj(&mk(64, 1000, 100)) > base);
        assert!(
            m.report_energy_nj(&mk(8, 0, 0)) == 0.0,
            "no accesses, no energy"
        );
    }

    #[test]
    fn predictor_is_small_fraction_of_core() {
        // The paper's Fig 9 observation: even the 28 KB TAGE-L predictor is
        // a small part of a big out-of-order core.
        use cobra_core::composer::{BpuConfig, BranchPredictorUnit};
        use cobra_core::designs;
        let m = ProcessModel::finfet_7nm();
        let bpu = BranchPredictorUnit::build(&designs::tage_l(), BpuConfig::default()).unwrap();
        let pred = m.report_area_um2(&bpu.total_storage());
        let core: f64 = core_blocks_um2().iter().map(|(_, a)| a).sum();
        let frac = pred / (pred + core);
        assert!(
            frac < 0.25,
            "predictor fraction {frac:.2} should be a minor share"
        );
        assert!(frac > 0.01, "predictor must not be negligible either");
    }

    #[test]
    fn tournament_meta_share_nontrivial() {
        use cobra_core::composer::{BpuConfig, BranchPredictorUnit};
        use cobra_core::designs;
        let m = ProcessModel::finfet_7nm();
        let bpu = BranchPredictorUnit::build(&designs::tournament(), BpuConfig::default()).unwrap();
        let meta = m.report_area_um2(&bpu.meta_storage());
        let total = m.report_area_um2(&bpu.total_storage());
        assert!(
            meta / total > 0.1,
            "management structures incur non-trivial cost (paper Fig 8): {:.3}",
            meta / total
        );
    }
}
