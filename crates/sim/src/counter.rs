//! N-bit saturating counters.

/// Qualitative state of a saturating counter, as read by prediction logic.
///
/// The boundary between `WeakNotTaken` and `WeakTaken` is the counter
/// midpoint; `Strong*` states are the saturation extremes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterState {
    /// Saturated at the minimum value.
    StrongNotTaken,
    /// Below the midpoint but not saturated.
    WeakNotTaken,
    /// At or above the midpoint but not saturated.
    WeakTaken,
    /// Saturated at the maximum value.
    StrongTaken,
}

/// An `n`-bit up/down saturating counter (1 ≤ n ≤ 8).
///
/// This is the universal direction-prediction primitive: bimodal tables,
/// tournament choosers, TAGE usefulness bits, and loop-confidence counters
/// are all arrays of these.
///
/// The counter value is an unsigned integer in `[0, 2^n - 1]`; values at or
/// above the midpoint `2^(n-1)` predict *taken*.
///
/// # Examples
///
/// ```
/// use cobra_sim::SaturatingCounter;
///
/// let mut c = SaturatingCounter::weakly_taken(2);
/// assert!(c.is_taken());
/// c.decrement();
/// assert!(!c.is_taken());
/// c.train(true);
/// assert!(c.is_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u8,
    bits: u8,
}

impl SaturatingCounter {
    /// Creates a counter with `bits` width initialized to `value`
    /// (clamped to the representable range).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 8.
    pub fn new(bits: u8, value: u8) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = Self::max_for(bits);
        Self {
            value: value.min(max),
            bits,
        }
    }

    /// Creates a counter initialized to the weakly-taken midpoint.
    pub fn weakly_taken(bits: u8) -> Self {
        let c = Self::new(bits, 0);
        Self {
            value: c.midpoint(),
            ..c
        }
    }

    /// Creates a counter initialized to weakly-not-taken (midpoint − 1).
    pub fn weakly_not_taken(bits: u8) -> Self {
        let c = Self::new(bits, 0);
        Self {
            value: c.midpoint().saturating_sub(1),
            ..c
        }
    }

    const fn max_for(bits: u8) -> u8 {
        if bits >= 8 {
            u8::MAX
        } else {
            (1u8 << bits) - 1
        }
    }

    /// The counter's maximum value (`2^bits − 1`).
    pub fn max(&self) -> u8 {
        Self::max_for(self.bits)
    }

    /// The taken/not-taken decision threshold (`2^(bits−1)`).
    pub fn midpoint(&self) -> u8 {
        1 << (self.bits - 1)
    }

    /// Current raw value.
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Counter width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Overwrites the raw value (clamped). Used when restoring metadata.
    pub fn set(&mut self, value: u8) {
        self.value = value.min(self.max());
    }

    /// `true` if the counter currently predicts taken.
    pub fn is_taken(&self) -> bool {
        self.value >= self.midpoint()
    }

    /// `true` if saturated in either direction (a "high-confidence" counter).
    pub fn is_strong(&self) -> bool {
        self.value == 0 || self.value == self.max()
    }

    /// Qualitative state of the counter.
    pub fn state(&self) -> CounterState {
        match (self.is_taken(), self.is_strong()) {
            (true, true) => CounterState::StrongTaken,
            (true, false) => CounterState::WeakTaken,
            (false, true) => CounterState::StrongNotTaken,
            (false, false) => CounterState::WeakNotTaken,
        }
    }

    /// Saturating increment.
    pub fn increment(&mut self) {
        if self.value < self.max() {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Trains the counter toward `taken`.
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.increment();
        } else {
            self.decrement();
        }
    }

    /// Halves the counter's distance from the midpoint — the periodic "reset"
    /// used by TAGE usefulness aging.
    pub fn age(&mut self) {
        let mid = self.midpoint() as i16;
        let delta = self.value as i16 - mid;
        self.value = (mid + delta / 2) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_high() {
        let mut c = SaturatingCounter::new(2, 3);
        c.increment();
        assert_eq!(c.value(), 3);
        assert_eq!(c.state(), CounterState::StrongTaken);
    }

    #[test]
    fn saturates_low() {
        let mut c = SaturatingCounter::new(2, 0);
        c.decrement();
        assert_eq!(c.value(), 0);
        assert_eq!(c.state(), CounterState::StrongNotTaken);
    }

    #[test]
    fn midpoint_threshold() {
        let c = SaturatingCounter::new(3, 4);
        assert!(c.is_taken());
        let c = SaturatingCounter::new(3, 3);
        assert!(!c.is_taken());
    }

    #[test]
    fn weak_initializers() {
        assert!(SaturatingCounter::weakly_taken(2).is_taken());
        assert!(!SaturatingCounter::weakly_not_taken(2).is_taken());
        assert!(!SaturatingCounter::weakly_taken(2).is_strong());
    }

    #[test]
    fn train_hysteresis() {
        let mut c = SaturatingCounter::new(2, 3);
        c.train(false);
        assert!(
            c.is_taken(),
            "one bad outcome must not flip a strong counter"
        );
        c.train(false);
        assert!(!c.is_taken());
    }

    #[test]
    fn set_clamps() {
        let mut c = SaturatingCounter::new(2, 0);
        c.set(200);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn aging_moves_toward_midpoint() {
        let mut c = SaturatingCounter::new(3, 7);
        c.age();
        assert_eq!(c.value(), 5);
        let mut c = SaturatingCounter::new(3, 0);
        c.age();
        assert_eq!(c.value(), 2);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_rejected() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    fn one_bit_counter() {
        let mut c = SaturatingCounter::new(1, 0);
        assert!(!c.is_taken());
        c.train(true);
        assert!(c.is_taken());
        assert!(c.is_strong());
    }
}
