//! Incrementally-maintained folded history, as implemented by TAGE hardware.
//!
//! A hardware TAGE cannot afford to re-fold a long history vector every
//! cycle, so it keeps, per table, a small register holding the xor-fold of
//! the last `length` history bits compressed to `width` bits, updated
//! incrementally as bits enter and leave the history window.
//!
//! [`FoldedHistory`] maintains the invariant
//!
//! ```text
//! value == XOR over i in [0, length) of bit_i << (i % width)
//! ```
//!
//! where `bit_0` is the most recent branch outcome — exactly the value
//! returned by [`HistoryRegister::folded`](crate::HistoryRegister::folded),
//! which the property tests use as the reference model.

use crate::bits;

/// An incrementally-updated `width`-bit fold of the last `length` history
/// bits.
///
/// # Examples
///
/// ```
/// use cobra_sim::{FoldedHistory, HistoryRegister};
///
/// let mut ghist = HistoryRegister::new(32);
/// let mut fold = FoldedHistory::new(12, 5);
/// for &t in &[true, false, true, true, false, true] {
///     let outgoing = ghist.bit(11);
///     fold.update(t, outgoing);
///     ghist.push(t);
///     assert_eq!(fold.value(), ghist.folded(12, 5));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldedHistory {
    value: u64,
    length: u32,
    width: u32,
}

impl FoldedHistory {
    /// Creates a fold of the last `length` history bits compressed to
    /// `width` bits, initialized for an all-zeros history.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn new(length: u32, width: u32) -> Self {
        assert!(width > 0 && width <= 64, "fold width must be 1..=64");
        Self {
            value: 0,
            length,
            width,
        }
    }

    /// The current folded value (always fits in `width` bits).
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The history window length being folded.
    pub fn length(&self) -> u32 {
        self.length
    }

    /// The compressed width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Advances the fold by one branch outcome.
    ///
    /// `incoming` is the newly-resolved (or newly-speculated) direction;
    /// `outgoing` is the history bit at index `length − 1` *before* this
    /// update — the bit about to leave the fold window. The caller reads it
    /// from its history register before shifting.
    pub fn update(&mut self, incoming: bool, outgoing: bool) {
        if self.length == 0 {
            return;
        }
        let w = self.width;
        // Every existing bit's recency index grows by one, which rotates its
        // contribution position left by one (mod width).
        if w < 64 {
            self.value = ((self.value << 1) | (self.value >> (w - 1))) & bits::mask(w);
        } else {
            self.value = self.value.rotate_left(1);
        }
        // Insert the incoming bit at position 0.
        self.value ^= incoming as u64;
        // Remove the outgoing bit: it was at index length-1, and after the
        // rotation its contribution sits at position length % width.
        self.value ^= (outgoing as u64) << (self.length % w);
        self.value &= bits::mask(w.min(64));
    }

    /// Recomputes the fold from scratch for the given recent-first bits.
    /// Used for misprediction repair when the owning provider restores a
    /// history snapshot.
    pub fn rebuild(&mut self, bit_at: impl Fn(u32) -> bool) {
        let mut acc = 0u64;
        for i in 0..self.length {
            acc ^= (bit_at(i) as u64) << (i % self.width);
        }
        self.value = acc & bits::mask(self.width.min(64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryRegister;

    fn check_against_reference(length: u32, width: u32, pattern: impl Fn(u32) -> bool) {
        let mut ghist = HistoryRegister::new(length + 8);
        let mut fold = FoldedHistory::new(length, width);
        for step in 0..200 {
            let t = pattern(step);
            let outgoing = ghist.bit(length - 1);
            fold.update(t, outgoing);
            ghist.push(t);
            assert_eq!(
                fold.value(),
                ghist.folded(length, width),
                "divergence at step {step} (len {length}, width {width})"
            );
        }
    }

    #[test]
    fn matches_reference_alternating() {
        check_against_reference(13, 5, |i| i % 2 == 0);
    }

    #[test]
    fn matches_reference_period3() {
        check_against_reference(27, 8, |i| i % 3 == 0);
    }

    #[test]
    fn matches_reference_length_multiple_of_width() {
        check_against_reference(20, 5, |i| (i * 7) % 11 < 4);
    }

    #[test]
    fn matches_reference_width_larger_than_length() {
        check_against_reference(4, 9, |i| i % 5 != 0);
    }

    #[test]
    fn matches_reference_long_history() {
        check_against_reference(64, 11, |i| (i * 3) % 7 == 1);
    }

    #[test]
    fn zero_length_fold_stays_zero() {
        let mut f = FoldedHistory::new(0, 8);
        f.update(true, false);
        assert_eq!(f.value(), 0);
    }

    #[test]
    fn rebuild_matches_incremental() {
        let mut ghist = HistoryRegister::new(40);
        let mut fold = FoldedHistory::new(33, 7);
        for i in 0..50u32 {
            let t = (i * 5) % 9 < 4;
            let out = ghist.bit(32);
            fold.update(t, out);
            ghist.push(t);
        }
        let mut rebuilt = FoldedHistory::new(33, 7);
        rebuilt.rebuild(|i| ghist.bit(i));
        assert_eq!(rebuilt.value(), fold.value());
    }
}
