//! CRC-32C (Castagnoli) checksums, as used by the COBRA Binary Trace
//! format for per-section integrity.
//!
//! Software table-driven implementation (polynomial `0x1EDC6F41`,
//! reflected form `0x82F63B78`) — the same CRC used by iSCSI, ext4 and
//! most modern storage formats, chosen over CRC-32/IEEE for its better
//! error-detection properties at these block sizes. No hardware
//! intrinsics: determinism across hosts matters more here than checksum
//! throughput, which is already far faster than the encode around it.

/// Reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// An incremental CRC-32C state.
///
/// # Examples
///
/// ```
/// use cobra_sim::Crc32c;
///
/// let mut crc = Crc32c::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xE306_9283); // the CRC-32C check value
/// assert_eq!(cobra_sim::crc32c(b"123456789"), 0xE306_9283);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32C of `bytes`.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / common CRC-32C test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..255u8).collect();
        for split in [0, 1, 7, 100, 255] {
            let mut crc = Crc32c::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), crc32c(&data), "split {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xa5u8; 64];
        let base = crc32c(&data);
        for i in 0..64 {
            data[i] ^= 1;
            assert_ne!(crc32c(&data), base, "flip at byte {i}");
            data[i] ^= 1;
        }
    }
}
