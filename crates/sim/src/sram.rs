//! Behavioural SRAM model with port-usage accounting.
//!
//! The paper (Section III-D) stresses that predictor sub-components ought to
//! map onto area-efficient single- or dual-ported SRAM macros, and that the
//! metadata field exists largely so a component can avoid a second read port
//! at update time. This model gives that claim teeth in simulation: each
//! structure declares its port discipline, every access in a cycle is logged,
//! and exceeding the port budget is reported as a [`PortViolation`] — the
//! simulation-time analogue of a macro that will not map in synthesis.

use crate::snapshot::{SnapError, StateReader, StateWriter};
use std::fmt;

/// The port discipline of an SRAM macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// One port shared by reads and writes (1RW): one access per cycle total.
    SinglePort,
    /// One read port and one write port (1R1W).
    DualPort,
    /// Two read ports and one write port (2R1W) — expensive; flagged by the
    /// area model.
    TwoReadOneWrite,
}

impl PortKind {
    /// Maximum reads the macro supports per cycle.
    pub fn read_budget(self) -> u32 {
        match self {
            PortKind::SinglePort => 1,
            PortKind::DualPort => 1,
            PortKind::TwoReadOneWrite => 2,
        }
    }

    /// Maximum writes the macro supports per cycle.
    pub fn write_budget(self) -> u32 {
        1
    }

    /// Whether a read and a write may occur in the same cycle.
    pub fn concurrent_read_write(self) -> bool {
        !matches!(self, PortKind::SinglePort)
    }
}

/// Static description of an SRAM macro: geometry and port discipline.
///
/// Components report these through their storage report; the area model
/// costs them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SramSpec {
    /// Number of addressable entries.
    pub entries: u64,
    /// Bits per entry.
    pub entry_bits: u64,
    /// Port discipline (per bank).
    pub ports: PortKind,
    /// Independent banks: superscalar structures are banked by prediction
    /// slot so each bank serves one slot's access per cycle.
    pub banks: u64,
}

impl SramSpec {
    /// Total data bits stored by the macro.
    pub fn total_bits(&self) -> u64 {
        self.entries * self.entry_bits
    }

    /// Total storage in kilobytes (for Table I style reporting).
    pub fn kilobytes(&self) -> f64 {
        self.total_bits() as f64 / 8192.0
    }
}

/// A port-budget violation observed during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortViolation {
    /// Cycle at which the violation occurred.
    pub cycle: u64,
    /// Bank on which the budget was exceeded.
    pub bank: u64,
    /// Reads attempted on that bank that cycle.
    pub reads: u32,
    /// Writes attempted on that bank that cycle.
    pub writes: u32,
}

impl fmt::Display for PortViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "port violation at cycle {} bank {}: {} reads / {} writes exceed budget",
            self.cycle, self.bank, self.reads, self.writes
        )
    }
}

/// A behavioural SRAM: a vector of `T` entries plus per-cycle port
/// accounting.
///
/// Reads return the value as of the start of the cycle is *not* modelled
/// bit-exactly — the composer's compute-at-query discipline already
/// guarantees read-before-write ordering within a cycle — but port usage is
/// tracked faithfully.
///
/// # Examples
///
/// ```
/// use cobra_sim::{PortKind, SramModel};
///
/// let mut bht = SramModel::new(16, 2, PortKind::DualPort, 0u8);
/// bht.begin_cycle(0);
/// let v = *bht.read(3);
/// bht.write(3, v + 1);
/// assert!(bht.violations().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SramModel<T> {
    spec: SramSpec,
    /// Cached `spec.entries / spec.banks`: bank mapping runs on every
    /// access, and the division would otherwise dominate small reads.
    rows_per_bank: u64,
    /// `log2(rows_per_bank)` when it is a power of two — the common
    /// geometry — turning the per-access bank divide into a shift.
    bank_shift: Option<u32>,
    data: Vec<T>,
    cycle: u64,
    reads_this_cycle: Vec<u32>,
    writes_this_cycle: Vec<u32>,
    total_reads: u64,
    total_writes: u64,
    violations: Vec<PortViolation>,
    /// Rows written at least once since construction or the last
    /// [`load_state`](Self::load_state) — the touched-set utilization
    /// gauge interval telemetry reports.
    touched_flag: Vec<bool>,
    rows_touched: u64,
    /// Armed reference state for dirty-row resets (`None` when unarmed).
    baseline: Option<Box<SramBaseline<T>>>,
}

/// The armed reference state of an [`SramModel`]: a full copy of the data
/// array plus the accounting counters, and the set of rows written since
/// arming. Resetting restores only the dirty rows, making a rerun from a
/// warm state O(rows touched) instead of O(table size).
#[derive(Debug, Clone)]
struct SramBaseline<T> {
    data: Vec<T>,
    cycle: u64,
    reads_this_cycle: Vec<u32>,
    writes_this_cycle: Vec<u32>,
    total_reads: u64,
    total_writes: u64,
    violations_len: usize,
    /// The final pre-arm violation record, which `check_budget` may later
    /// update in place (same cycle/bank key); restored verbatim on reset.
    last_violation: Option<PortViolation>,
    /// Rows written since arming, each recorded once.
    dirty: Vec<u64>,
    dirty_flag: Vec<bool>,
}

impl<T: Clone> SramModel<T> {
    /// Creates an SRAM of `entries` entries of `entry_bits` bits each,
    /// initialized to `init`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: u64, entry_bits: u64, ports: PortKind, init: T) -> Self {
        Self::new_banked(entries, entry_bits, ports, 1, init)
    }

    /// Creates a banked SRAM: `banks` independent macros, each with its own
    /// port budget. Superscalar predictor structures bank by prediction
    /// slot so a fetch packet's parallel accesses are conflict-free.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `banks` is zero, or `banks` does not divide
    /// `entries`.
    pub fn new_banked(entries: u64, entry_bits: u64, ports: PortKind, banks: u64, init: T) -> Self {
        assert!(entries > 0, "SRAM must have at least one entry");
        assert!(
            banks > 0 && entries.is_multiple_of(banks),
            "banks must divide entries"
        );
        let rows_per_bank = entries / banks;
        Self {
            spec: SramSpec {
                entries,
                entry_bits,
                ports,
                banks,
            },
            rows_per_bank,
            bank_shift: rows_per_bank
                .is_power_of_two()
                .then(|| rows_per_bank.trailing_zeros()),
            data: vec![init; entries as usize],
            cycle: 0,
            reads_this_cycle: vec![0; banks as usize],
            writes_this_cycle: vec![0; banks as usize],
            total_reads: 0,
            total_writes: 0,
            violations: Vec::new(),
            touched_flag: vec![false; entries as usize],
            rows_touched: 0,
            baseline: None,
        }
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> u64 {
        self.rows_per_bank
    }

    /// Translates a (bank, row) pair into a flat entry index.
    ///
    /// # Panics
    ///
    /// Panics if the bank is out of range (`row` wraps within the bank).
    pub fn entry_of(&self, bank: u64, row: u64) -> u64 {
        assert!(bank < self.spec.banks, "bank out of range");
        let wrapped = match self.bank_shift {
            Some(_) => row & (self.rows_per_bank - 1),
            None => row % self.rows_per_bank,
        };
        bank * self.rows_per_bank + wrapped
    }

    /// The macro's static description.
    pub fn spec(&self) -> SramSpec {
        self.spec
    }

    /// Starts a new accounting cycle. Accesses before the first call are
    /// attributed to cycle 0.
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
        self.reads_this_cycle.fill(0);
        self.writes_this_cycle.fill(0);
    }

    fn bank_of(&self, index: u64) -> usize {
        match self.bank_shift {
            Some(s) => (index >> s) as usize,
            None => (index / self.rows_per_bank) as usize,
        }
    }

    fn check_budget(&mut self, bank: usize) {
        let p = self.spec.ports;
        let reads = self.reads_this_cycle[bank];
        let writes = self.writes_this_cycle[bank];
        let over_read = reads > p.read_budget();
        let over_write = writes > p.write_budget();
        let rw_conflict = !p.concurrent_read_write() && reads + writes > 1;
        if over_read || over_write || rw_conflict {
            // Record at most one violation per (cycle, bank).
            let key_matches = |v: &PortViolation| v.cycle == self.cycle && v.bank == bank as u64;
            if self.violations.last().is_none_or(|v| !key_matches(v)) {
                self.violations.push(PortViolation {
                    cycle: self.cycle,
                    bank: bank as u64,
                    reads,
                    writes,
                });
            } else if let Some(v) = self.violations.last_mut() {
                v.reads = reads;
                v.writes = writes;
            }
        }
    }

    /// Reads entry `index`, consuming one read port on its bank this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn read(&mut self, index: u64) -> &T {
        let bank = self.bank_of(index);
        self.reads_this_cycle[bank] += 1;
        self.total_reads += 1;
        self.check_budget(bank);
        &self.data[index as usize]
    }

    /// Writes entry `index`, consuming one write port on its bank this
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn write(&mut self, index: u64, value: T) {
        let bank = self.bank_of(index);
        self.writes_this_cycle[bank] += 1;
        self.total_writes += 1;
        self.check_budget(bank);
        self.mark_touched(index);
        self.mark_dirty(index);
        self.data[index as usize] = value;
    }

    /// Reads without consuming a port — for repair paths that in hardware
    /// recover state from metadata rather than from the array, and for
    /// test/debug inspection.
    pub fn peek(&self, index: u64) -> &T {
        &self.data[index as usize]
    }

    /// Writes without consuming a port — for initialization and for repair
    /// paths that in hardware restore state held in pipeline registers.
    pub fn poke(&mut self, index: u64, value: T) {
        self.mark_touched(index);
        self.mark_dirty(index);
        self.data[index as usize] = value;
    }

    #[inline]
    fn mark_touched(&mut self, index: u64) {
        let f = &mut self.touched_flag[index as usize];
        if !*f {
            *f = true;
            self.rows_touched += 1;
        }
    }

    #[inline]
    fn mark_dirty(&mut self, index: u64) {
        if let Some(b) = &mut self.baseline {
            let flag = &mut b.dirty_flag[index as usize];
            if !*flag {
                *flag = true;
                b.dirty.push(index);
            }
        }
    }

    /// Arms the current state as the reset baseline: the data array and
    /// accounting counters are snapshotted once, and every subsequent
    /// [`write`](Self::write) or [`poke`](Self::poke) records its row in a
    /// dirty set. [`reset_to_baseline`](Self::reset_to_baseline) then
    /// restores only the dirty rows. Re-arming replaces any prior baseline.
    pub fn arm_baseline(&mut self) {
        self.baseline = Some(Box::new(SramBaseline {
            data: self.data.clone(),
            cycle: self.cycle,
            reads_this_cycle: self.reads_this_cycle.clone(),
            writes_this_cycle: self.writes_this_cycle.clone(),
            total_reads: self.total_reads,
            total_writes: self.total_writes,
            violations_len: self.violations.len(),
            last_violation: self.violations.last().cloned(),
            dirty: Vec::new(),
            dirty_flag: vec![false; self.data.len()],
        }));
    }

    /// `true` when a baseline is armed.
    pub fn baseline_armed(&self) -> bool {
        self.baseline.is_some()
    }

    /// Rows written since the baseline was armed (diagnostics / tests).
    pub fn dirty_rows(&self) -> usize {
        self.baseline.as_ref().map_or(0, |b| b.dirty.len())
    }

    /// Restores the armed baseline, touching only the rows written since
    /// [`arm_baseline`](Self::arm_baseline): dirty rows are copied back,
    /// accounting counters restored, and violations recorded since arming
    /// discarded. The baseline stays armed for the next rerun.
    ///
    /// # Panics
    ///
    /// Panics if no baseline is armed.
    pub fn reset_to_baseline(&mut self) {
        let b = self.baseline.as_mut().expect("no baseline armed");
        for &row in &b.dirty {
            self.data[row as usize] = b.data[row as usize].clone();
            b.dirty_flag[row as usize] = false;
        }
        b.dirty.clear();
        self.cycle = b.cycle;
        self.reads_this_cycle.copy_from_slice(&b.reads_this_cycle);
        self.writes_this_cycle.copy_from_slice(&b.writes_this_cycle);
        self.total_reads = b.total_reads;
        self.total_writes = b.total_writes;
        self.violations.truncate(b.violations_len);
        // `check_budget` updates the trailing record in place when a
        // post-arm violation shares its (cycle, bank) key; restore it.
        if let (Some(last), Some(snap)) = (self.violations.last_mut(), &b.last_violation) {
            *last = snap.clone();
        }
    }

    /// Drops any armed baseline, returning to plain (untracked) operation.
    pub fn disarm_baseline(&mut self) {
        self.baseline = None;
    }

    /// Port violations observed so far.
    pub fn violations(&self) -> &[PortViolation] {
        &self.violations
    }

    /// Lifetime (reads, writes) — used for energy-style reporting.
    pub fn access_counts(&self) -> (u64, u64) {
        (self.total_reads, self.total_writes)
    }

    /// Rows written at least once since construction (or since the last
    /// [`load_state`](Self::load_state), which resets the touched set) —
    /// the utilization numerator interval telemetry reports against
    /// [`len`](Self::len).
    pub fn rows_touched(&self) -> u64 {
        self.rows_touched
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.spec.entries
    }

    /// Always false: the constructor rejects empty SRAMs.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serializes the complete model state — accounting epoch, lifetime
    /// access counts, recorded violations, and every data cell (encoded by
    /// `cell`) — for warm-state checkpoints. The geometry itself is not
    /// stored: a snapshot only restores into a model of identical shape,
    /// which the caller guarantees by construction.
    pub fn save_state(&self, w: &mut StateWriter, mut cell: impl FnMut(&mut StateWriter, &T)) {
        w.begin_section("sram");
        w.write_u64(self.cycle);
        for &r in &self.reads_this_cycle {
            w.write_u64(u64::from(r));
        }
        for &wr in &self.writes_this_cycle {
            w.write_u64(u64::from(wr));
        }
        w.write_u64(self.total_reads);
        w.write_u64(self.total_writes);
        w.write_u64(self.violations.len() as u64);
        for v in &self.violations {
            w.write_u64(v.cycle);
            w.write_u64(v.bank);
            w.write_u64(u64::from(v.reads));
            w.write_u64(u64::from(v.writes));
        }
        for d in &self.data {
            cell(w, d);
        }
        w.end_section();
    }

    /// Restores state saved by [`save_state`](Self::save_state) into a
    /// model of identical geometry, decoding each data cell with `cell`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input; the model must then be
    /// discarded.
    pub fn load_state(
        &mut self,
        r: &mut StateReader<'_>,
        mut cell: impl FnMut(&mut StateReader<'_>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        // A restore replaces the whole state; any armed baseline no longer
        // describes it, and the touched-set gauge restarts.
        self.baseline = None;
        self.touched_flag.fill(false);
        self.rows_touched = 0;
        r.open_section("sram")?;
        self.cycle = r.read_u64("sram cycle")?;
        for x in &mut self.reads_this_cycle {
            *x = r.read_u64_capped("sram bank reads", u64::from(u32::MAX))? as u32;
        }
        for x in &mut self.writes_this_cycle {
            *x = r.read_u64_capped("sram bank writes", u64::from(u32::MAX))? as u32;
        }
        self.total_reads = r.read_u64("sram total reads")?;
        self.total_writes = r.read_u64("sram total writes")?;
        let nviol = r.read_u64_capped("sram violation count", 1 << 20)? as usize;
        self.violations.clear();
        for _ in 0..nviol {
            self.violations.push(PortViolation {
                cycle: r.read_u64("violation cycle")?,
                bank: r.read_u64("violation bank")?,
                reads: r.read_u64_capped("violation reads", u64::from(u32::MAX))? as u32,
                writes: r.read_u64_capped("violation writes", u64::from(u32::MAX))? as u32,
            });
        }
        for d in &mut self.data {
            *d = cell(r)?;
        }
        r.close_section()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_port_allows_one_read_one_write() {
        let mut s = SramModel::new(8, 4, PortKind::DualPort, 0u32);
        s.begin_cycle(1);
        let _ = *s.read(0);
        s.write(1, 5);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn dual_port_flags_second_read() {
        let mut s = SramModel::new(8, 4, PortKind::DualPort, 0u32);
        s.begin_cycle(1);
        let _ = *s.read(0);
        let _ = *s.read(1);
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].reads, 2);
    }

    #[test]
    fn single_port_flags_read_plus_write() {
        let mut s = SramModel::new(8, 4, PortKind::SinglePort, 0u32);
        s.begin_cycle(3);
        let _ = *s.read(0);
        s.write(0, 1);
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].cycle, 3);
    }

    #[test]
    fn two_read_one_write_budget() {
        let mut s = SramModel::new(8, 4, PortKind::TwoReadOneWrite, 0u32);
        s.begin_cycle(0);
        let _ = *s.read(0);
        let _ = *s.read(1);
        s.write(2, 9);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn budget_resets_each_cycle() {
        let mut s = SramModel::new(8, 4, PortKind::DualPort, 0u32);
        for c in 0..10 {
            s.begin_cycle(c);
            let _ = *s.read(0);
            s.write(0, c as u32);
        }
        assert!(s.violations().is_empty());
        assert_eq!(s.access_counts(), (10, 10));
    }

    #[test]
    fn one_violation_record_per_cycle() {
        let mut s = SramModel::new(8, 4, PortKind::DualPort, 0u32);
        s.begin_cycle(7);
        for _ in 0..5 {
            let _ = *s.read(0);
        }
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].reads, 5);
    }

    #[test]
    fn peek_and_poke_do_not_consume_ports() {
        let mut s = SramModel::new(8, 4, PortKind::SinglePort, 0u32);
        s.begin_cycle(0);
        s.poke(3, 42);
        assert_eq!(*s.peek(3), 42);
        assert!(s.violations().is_empty());
        assert_eq!(s.access_counts(), (0, 0));
    }

    #[test]
    fn banked_reads_are_conflict_free_across_banks() {
        let mut s = SramModel::new_banked(64, 4, PortKind::DualPort, 8, 0u32);
        s.begin_cycle(1);
        for bank in 0..8 {
            let _ = *s.read(s.entry_of(bank, 3));
        }
        assert!(
            s.violations().is_empty(),
            "one read per bank is within budget"
        );
    }

    #[test]
    fn banked_reads_conflict_within_a_bank() {
        let mut s = SramModel::new_banked(64, 4, PortKind::DualPort, 8, 0u32);
        s.begin_cycle(1);
        let _ = *s.read(s.entry_of(2, 0));
        let _ = *s.read(s.entry_of(2, 5));
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].bank, 2);
    }

    #[test]
    fn entry_of_maps_into_bank_region() {
        let s = SramModel::new_banked(64, 4, PortKind::DualPort, 8, 0u32);
        assert_eq!(s.rows_per_bank(), 8);
        assert_eq!(s.entry_of(0, 3), 3);
        assert_eq!(s.entry_of(3, 2), 26);
        assert_eq!(s.entry_of(3, 10), 26, "row wraps within the bank");
    }

    #[test]
    #[should_panic(expected = "banks must divide entries")]
    fn banks_must_divide_entries() {
        let _ = SramModel::new_banked(10, 4, PortKind::DualPort, 4, 0u32);
    }

    #[test]
    fn baseline_reset_restores_only_dirty_rows() {
        let mut s = SramModel::new(64, 8, PortKind::DualPort, 0u32);
        for i in 0..64 {
            s.poke(i, i as u32 + 100);
        }
        s.begin_cycle(5);
        let _ = *s.read(0);
        s.arm_baseline();
        assert_eq!(s.dirty_rows(), 0);
        s.begin_cycle(6);
        s.write(3, 999);
        s.poke(7, 888);
        let _ = *s.read(1);
        assert_eq!(s.dirty_rows(), 2);
        s.reset_to_baseline();
        assert_eq!(*s.peek(3), 103);
        assert_eq!(*s.peek(7), 107);
        assert_eq!(s.access_counts(), (1, 0), "counters restored to arm point");
        assert_eq!(s.dirty_rows(), 0);
        // The baseline stays armed: a second mutate/reset round works.
        s.write(9, 1);
        s.reset_to_baseline();
        assert_eq!(*s.peek(9), 109);
    }

    #[test]
    fn baseline_reset_discards_post_arm_violations() {
        let mut s = SramModel::new(8, 4, PortKind::DualPort, 0u32);
        s.begin_cycle(1);
        let _ = *s.read(0);
        let _ = *s.read(1); // pre-arm violation
        s.arm_baseline();
        s.begin_cycle(2);
        let _ = *s.read(0);
        let _ = *s.read(1);
        let _ = *s.read(2); // post-arm violation
        assert_eq!(s.violations().len(), 2);
        s.reset_to_baseline();
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].cycle, 1);
        assert_eq!(s.violations()[0].reads, 2);
    }

    #[test]
    fn baseline_survives_same_cycle_violation_update() {
        // A post-arm access in the *same* cycle/bank as the pre-arm
        // trailing violation mutates that record in place; reset must
        // restore its original field values.
        let mut s = SramModel::new(8, 4, PortKind::DualPort, 0u32);
        s.begin_cycle(1);
        let _ = *s.read(0);
        let _ = *s.read(1); // violation: reads = 2
        s.arm_baseline();
        let _ = *s.read(2); // same cycle: record updated to reads = 3
        assert_eq!(s.violations()[0].reads, 3);
        s.reset_to_baseline();
        assert_eq!(s.violations()[0].reads, 2);
        assert_eq!(s.access_counts(), (2, 0));
    }

    #[test]
    fn load_state_disarms_baseline() {
        let mut s = SramModel::new(8, 4, PortKind::DualPort, 0u32);
        let mut w = StateWriter::new();
        s.save_state(&mut w, |w, &v| w.write_u64(u64::from(v)));
        let bytes = w.finish();
        s.arm_baseline();
        let mut r = StateReader::new(&bytes);
        s.load_state(&mut r, |r| Ok(r.read_u64("cell")? as u32))
            .unwrap();
        assert!(!s.baseline_armed());
    }

    #[test]
    fn rows_touched_counts_distinct_written_rows() {
        let mut s = SramModel::new(16, 4, PortKind::DualPort, 0u32);
        assert_eq!(s.rows_touched(), 0);
        s.begin_cycle(0);
        s.write(3, 1);
        s.write(3, 2); // same row: still one touched row
        s.poke(7, 9);
        let _ = *s.read(5); // reads do not touch
        assert_eq!(s.rows_touched(), 2);
        // Dirty-baseline resets do not clear the touched gauge...
        s.arm_baseline();
        s.write(9, 1);
        s.reset_to_baseline();
        assert_eq!(s.rows_touched(), 3);
        // ...but a full state restore does.
        let mut w = StateWriter::new();
        s.save_state(&mut w, |w, &v| w.write_u64(u64::from(v)));
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes);
        s.load_state(&mut r, |r| Ok(r.read_u64("cell")? as u32))
            .unwrap();
        assert_eq!(s.rows_touched(), 0);
    }

    #[test]
    fn spec_storage_math() {
        let s = SramModel::new(2048, 40, PortKind::DualPort, 0u8);
        assert_eq!(s.spec().total_bits(), 81920);
        assert!((s.spec().kilobytes() - 10.0).abs() < 1e-9);
    }
}
