//! A tiny deterministic RNG.

use crate::snapshot::{SnapError, Snapshot, StateReader, StateWriter};

/// SplitMix64: a fast, high-quality 64-bit PRNG with a single `u64` of
/// state.
///
/// Used for deterministic stimulus generation and for the rare randomized
/// hardware policies (e.g. TAGE's pseudo-random allocation victim choice,
/// which real implementations drive from an LFSR).
///
/// # Examples
///
/// ```
/// use cobra_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        crate::bits::mix64(self.state)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift bounded sampling; the bias is negligible for
        // simulation bounds (≤ 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A biased coin: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl Snapshot for SplitMix64 {
    fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.state);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.state = r.read_u64("rng state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = SplitMix64::new(42);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits} hits for p=0.3");
    }
}
