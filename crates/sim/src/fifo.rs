//! A bounded FIFO with hardware-like enqueue/dequeue semantics.

use std::collections::VecDeque;

/// A bounded first-in-first-out queue used for decoupling pipeline stages
/// (fetch buffers, issue queues, load/store queues).
///
/// Unlike [`CircularBuffer`](crate::CircularBuffer) it has no token-based
/// random access; it models a simple ready/valid queue with backpressure.
///
/// # Examples
///
/// ```
/// use cobra_sim::Fifo;
///
/// let mut fb: Fifo<u32> = Fifo::new(2);
/// assert!(fb.enqueue(1).is_ok());
/// assert!(fb.enqueue(2).is_ok());
/// assert!(fb.enqueue(3).is_err(), "full queue exerts backpressure");
/// assert_eq!(fb.dequeue(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum occupancy.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when a further enqueue would fail.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Adds an item at the back, or hands it back when full.
    pub fn enqueue(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Removes the front item.
    pub fn dequeue(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Borrows the front item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Drops all contents (pipeline flush).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let mut q = Fifo::new(4);
        for i in 0..4 {
            q.enqueue(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn backpressure() {
        let mut q = Fifo::new(1);
        q.enqueue('a').unwrap();
        assert_eq!(q.enqueue('b'), Err('b'));
        assert_eq!(q.free(), 0);
    }

    #[test]
    fn clear_flushes() {
        let mut q = Fifo::new(3);
        q.enqueue(1).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut q = Fifo::new(2);
        q.enqueue(7).unwrap();
        assert_eq!(q.front(), Some(&7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _: Fifo<u8> = Fifo::new(0);
    }
}
