//! A bounded circular buffer with stable token-based access.
//!
//! The composer's history file (Section IV-B1 of the paper) is "a circular
//! buffer which tracks the state of predictions in the pipeline": entries
//! are allocated at predict time, updated out-of-order when the backend
//! resolves branches, walked forwards during repair, and dequeued in program
//! order at commit. [`CircularBuffer`] provides exactly that access pattern:
//! push-back allocation returning a stable [`token`](CircularBuffer::push),
//! random access by token while the entry is live, in-order pop-front, and
//! bulk truncation of the youngest entries (squash).

use crate::snapshot::{SnapError, StateReader, StateWriter};

/// A bounded ring buffer whose entries are addressed by monotonically
/// increasing tokens.
///
/// Tokens are never reused while an entry is live, so a stale token (for an
/// entry already popped or squashed) is detected rather than silently
/// aliasing — the software analogue of the generation bits hardware queues
/// carry.
///
/// # Examples
///
/// ```
/// use cobra_sim::CircularBuffer;
///
/// let mut q: CircularBuffer<&str> = CircularBuffer::new(4);
/// let a = q.push("a").unwrap();
/// let b = q.push("b").unwrap();
/// assert_eq!(q.get(a), Some(&"a"));
/// assert_eq!(q.pop(), Some((a, "a")));
/// q.squash_after(b); // keep b, drop anything younger
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CircularBuffer<T> {
    slots: Vec<Option<T>>,
    head: u64, // token of the oldest live entry
    tail: u64, // token the next push will receive
}

impl<T> CircularBuffer<T> {
    /// Creates a buffer with room for `capacity` live entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        Self {
            slots,
            head: 0,
            tail: 0,
        }
    }

    /// Maximum number of live entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// `true` if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// `true` if a push would fail.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    fn slot_of(&self, token: u64) -> usize {
        (token % self.slots.len() as u64) as usize
    }

    /// Appends an entry, returning its token, or gives the value back if the
    /// buffer is full (the caller models backpressure).
    pub fn push(&mut self, value: T) -> Result<u64, T> {
        if self.is_full() {
            return Err(value);
        }
        let token = self.tail;
        let slot = self.slot_of(token);
        self.slots[slot] = Some(value);
        self.tail += 1;
        Ok(token)
    }

    fn is_live(&self, token: u64) -> bool {
        token >= self.head && token < self.tail
    }

    /// Returns the entry for `token`, or `None` if it has been popped or
    /// squashed.
    pub fn get(&self, token: u64) -> Option<&T> {
        if self.is_live(token) {
            self.slots[self.slot_of(token)].as_ref()
        } else {
            None
        }
    }

    /// Mutable access by token.
    pub fn get_mut(&mut self, token: u64) -> Option<&mut T> {
        if self.is_live(token) {
            let slot = self.slot_of(token);
            self.slots[slot].as_mut()
        } else {
            None
        }
    }

    /// Removes and returns the oldest entry with its token.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.is_empty() {
            return None;
        }
        let token = self.head;
        let slot = self.slot_of(token);
        let value = self.slots[slot].take().expect("live slot must be occupied");
        self.head += 1;
        Some((token, value))
    }

    /// Borrows the oldest entry without removing it.
    pub fn front(&self) -> Option<(u64, &T)> {
        if self.is_empty() {
            None
        } else {
            Some((self.head, self.get(self.head)?))
        }
    }

    /// Drops every entry *younger* than `token`, keeping `token` itself.
    /// This is the history-file squash after a misprediction resolves at
    /// `token`. A stale token (older than head) squashes nothing extra; a
    /// token at or beyond the tail is a caller bug.
    ///
    /// # Panics
    ///
    /// Panics if `token >= tail` (never allocated or not yet allocated).
    pub fn squash_after(&mut self, token: u64) {
        assert!(token < self.tail, "squash_after on unallocated token");
        let new_tail = token + 1;
        if new_tail >= self.tail {
            return;
        }
        for t in new_tail..self.tail {
            let slot = self.slot_of(t);
            self.slots[slot] = None;
        }
        self.tail = new_tail.max(self.head);
    }

    /// Drops every live entry.
    pub fn clear(&mut self) {
        for t in self.head..self.tail {
            let slot = self.slot_of(t);
            self.slots[slot] = None;
        }
        self.head = self.tail;
    }

    /// Iterates over live entries oldest-first as `(token, &entry)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        (self.head..self.tail).filter_map(move |t| self.get(t).map(|v| (t, v)))
    }

    /// Token range `[head, tail)` of live entries.
    pub fn live_tokens(&self) -> std::ops::Range<u64> {
        self.head..self.tail
    }

    /// Serializes the token window and every live entry (oldest first,
    /// encoded by `item`) for warm-state checkpoints. Restoring preserves
    /// token values exactly, including past wraparound.
    pub fn save_state(&self, w: &mut StateWriter, mut item: impl FnMut(&mut StateWriter, &T)) {
        w.begin_section("ring");
        w.write_u64(self.head);
        w.write_u64(self.tail);
        for (_, v) in self.iter() {
            item(w, v);
        }
        w.end_section();
    }

    /// Restores state saved by [`save_state`](Self::save_state) into a
    /// buffer of the same capacity, decoding each live entry with `item`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the stream is malformed or the saved
    /// window exceeds this buffer's capacity.
    pub fn load_state(
        &mut self,
        r: &mut StateReader<'_>,
        mut item: impl FnMut(&mut StateReader<'_>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        r.open_section("ring")?;
        let head = r.read_u64("ring head")?;
        let tail = r.read_u64("ring tail")?;
        if tail < head || tail - head > self.capacity() as u64 {
            return Err(SnapError::Shape {
                detail: format!(
                    "ring window [{head}, {tail}) does not fit capacity {}",
                    self.capacity()
                ),
            });
        }
        for slot in &mut self.slots {
            *slot = None;
        }
        self.head = head;
        self.tail = tail;
        for t in head..tail {
            let v = item(r)?;
            let slot = self.slot_of(t);
            self.slots[slot] = Some(v);
        }
        r.close_section()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = CircularBuffer::new(3);
        let t0 = q.push(10).unwrap();
        let t1 = q.push(20).unwrap();
        assert_eq!(q.pop(), Some((t0, 10)));
        assert_eq!(q.pop(), Some((t1, 20)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn backpressure_on_full() {
        let mut q = CircularBuffer::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        q.pop();
        assert!(q.push(3).is_ok());
    }

    #[test]
    fn tokens_monotonic_across_wraparound() {
        let mut q = CircularBuffer::new(2);
        let mut last = None;
        for i in 0..10 {
            let t = q.push(i).unwrap();
            if let Some(prev) = last {
                assert!(t > prev);
            }
            last = Some(t);
            q.pop();
        }
    }

    #[test]
    fn stale_token_returns_none() {
        let mut q = CircularBuffer::new(2);
        let t = q.push(5).unwrap();
        q.pop();
        assert_eq!(q.get(t), None);
    }

    #[test]
    fn squash_drops_younger_entries() {
        let mut q = CircularBuffer::new(8);
        let t0 = q.push(0).unwrap();
        let t1 = q.push(1).unwrap();
        let _t2 = q.push(2).unwrap();
        let _t3 = q.push(3).unwrap();
        q.squash_after(t1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.get(t0), Some(&0));
        assert_eq!(q.get(t1), Some(&1));
        // pushes after squash get fresh tokens continuing from the cut point
        let t4 = q.push(4).unwrap();
        assert_eq!(t4, t1 + 1);
        assert_eq!(q.get(t4), Some(&4));
    }

    #[test]
    fn squash_on_already_popped_token_is_noop_for_live() {
        let mut q = CircularBuffer::new(4);
        let t0 = q.push(0).unwrap();
        q.push(1).unwrap();
        q.pop(); // t0 gone
        q.squash_after(t0); // squashes everything younger than t0
        assert!(q.is_empty());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut q = CircularBuffer::new(2);
        let t = q.push(1).unwrap();
        *q.get_mut(t).unwrap() = 99;
        assert_eq!(q.get(t), Some(&99));
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut q = CircularBuffer::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        q.pop();
        let vals: Vec<i32> = q.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn clear_empties() {
        let mut q = CircularBuffer::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert!(q.push(3).is_ok());
    }

    #[test]
    #[should_panic(expected = "unallocated token")]
    fn squash_future_token_panics() {
        let mut q: CircularBuffer<i32> = CircularBuffer::new(2);
        q.squash_after(0);
    }
}
