//! Structured state serialization for warm-state checkpoints.
//!
//! The COBRA Binary Snapshot (`.cbs`) format captures a composed
//! pipeline's *complete* warm state — every component table, the history
//! file, the history providers, the host core — so a grid run can restore
//! at the warmup boundary instead of re-simulating it. The container
//! framing (magic, version, CRC-32C) lives in `cobra_uarch::checkpoint`;
//! this module provides the *payload* discipline every layer shares:
//!
//! * [`StateWriter`] — an infallible, append-only encoder. Every field is
//!   written with a one-byte type tag followed by a varint payload, and
//!   fields are grouped into named *sections* whose field counts are
//!   recorded in the stream.
//! * [`StateReader`] — the strict mirror. Every read validates the type
//!   tag, every `open_section` validates the section name, and every
//!   `close_section` compares the number of fields *read* against the
//!   number *written*. A component that skips a field — or reads one it
//!   never wrote — fails loudly with a [`SnapError`], never silently
//!   misinterprets downstream bytes.
//! * [`Snapshot`] — the save/load trait implemented by every stateful
//!   simulation structure.
//!
//! Writers are infallible (they only append to a `Vec<u8>`); readers are
//! fallible, returning the precise [`SnapError`] that describes the first
//! inconsistency encountered.

use crate::varint;
use std::fmt;

/// Type tag for an unsigned varint field.
const TAG_U64: u8 = 0xD1;
/// Type tag for a ZigZag-folded signed varint field.
const TAG_I64: u8 = 0xD2;
/// Type tag for a boolean field (one payload byte, `0` or `1`).
const TAG_BOOL: u8 = 0xD3;
/// Type tag for a length-prefixed byte-string field.
const TAG_BYTES: u8 = 0xD4;
/// Type tag opening a named section.
const TAG_SEC_BEGIN: u8 = 0xD5;
/// Type tag closing a section (followed by the written field count).
const TAG_SEC_END: u8 = 0xD6;

/// Longest section name the reader will accept.
const MAX_NAME_LEN: usize = 128;

/// A precise decode/validation error from [`StateReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before `what` could be read.
    Truncated {
        /// The structure that ran out of bytes.
        what: &'static str,
    },
    /// A field's type tag did not match the read call.
    TagMismatch {
        /// The tag the reader expected.
        expected: &'static str,
        /// The tag byte actually found.
        got: u8,
        /// Byte offset of the unexpected tag.
        at: usize,
    },
    /// A section opened under a different name than the reader expected.
    SectionName {
        /// The name the reader asked for.
        expected: String,
        /// The name stored in the stream.
        got: String,
    },
    /// A section's read count differed from its written count — a
    /// component skipped fields, or read fields it never wrote.
    FieldCount {
        /// The section's name.
        section: String,
        /// Fields the writer recorded.
        wrote: u64,
        /// Fields the reader consumed.
        read: u64,
    },
    /// A varint was truncated or non-canonical.
    BadVarint {
        /// The field being decoded.
        what: &'static str,
    },
    /// A length or value exceeded its hard cap.
    LimitExceeded {
        /// The field being decoded.
        what: &'static str,
        /// The decoded value.
        got: u64,
        /// The cap it violated.
        max: u64,
    },
    /// A field decoded to a semantically invalid value.
    BadValue {
        /// The field being decoded.
        what: &'static str,
        /// The offending value.
        got: u64,
    },
    /// Bytes remained after the final `finish`.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
    /// The decoded state does not fit the structure being restored (for
    /// example, a history register of a different width).
    Shape {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { what } => write!(f, "snapshot truncated reading {what}"),
            Self::TagMismatch { expected, got, at } => {
                write!(f, "expected {expected} tag at byte {at}, found 0x{got:02X}")
            }
            Self::SectionName { expected, got } => {
                write!(f, "expected section {expected:?}, found {got:?}")
            }
            Self::FieldCount {
                section,
                wrote,
                read,
            } => write!(
                f,
                "section {section:?} wrote {wrote} fields but {read} were read"
            ),
            Self::BadVarint { what } => write!(f, "bad varint decoding {what}"),
            Self::LimitExceeded { what, got, max } => {
                write!(f, "{what} is {got}, exceeding the cap of {max}")
            }
            Self::BadValue { what, got } => write!(f, "invalid value {got} for {what}"),
            Self::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after snapshot state")
            }
            Self::Shape { detail } => write!(f, "snapshot shape mismatch: {detail}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// The infallible structured encoder for snapshot state.
///
/// Fields are type-tagged and grouped into named sections; the written
/// field count of each section is recorded so [`StateReader`] can verify
/// that the loader consumed exactly what the saver produced.
///
/// # Examples
///
/// ```
/// use cobra_sim::{StateReader, StateWriter};
///
/// let mut w = StateWriter::new();
/// w.begin_section("demo");
/// w.write_u64(7);
/// w.write_bool(true);
/// w.end_section();
/// let bytes = w.finish();
///
/// let mut r = StateReader::new(&bytes);
/// r.open_section("demo").unwrap();
/// assert_eq!(r.read_u64("seven").unwrap(), 7);
/// assert!(r.read_bool("flag").unwrap());
/// r.close_section().unwrap();
/// r.finish().unwrap();
/// ```
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
    /// Field counts: index 0 is the root scope, deeper entries are open
    /// sections (innermost last).
    counts: Vec<u64>,
}

impl StateWriter {
    /// A fresh writer with no open sections.
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            counts: vec![0],
        }
    }

    fn bump(&mut self) {
        *self.counts.last_mut().expect("root scope always present") += 1;
    }

    /// Writes an unsigned integer field.
    pub fn write_u64(&mut self, v: u64) {
        self.bump();
        self.buf.push(TAG_U64);
        varint::write_u64(&mut self.buf, v);
    }

    /// Writes a signed integer field (ZigZag-folded).
    pub fn write_i64(&mut self, v: i64) {
        self.bump();
        self.buf.push(TAG_I64);
        varint::write_i64(&mut self.buf, v);
    }

    /// Writes a boolean field.
    pub fn write_bool(&mut self, v: bool) {
        self.bump();
        self.buf.push(TAG_BOOL);
        self.buf.push(v as u8);
    }

    /// Writes a length-prefixed byte-string field.
    pub fn write_bytes(&mut self, v: &[u8]) {
        self.bump();
        self.buf.push(TAG_BYTES);
        varint::write_u64(&mut self.buf, v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a string field (UTF-8 bytes).
    pub fn write_str(&mut self, v: &str) {
        self.write_bytes(v.as_bytes());
    }

    /// Opens a named section. The section counts as one field of its
    /// parent scope.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or longer than the reader's cap — a
    /// programming error in the saver, not a data error.
    pub fn begin_section(&mut self, name: &str) {
        assert!(
            !name.is_empty() && name.len() <= MAX_NAME_LEN,
            "section name {name:?} out of range"
        );
        self.bump();
        self.buf.push(TAG_SEC_BEGIN);
        varint::write_u64(&mut self.buf, name.len() as u64);
        self.buf.extend_from_slice(name.as_bytes());
        self.counts.push(0);
    }

    /// Closes the innermost open section, recording its field count.
    ///
    /// # Panics
    ///
    /// Panics if no section is open.
    pub fn end_section(&mut self) {
        assert!(self.counts.len() > 1, "end_section without begin_section");
        let n = self.counts.pop().expect("checked above");
        self.buf.push(TAG_SEC_END);
        varint::write_u64(&mut self.buf, n);
    }

    /// Finishes encoding and returns the byte stream.
    ///
    /// # Panics
    ///
    /// Panics if any section is still open — a saver that forgets an
    /// `end_section` must fail at save time, not at restore time.
    pub fn finish(self) -> Vec<u8> {
        assert!(
            self.counts.len() == 1,
            "{} section(s) left open at finish",
            self.counts.len() - 1
        );
        self.buf
    }

    /// Bytes encoded so far (all sections included).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// The strict structured decoder mirroring [`StateWriter`].
///
/// See the example on [`StateWriter`].
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Open scopes: `(section name, fields read so far)`. Index 0 is the
    /// root scope (name unused).
    scopes: Vec<(String, u64)>,
}

impl<'a> StateReader<'a> {
    /// A reader over an encoded snapshot payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            scopes: vec![(String::new(), 0)],
        }
    }

    fn bump(&mut self) {
        self.scopes.last_mut().expect("root scope always present").1 += 1;
    }

    fn take_tag(&mut self, expected: u8, label: &'static str) -> Result<(), SnapError> {
        let at = self.pos;
        let got = *self
            .buf
            .get(self.pos)
            .ok_or(SnapError::Truncated { what: label })?;
        if got != expected {
            return Err(SnapError::TagMismatch {
                expected: label,
                got,
                at,
            });
        }
        self.pos += 1;
        Ok(())
    }

    fn varint_u64(&mut self, what: &'static str) -> Result<u64, SnapError> {
        varint::read_u64(self.buf, &mut self.pos).ok_or(SnapError::BadVarint { what })
    }

    /// Reads an unsigned integer field; `what` names it in errors.
    pub fn read_u64(&mut self, what: &'static str) -> Result<u64, SnapError> {
        self.take_tag(TAG_U64, what)?;
        let v = self.varint_u64(what)?;
        self.bump();
        Ok(v)
    }

    /// Reads a signed integer field; `what` names it in errors.
    pub fn read_i64(&mut self, what: &'static str) -> Result<i64, SnapError> {
        self.take_tag(TAG_I64, what)?;
        let v = varint::read_i64(self.buf, &mut self.pos).ok_or(SnapError::BadVarint { what })?;
        self.bump();
        Ok(v)
    }

    /// Reads a boolean field, rejecting payload bytes other than 0 or 1.
    pub fn read_bool(&mut self, what: &'static str) -> Result<bool, SnapError> {
        self.take_tag(TAG_BOOL, what)?;
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(SnapError::Truncated { what })?;
        self.pos += 1;
        if b > 1 {
            return Err(SnapError::BadValue {
                what,
                got: u64::from(b),
            });
        }
        self.bump();
        Ok(b == 1)
    }

    /// Reads an unsigned integer field and enforces `v <= max`.
    pub fn read_u64_capped(&mut self, what: &'static str, max: u64) -> Result<u64, SnapError> {
        let v = self.read_u64(what)?;
        if v > max {
            return Err(SnapError::LimitExceeded { what, got: v, max });
        }
        Ok(v)
    }

    /// Reads a byte-string field of at most `max` bytes.
    pub fn read_bytes(&mut self, what: &'static str, max: usize) -> Result<&'a [u8], SnapError> {
        self.take_tag(TAG_BYTES, what)?;
        let len = self.varint_u64(what)?;
        if len > max as u64 {
            return Err(SnapError::LimitExceeded {
                what,
                got: len,
                max: max as u64,
            });
        }
        let len = len as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapError::Truncated { what })?;
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        self.bump();
        Ok(bytes)
    }

    /// Reads a UTF-8 string field of at most `max` bytes.
    pub fn read_str(&mut self, what: &'static str, max: usize) -> Result<String, SnapError> {
        let bytes = self.read_bytes(what, max)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::BadValue { what, got: 0 })
    }

    /// Opens a section, validating its stored name equals `name`.
    pub fn open_section(&mut self, name: &str) -> Result<(), SnapError> {
        self.take_tag(TAG_SEC_BEGIN, "section begin")?;
        let len = self.varint_u64("section name length")?;
        if len == 0 || len > MAX_NAME_LEN as u64 {
            return Err(SnapError::LimitExceeded {
                what: "section name length",
                got: len,
                max: MAX_NAME_LEN as u64,
            });
        }
        let len = len as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapError::Truncated {
                what: "section name",
            })?;
        let got = String::from_utf8_lossy(&self.buf[self.pos..end]).into_owned();
        self.pos = end;
        if got != name {
            return Err(SnapError::SectionName {
                expected: name.to_string(),
                got,
            });
        }
        self.bump();
        self.scopes.push((got, 0));
        Ok(())
    }

    /// Closes the innermost open section, verifying the reader consumed
    /// exactly as many fields as the writer produced.
    ///
    /// # Panics
    ///
    /// Panics if no section is open — mismatched open/close pairs are a
    /// programming error in the loader, not a data error.
    pub fn close_section(&mut self) -> Result<(), SnapError> {
        assert!(self.scopes.len() > 1, "close_section without open_section");
        self.take_tag(TAG_SEC_END, "section end")?;
        let wrote = self.varint_u64("section field count")?;
        let (section, read) = self.scopes.pop().expect("checked above");
        if wrote != read {
            return Err(SnapError::FieldCount {
                section,
                wrote,
                read,
            });
        }
        Ok(())
    }

    /// Finishes decoding, rejecting unread trailing bytes.
    ///
    /// # Panics
    ///
    /// Panics if a section is still open (loader bug).
    pub fn finish(self) -> Result<(), SnapError> {
        assert!(
            self.scopes.len() == 1,
            "{} section(s) left open at finish",
            self.scopes.len() - 1
        );
        if self.pos != self.buf.len() {
            return Err(SnapError::TrailingBytes {
                count: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }

    /// Current byte offset (for diagnostics).
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Full-state save/restore for a stateful simulation structure.
///
/// `save_state` must write *every* field that influences future behavior;
/// `load_state` must consume exactly those fields. The section field-count
/// check in [`StateReader::close_section`] turns any save/load asymmetry
/// into a hard [`SnapError::FieldCount`] instead of silent corruption.
pub trait Snapshot {
    /// Serializes the complete state into `w`.
    fn save_state(&self, w: &mut StateWriter);
    /// Restores the complete state from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the stream is malformed or does not fit
    /// this structure's shape. On error the structure may be partially
    /// restored and must not be used further.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_field_types() {
        let mut w = StateWriter::new();
        w.begin_section("outer");
        w.write_u64(u64::MAX);
        w.write_i64(-12345);
        w.write_bool(false);
        w.write_bytes(b"\x00\xffpayload");
        w.write_str("name");
        w.begin_section("inner");
        w.write_u64(0);
        w.end_section();
        w.end_section();
        let bytes = w.finish();

        let mut r = StateReader::new(&bytes);
        r.open_section("outer").unwrap();
        assert_eq!(r.read_u64("a").unwrap(), u64::MAX);
        assert_eq!(r.read_i64("b").unwrap(), -12345);
        assert!(!r.read_bool("c").unwrap());
        assert_eq!(r.read_bytes("d", 64).unwrap(), b"\x00\xffpayload");
        assert_eq!(r.read_str("e", 64).unwrap(), "name");
        r.open_section("inner").unwrap();
        assert_eq!(r.read_u64("f").unwrap(), 0);
        r.close_section().unwrap();
        r.close_section().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn skipped_field_is_detected() {
        let mut w = StateWriter::new();
        w.begin_section("s");
        w.write_u64(1);
        w.write_u64(2);
        w.end_section();
        let bytes = w.finish();

        // A loader that over-reads trips the tag check: the section-end
        // tag appears where it expects a third u64.
        let mut r = StateReader::new(&bytes);
        r.open_section("s").unwrap();
        assert_eq!(r.read_u64("one").unwrap(), 1);
        assert_eq!(r.read_u64("two").unwrap(), 2);
        assert!(matches!(
            r.read_u64("three"),
            Err(SnapError::TagMismatch { .. })
        ));

        // A loader that stops early also trips the tag check (a u64 tag
        // where it expects the section end) — the asymmetry cannot pass.
        let mut r = StateReader::new(&bytes);
        r.open_section("s").unwrap();
        assert_eq!(r.read_u64("one").unwrap(), 1);
        // Skip directly to close: tag mismatch (u64 tag where section-end
        // expected) — either way the asymmetry cannot pass silently.
        assert!(matches!(
            r.close_section(),
            Err(SnapError::TagMismatch { .. })
        ));
    }

    #[test]
    fn field_count_mismatch_is_precise() {
        // Hand-build a stream whose recorded count disagrees with its
        // actual fields.
        let mut w = StateWriter::new();
        w.begin_section("s");
        w.write_u64(1);
        w.end_section();
        let mut bytes = w.finish();
        // The trailing varint is the count (1); forge it to 2.
        let last = bytes.len() - 1;
        bytes[last] = 2;
        let mut r = StateReader::new(&bytes);
        r.open_section("s").unwrap();
        r.read_u64("one").unwrap();
        assert_eq!(
            r.close_section(),
            Err(SnapError::FieldCount {
                section: "s".into(),
                wrote: 2,
                read: 1
            })
        );
    }

    #[test]
    fn wrong_section_name_is_rejected() {
        let mut w = StateWriter::new();
        w.begin_section("alpha");
        w.end_section();
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes);
        assert_eq!(
            r.open_section("beta"),
            Err(SnapError::SectionName {
                expected: "beta".into(),
                got: "alpha".into()
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = StateWriter::new();
        w.write_u64(9);
        let mut bytes = w.finish();
        bytes.push(0x00);
        let mut r = StateReader::new(&bytes);
        r.read_u64("v").unwrap();
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes { count: 1 }));
    }

    #[test]
    fn truncation_never_panics() {
        let mut w = StateWriter::new();
        w.begin_section("s");
        w.write_u64(300);
        w.write_bool(true);
        w.write_bytes(b"abcdef");
        w.end_section();
        let bytes = w.finish();
        for len in 0..bytes.len() {
            let cut = &bytes[..len];
            let mut r = StateReader::new(cut);
            let res = r
                .open_section("s")
                .and_then(|_| r.read_u64("a"))
                .and_then(|_| r.read_bool("b"))
                .and_then(|_| r.read_bytes("c", 16).map(|_| ()))
                .and_then(|_| r.close_section())
                .and_then(|_| r.finish());
            assert!(res.is_err(), "truncation to {len} bytes was accepted");
        }
    }

    #[test]
    fn bool_payload_is_validated() {
        let mut w = StateWriter::new();
        w.write_bool(true);
        let mut bytes = w.finish();
        *bytes.last_mut().unwrap() = 7;
        let mut r = StateReader::new(&bytes);
        assert_eq!(
            r.read_bool("flag"),
            Err(SnapError::BadValue {
                what: "flag",
                got: 7
            })
        );
    }

    #[test]
    fn caps_are_enforced() {
        let mut w = StateWriter::new();
        w.write_u64(1000);
        w.write_bytes(&[0u8; 100]);
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes);
        assert!(matches!(
            r.read_u64_capped("v", 999),
            Err(SnapError::LimitExceeded {
                got: 1000,
                max: 999,
                ..
            })
        ));
        let mut r = StateReader::new(&bytes);
        r.read_u64("v").unwrap();
        assert!(matches!(
            r.read_bytes("b", 99),
            Err(SnapError::LimitExceeded {
                got: 100,
                max: 99,
                ..
            })
        ));
    }

    #[test]
    #[should_panic(expected = "section(s) left open")]
    fn unclosed_section_panics_at_save() {
        let mut w = StateWriter::new();
        w.begin_section("s");
        let _ = w.finish();
    }

    #[test]
    fn errors_display() {
        let e = SnapError::FieldCount {
            section: "tage".into(),
            wrote: 5,
            read: 4,
        };
        assert!(e.to_string().contains("tage"));
        let e = SnapError::Shape {
            detail: "width 8 != 16".into(),
        };
        assert!(e.to_string().contains("width 8 != 16"));
    }
}
