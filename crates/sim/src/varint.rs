//! LEB128 variable-length integer encoding, plus ZigZag for signed deltas.
//!
//! The COBRA Binary Trace format (`cobra_workloads::cbt`) stores per-branch
//! records as deltas; small magnitudes dominate, so unsigned values are
//! LEB128-encoded (7 payload bits per byte, continuation in the top bit)
//! and signed deltas are ZigZag-folded first so that values near zero of
//! either sign stay short.

/// Maximum encoded length of a `u64` varint (⌈64 / 7⌉ bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `v` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends the ZigZag-folded LEB128 encoding of `v` to `out`.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Folds a signed value into an unsigned one with small absolute values
/// mapping to small results: 0, -1, 1, -2, … → 0, 1, 2, 3, …
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Decodes a LEB128 `u64` from `buf` starting at `*pos`, advancing `*pos`
/// past the encoding.
///
/// Returns `None` if the buffer ends mid-varint or the encoding runs past
/// [`MAX_VARINT_LEN`] bytes (a non-canonical or corrupt stream).
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_LEN {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        // The 10th byte may only carry the single remaining bit.
        if shift == 63 && byte > 1 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
    None
}

/// Decodes a ZigZag-folded LEB128 `i64`; see [`read_u64`].
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    read_u64(buf, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_u64() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_LEN);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v), "value {v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn round_trips_i64() {
        for &v in &[
            0i64,
            1,
            -1,
            63,
            -64,
            2_000_000,
            -2_000_000,
            i64::MAX,
            i64::MIN,
        ] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos), Some(v), "value {v}");
        }
    }

    #[test]
    fn zigzag_is_small_for_small_magnitudes() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_u64(&buf[..cut], &mut pos), None, "cut {cut}");
        }
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // Eleven continuation bytes can never be a canonical u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
        // A 10th byte carrying more than the final bit overflows 64 bits.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn sequences_concatenate() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 7);
        write_i64(&mut buf, -300);
        write_u64(&mut buf, 1 << 40);
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Some(7));
        assert_eq!(read_i64(&buf, &mut pos), Some(-300));
        assert_eq!(read_u64(&buf, &mut pos), Some(1 << 40));
        assert_eq!(pos, buf.len());
    }
}
