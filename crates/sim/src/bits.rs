//! Bit-field extraction and hash-mixing helpers.
//!
//! Predictor index and tag functions are built from PC slices, history
//! folds, and xor mixing. These helpers keep those expressions readable and
//! centralize the masking discipline (an `n`-bit field is always stored in
//! the low `n` bits of a `u64`).

/// Returns a mask with the low `n` bits set.
///
/// # Panics
///
/// Panics if `n > 64`.
///
/// # Examples
///
/// ```
/// assert_eq!(cobra_sim::bits::mask(4), 0b1111);
/// assert_eq!(cobra_sim::bits::mask(0), 0);
/// assert_eq!(cobra_sim::bits::mask(64), u64::MAX);
/// ```
#[inline]
pub const fn mask(n: u32) -> u64 {
    assert!(n <= 64, "mask width exceeds 64 bits");
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Extracts bits `[lo, lo+len)` of `value` (little-endian bit order).
///
/// # Panics
///
/// Panics if `lo + len > 64`.
///
/// # Examples
///
/// ```
/// assert_eq!(cobra_sim::bits::field(0b1011_0100, 2, 4), 0b1101);
/// ```
#[inline]
pub const fn field(value: u64, lo: u32, len: u32) -> u64 {
    assert!(lo + len <= 64, "bit field out of range");
    (value >> lo) & mask(len)
}

/// Folds `value` down to `width` bits by xor-ing successive `width`-bit
/// chunks, the classic hardware history-compression scheme.
///
/// A `width` of zero always folds to zero.
///
/// # Examples
///
/// ```
/// // 0b1100_1010 folded to 4 bits = 0b1100 ^ 0b1010 = 0b0110
/// assert_eq!(cobra_sim::bits::xor_fold(0b1100_1010, 4), 0b0110);
/// ```
#[inline]
pub fn xor_fold(mut value: u64, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    if width >= 64 {
        return value;
    }
    let mut acc = 0u64;
    while value != 0 {
        acc ^= value & mask(width);
        value >>= width;
    }
    acc
}

/// A cheap invertible 64-bit mixer (splitmix64 finalizer) used to decorrelate
/// PC bits before indexing, standing in for the wire-permutation hashes used
/// in predictor RTL.
///
/// # Examples
///
/// ```
/// // Mixing is deterministic and spreads nearby PCs apart.
/// let a = cobra_sim::bits::mix64(0x4000_1000);
/// let b = cobra_sim::bits::mix64(0x4000_1004);
/// assert_ne!(a & 0xff, b & 0xff);
/// ```
#[inline]
pub const fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Computes `ceil(log2(n))`: the number of bits needed to index `n` entries.
///
/// Zero and one entry need zero index bits.
///
/// # Examples
///
/// ```
/// assert_eq!(cobra_sim::bits::clog2(1), 0);
/// assert_eq!(cobra_sim::bits::clog2(2), 1);
/// assert_eq!(cobra_sim::bits::clog2(1000), 10);
/// ```
#[inline]
pub const fn clog2(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// Returns `true` if `n` is a power of two (zero is not).
///
/// # Examples
///
/// ```
/// assert!(cobra_sim::bits::is_pow2(1024));
/// assert!(!cobra_sim::bits::is_pow2(0));
/// assert!(!cobra_sim::bits::is_pow2(24));
/// ```
#[inline]
pub const fn is_pow2(n: u64) -> bool {
    n != 0 && n & (n - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_widths() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xff);
        assert_eq!(mask(63), u64::MAX >> 1);
    }

    #[test]
    fn field_extracts_middle_bits() {
        let v = 0xdead_beef_u64;
        assert_eq!(field(v, 0, 16), 0xbeef);
        assert_eq!(field(v, 16, 16), 0xdead);
        assert_eq!(field(v, 4, 8), 0xee);
    }

    #[test]
    fn field_full_width_is_identity() {
        assert_eq!(field(u64::MAX, 0, 64), u64::MAX);
    }

    #[test]
    fn xor_fold_zero_width() {
        assert_eq!(xor_fold(u64::MAX, 0), 0);
    }

    #[test]
    fn xor_fold_wide_is_identity() {
        assert_eq!(xor_fold(0x1234, 64), 0x1234);
    }

    #[test]
    fn xor_fold_stays_in_width() {
        for w in 1..16 {
            for v in [0u64, 1, 0xffff, u64::MAX, 0x0123_4567_89ab_cdef] {
                assert!(xor_fold(v, w) <= mask(w), "fold exceeds width {w}");
            }
        }
    }

    #[test]
    fn mix64_is_deterministic_and_nonzero_sensitive() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
    }

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(0), 0);
        assert_eq!(clog2(16), 4);
        assert_eq!(clog2(17), 5);
        assert_eq!(clog2(1 << 20), 20);
    }

    #[test]
    fn pow2_checks() {
        assert!(is_pow2(2));
        assert!(!is_pow2(6));
    }
}
