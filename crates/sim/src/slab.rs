//! A fixed-capacity slab keyed by sequential tokens.
//!
//! The simulator hands out monotonically increasing packet ids (history
//! file tokens) and keeps per-packet side state in maps keyed by those
//! ids. The live id window is bounded by the history file's capacity, so
//! an ordered map (`BTreeMap`) is pure overhead on the per-cycle hot
//! path: every lookup walks a tree that never holds more than a few dozen
//! entries. [`TokenSlab`] replaces it with a power-of-two ring indexed by
//! `token & mask` — O(1) insert/get/remove with no allocation — while
//! keeping the map semantics the callers relied on (stale tokens miss,
//! `split_off`-style truncation of younger entries).
//!
//! Correctness depends on one invariant the simulator upholds by
//! construction: **live tokens span a window smaller than the slab
//! capacity** (a token is only live while its history-file entry is, and
//! the history file is a bounded circular buffer). [`TokenSlab::insert`]
//! panics if a collision with a *live* entry proves the invariant was
//! violated, rather than silently corrupting state.

use crate::snapshot::{SnapError, StateReader, StateWriter};

/// A bounded map from sequential `u64` tokens to values, backed by a
/// power-of-two ring.
///
/// # Examples
///
/// ```
/// use cobra_sim::TokenSlab;
///
/// let mut s: TokenSlab<&str> = TokenSlab::new(4);
/// s.insert(0, "a");
/// s.insert(1, "b");
/// assert_eq!(s.get(0), Some(&"a"));
/// assert_eq!(s.remove(1), Some("b"));
/// assert_eq!(s.get(1), None); // stale token misses
/// ```
#[derive(Debug, Clone)]
pub struct TokenSlab<T> {
    /// `slots[i]` holds `(token, value)`; a token of `u64::MAX` marks an
    /// empty slot.
    slots: Vec<(u64, Option<T>)>,
    mask: u64,
    /// One past the highest token ever inserted.
    hi: u64,
    len: usize,
    /// Armed reference state for dirty-slot resets (`None` when unarmed).
    baseline: Option<Box<SlabBaseline<T>>>,
}

/// The armed reference state of a [`TokenSlab`]: a copy of the slot ring
/// plus the slots mutated since arming, so a reset touches only what
/// changed (mirrors [`SramModel`](crate::SramModel) dirty-row resets).
#[derive(Debug, Clone)]
struct SlabBaseline<T> {
    slots: Vec<(u64, Option<T>)>,
    hi: u64,
    len: usize,
    dirty: Vec<u32>,
    dirty_flag: Vec<bool>,
}

const EMPTY: u64 = u64::MAX;

impl<T> TokenSlab<T> {
    /// Creates a slab able to hold any window of `capacity` consecutive
    /// tokens (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        let n = capacity.next_power_of_two();
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || (EMPTY, None));
        Self {
            slots,
            mask: n as u64 - 1,
            hi: 0,
            len: 0,
            baseline: None,
        }
    }

    #[inline]
    fn mark_slot(&mut self, i: usize) {
        if let Some(b) = &mut self.baseline {
            if !b.dirty_flag[i] {
                b.dirty_flag[i] = true;
                b.dirty.push(i as u32);
            }
        }
    }

    /// Slot capacity (always a power of two, ≥ the requested capacity).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn idx(&self, token: u64) -> usize {
        (token & self.mask) as usize
    }

    /// Inserts `value` under `token`, returning the previous value if the
    /// same token was already present (map semantics).
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied by a *different* live token — the
    /// live window exceeded the slab capacity, a caller bug.
    pub fn insert(&mut self, token: u64, value: T) -> Option<T> {
        debug_assert_ne!(token, EMPTY, "token reserved as the empty marker");
        let i = self.idx(token);
        self.mark_slot(i);
        let capacity = self.slots.len();
        let slot = &mut self.slots[i];
        let old = if slot.0 == token { slot.1.take() } else { None };
        assert!(
            slot.1.is_none(),
            "TokenSlab collision: token {} vs live token {} (capacity {capacity})",
            token,
            slot.0,
        );
        *slot = (token, Some(value));
        self.hi = self.hi.max(token + 1);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Borrows the value under `token`, if live.
    #[inline]
    pub fn get(&self, token: u64) -> Option<&T> {
        let slot = &self.slots[self.idx(token)];
        if slot.0 == token {
            slot.1.as_ref()
        } else {
            None
        }
    }

    /// Mutably borrows the value under `token`, if live.
    #[inline]
    pub fn get_mut(&mut self, token: u64) -> Option<&mut T> {
        let i = self.idx(token);
        self.mark_slot(i);
        let slot = &mut self.slots[i];
        if slot.0 == token {
            slot.1.as_mut()
        } else {
            None
        }
    }

    /// Removes and returns the value under `token`, if live.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let i = self.idx(token);
        self.mark_slot(i);
        let slot = &mut self.slots[i];
        if slot.0 == token {
            let v = slot.1.take();
            if v.is_some() {
                slot.0 = EMPTY;
                self.len -= 1;
            }
            v
        } else {
            None
        }
    }

    /// Removes every live entry with a token strictly greater than
    /// `token` — the squash path (`BTreeMap::split_off(token + 1)` in the
    /// old code, with the returned map dropped).
    pub fn truncate_above(&mut self, token: u64) {
        let start = (token + 1).max(self.hi.saturating_sub(self.slots.len() as u64));
        for t in start..self.hi {
            let i = self.idx(t);
            self.mark_slot(i);
            let slot = &mut self.slots[i];
            if slot.0 == t && slot.1.take().is_some() {
                slot.0 = EMPTY;
                self.len -= 1;
            }
        }
        self.hi = self.hi.min(token + 1);
    }

    /// Removes every live entry.
    pub fn clear(&mut self) {
        for i in 0..self.slots.len() {
            self.mark_slot(i);
        }
        for slot in &mut self.slots {
            *slot = (EMPTY, None);
        }
        self.len = 0;
    }

    /// Iterates live `(token, &value)` pairs, oldest token first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        let lo = self.hi.saturating_sub(self.slots.len() as u64);
        (lo..self.hi).filter_map(move |t| self.get(t).map(|v| (t, v)))
    }

    /// Serializes the token high-water mark and every live `(token,
    /// value)` pair (oldest first, values encoded by `item`) for
    /// warm-state checkpoints. An empty slab with an advanced high-water
    /// mark round-trips exactly — the mark feeds future token allocation.
    pub fn save_state(&self, w: &mut StateWriter, mut item: impl FnMut(&mut StateWriter, &T)) {
        w.begin_section("slab");
        w.write_u64(self.hi);
        w.write_u64(self.len as u64);
        for (t, v) in self.iter() {
            w.write_u64(t);
            item(w, v);
        }
        w.end_section();
    }

    /// Restores state saved by [`save_state`](Self::save_state) into a
    /// slab of the same capacity, decoding each value with `item`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the stream is malformed, a token falls
    /// outside the live window implied by the high-water mark, or the
    /// entry count disagrees with the pairs present.
    pub fn load_state(
        &mut self,
        r: &mut StateReader<'_>,
        mut item: impl FnMut(&mut StateReader<'_>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        // A full restore replaces the slab contents wholesale; any armed
        // baseline would describe state that no longer exists.
        self.baseline = None;
        r.open_section("slab")?;
        let hi = r.read_u64("slab high-water mark")?;
        let len = r.read_u64_capped("slab entry count", self.capacity() as u64)? as usize;
        self.clear();
        for _ in 0..len {
            let t = r.read_u64("slab token")?;
            if t >= hi || hi - t > self.slots.len() as u64 {
                return Err(SnapError::Shape {
                    detail: format!("slab token {t} outside the live window below {hi}"),
                });
            }
            let v = item(r)?;
            self.insert(t, v);
        }
        if self.len != len {
            return Err(SnapError::Shape {
                detail: format!("slab stored {len} entries but {} were distinct", self.len),
            });
        }
        self.hi = hi;
        r.close_section()
    }
}

impl<T: Clone> TokenSlab<T> {
    /// Arms the current contents as the reset baseline. Subsequent
    /// mutations are tracked per slot, so
    /// [`reset_to_baseline`](Self::reset_to_baseline) touches only what
    /// changed.
    ///
    /// Re-arming replaces any previous baseline.
    pub fn arm_baseline(&mut self) {
        self.baseline = Some(Box::new(SlabBaseline {
            slots: self.slots.clone(),
            hi: self.hi,
            len: self.len,
            dirty: Vec::new(),
            dirty_flag: vec![false; self.slots.len()],
        }));
    }

    /// `true` when a baseline is armed.
    pub fn baseline_armed(&self) -> bool {
        self.baseline.is_some()
    }

    /// Slots mutated since the baseline was armed (0 when unarmed).
    pub fn dirty_slots(&self) -> usize {
        self.baseline.as_ref().map_or(0, |b| b.dirty.len())
    }

    /// Restores the armed baseline by copying back only the dirty slots.
    /// The baseline stays armed for the next rerun.
    ///
    /// # Panics
    ///
    /// Panics if no baseline is armed.
    pub fn reset_to_baseline(&mut self) {
        let b = self
            .baseline
            .as_mut()
            .expect("reset_to_baseline without an armed baseline");
        for &i in &b.dirty {
            let i = i as usize;
            self.slots[i] = b.slots[i].clone();
            b.dirty_flag[i] = false;
        }
        b.dirty.clear();
        self.hi = b.hi;
        self.len = b.len;
    }

    /// Drops the armed baseline (if any), ending dirty tracking.
    pub fn disarm_baseline(&mut self) {
        self.baseline = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;
    use std::collections::BTreeMap;

    #[test]
    fn basic_map_semantics() {
        let mut s: TokenSlab<u32> = TokenSlab::new(4);
        assert_eq!(s.insert(0, 10), None);
        assert_eq!(s.insert(0, 11), Some(10));
        assert_eq!(s.get(0), Some(&11));
        *s.get_mut(0).unwrap() = 12;
        assert_eq!(s.remove(0), Some(12));
        assert_eq!(s.remove(0), None);
        assert!(s.is_empty());
    }

    #[test]
    fn stale_and_future_tokens_miss() {
        let mut s: TokenSlab<u32> = TokenSlab::new(4);
        s.insert(5, 50);
        assert_eq!(s.get(1), None); // same slot (5 & 3 == 1), different token
        assert_eq!(s.get(9), None);
        assert_eq!(s.get(5), Some(&50));
    }

    #[test]
    fn truncate_above_drops_younger() {
        let mut s: TokenSlab<u32> = TokenSlab::new(8);
        for t in 0..6 {
            s.insert(t, t as u32);
        }
        s.truncate_above(2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(2), Some(&2));
        assert_eq!(s.get(3), None);
        // Re-inserting after a squash reuses the token range.
        s.insert(3, 33);
        assert_eq!(s.get(3), Some(&33));
    }

    #[test]
    fn wraparound_reuses_slots() {
        let mut s: TokenSlab<u64> = TokenSlab::new(4);
        for t in 0..1000u64 {
            s.insert(t, t * 2);
            assert_eq!(s.get(t), Some(&(t * 2)));
            if t >= 3 {
                // keep the window at 4 live entries
                assert_eq!(s.remove(t - 3), Some((t - 3) * 2));
            }
        }
    }

    #[test]
    #[should_panic(expected = "TokenSlab collision")]
    fn window_overflow_panics() {
        let mut s: TokenSlab<u32> = TokenSlab::new(4);
        s.insert(0, 0);
        s.insert(4, 4); // same slot, both live
    }

    /// Differential test against the `BTreeMap` the slab replaced, driving
    /// the exact operation mix the simulator performs: sequential inserts
    /// (packet accept), in-order removal (commit), random access
    /// (resolution bookkeeping), `split_off`-style truncation (mispredict
    /// squash / kill), and token wraparound far past the capacity.
    #[test]
    fn matches_btreemap_model_across_wraparound_and_squash() {
        let mut rng = SplitMix64::new(0x51ab);
        for _case in 0..50 {
            let cap = 1 + rng.below(40) as usize;
            let mut slab: TokenSlab<u64> = TokenSlab::new(cap);
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let mut next_token = 0u64;
            for _ in 0..400 {
                match rng.below(10) {
                    // Allocate (the common case) — respects the window bound.
                    0..=4 => {
                        let window_ok = model
                            .keys()
                            .next()
                            .is_none_or(|&oldest| next_token - oldest < cap as u64);
                        if window_ok {
                            let v = rng.next_u64();
                            assert_eq!(slab.insert(next_token, v), model.insert(next_token, v));
                            next_token += 1;
                        }
                    }
                    // Commit the oldest.
                    5 | 6 => {
                        if let Some((&t, _)) = model.iter().next() {
                            assert_eq!(slab.remove(t), model.remove(&t));
                        }
                    }
                    // Random access on a live token.
                    7 => {
                        if let Some((&t, &v)) = model.iter().next_back() {
                            assert_eq!(slab.get(t), Some(&v));
                            *slab.get_mut(t).unwrap() ^= 1;
                            *model.get_mut(&t).unwrap() ^= 1;
                        }
                    }
                    // Mispredict squash: drop everything younger than a
                    // random live token (repair/kill path).
                    8 => {
                        if !model.is_empty() {
                            let keys: Vec<u64> = model.keys().copied().collect();
                            let t = keys[rng.below(keys.len() as u64) as usize];
                            slab.truncate_above(t);
                            let _ = model.split_off(&(t + 1));
                            next_token = t + 1;
                        }
                    }
                    // Full flush.
                    _ => {
                        slab.clear();
                        model.clear();
                    }
                }
                assert_eq!(slab.len(), model.len());
                for (&t, v) in &model {
                    assert_eq!(slab.get(t), Some(v), "token {t} diverged");
                }
            }
        }
    }

    #[test]
    fn baseline_reset_restores_only_dirty_slots() {
        let mut s: TokenSlab<u64> = TokenSlab::new(8);
        for t in 0..5 {
            s.insert(t, t * 10);
        }
        s.arm_baseline();
        assert_eq!(s.dirty_slots(), 0);

        *s.get_mut(2).unwrap() = 999;
        s.remove(4);
        s.insert(5, 55);
        s.truncate_above(3);
        assert!(s.dirty_slots() > 0);
        assert!(s.dirty_slots() < s.capacity());

        s.reset_to_baseline();
        assert_eq!(s.dirty_slots(), 0);
        assert_eq!(s.len(), 5);
        for t in 0..5 {
            assert_eq!(s.get(t), Some(&(t * 10)), "token {t}");
        }
        assert_eq!(s.get(5), None);

        // The baseline stays armed: a second mutate/reset cycle works.
        s.clear();
        s.reset_to_baseline();
        assert_eq!(s.len(), 5);
        assert_eq!(s.get(0), Some(&0));
    }

    #[test]
    fn baseline_reset_restores_high_water_mark() {
        let mut s: TokenSlab<u64> = TokenSlab::new(4);
        s.insert(6, 60);
        s.arm_baseline();
        s.insert(9, 90);
        s.reset_to_baseline();
        assert_eq!(s.get(9), None);
        assert_eq!(s.get(6), Some(&60));
        let toks: Vec<u64> = s.iter().map(|(t, _)| t).collect();
        assert_eq!(toks, vec![6]);
    }

    #[test]
    fn load_state_disarms_baseline() {
        let mut s: TokenSlab<u64> = TokenSlab::new(4);
        s.insert(1, 11);
        let mut w = StateWriter::new();
        s.save_state(&mut w, |w, v| w.write_u64(*v));
        let bytes = w.finish();

        s.arm_baseline();
        s.insert(2, 22);
        let mut r = StateReader::new(&bytes);
        s.load_state(&mut r, |r| r.read_u64("v")).unwrap();
        assert!(!s.baseline_armed());
        assert_eq!(s.get(1), Some(&11));
        assert_eq!(s.get(2), None);
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut s: TokenSlab<u32> = TokenSlab::new(4);
        for t in 10..14 {
            s.insert(t, t as u32);
        }
        s.remove(11);
        let got: Vec<(u64, u32)> = s.iter().map(|(t, &v)| (t, v)).collect();
        assert_eq!(got, vec![(10, 10), (12, 12), (13, 13)]);
    }
}
