//! Wide speculative history registers with snapshot repair.

use crate::snapshot::{SnapError, Snapshot, StateReader, StateWriter};

/// An opaque saved copy of a [`HistoryRegister`], taken at predict time and
/// restored on misprediction.
///
/// The composer stores one of these per history-file entry; its size is what
/// the paper's Section IV-B3 calls out as the cost of the "simple" snapshot
/// repair scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistorySnapshot {
    words: Box<[u64]>,
}

impl HistorySnapshot {
    /// Number of stored bits (the register width the snapshot came from).
    pub fn bit_len(&self) -> u32 {
        (self.words.len() * 64) as u32
    }

    /// Serializes the snapshot's words into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.words.len() as u64);
        for &word in self.words.iter() {
            w.write_u64(word);
        }
    }

    /// Decodes a snapshot previously written by
    /// [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input or an implausible word
    /// count.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        let nwords = r.read_u64_capped("history snapshot words", 1 << 16)? as usize;
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(r.read_u64("history snapshot word")?);
        }
        Ok(Self {
            words: words.into_boxed_slice(),
        })
    }
}

/// A `width`-bit branch-history shift register.
///
/// New outcomes shift in at bit 0 (most recent branch = LSB), matching the
/// convention used by the component index hash functions. The register
/// supports O(width/64) snapshot/restore for misprediction repair.
///
/// # Examples
///
/// ```
/// use cobra_sim::HistoryRegister;
///
/// let mut h = HistoryRegister::new(8);
/// h.push(true);
/// h.push(false);
/// h.push(true);
/// assert_eq!(h.low_bits(3), 0b101);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryRegister {
    words: Vec<u64>,
    width: u32,
}

impl HistoryRegister {
    /// Creates an all-zeros history register of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "history width must be nonzero");
        let nwords = width.div_ceil(64) as usize;
        Self {
            words: vec![0; nwords],
            width,
        }
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Shifts in one branch outcome (`true` = taken) as the new LSB.
    pub fn push(&mut self, taken: bool) {
        let mut carry = taken as u64;
        for w in &mut self.words {
            let out = *w >> 63;
            *w = (*w << 1) | carry;
            carry = out;
        }
        self.mask_top();
    }

    /// Shifts in several outcomes, oldest first — a superscalar fetch packet
    /// may resolve multiple branches in one cycle.
    pub fn push_all(&mut self, outcomes: impl IntoIterator<Item = bool>) {
        for t in outcomes {
            self.push(t);
        }
    }

    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }

    /// Returns bit `i` (0 = most recent branch).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width, "history bit index out of range");
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Returns the `n` most recent outcomes as the low `n` bits of a `u64`
    /// (`n ≤ 64`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or `n > width`.
    pub fn low_bits(&self, n: u32) -> u64 {
        assert!(n <= 64 && n <= self.width, "low_bits range invalid");
        if n == 0 {
            return 0;
        }
        let lo = self.words[0];
        if n <= 64 {
            lo & crate::bits::mask(n)
        } else {
            lo
        }
    }

    /// XOR-folds the `n` most recent history bits down to `width` bits, for
    /// arbitrary `n` up to the register width. This is the non-incremental
    /// reference implementation that [`crate::FoldedHistory`] must agree with.
    pub fn folded(&self, n: u32, width: u32) -> u64 {
        assert!(n <= self.width, "fold length exceeds history width");
        if width == 0 || n == 0 {
            return 0;
        }
        if n <= 64 {
            return crate::bits::xor_fold(self.low_bits(n), width.min(64))
                & crate::bits::mask(width.min(64));
        }
        let mut acc = 0u64;
        let mut chunk = 0u64;
        let mut chunk_bits = 0u32;
        for i in 0..n {
            chunk |= (self.bit(i) as u64) << chunk_bits;
            chunk_bits += 1;
            if chunk_bits == width {
                acc ^= chunk;
                chunk = 0;
                chunk_bits = 0;
            }
        }
        acc ^= chunk;
        acc & crate::bits::mask(width.min(64))
    }

    /// Saves the full register contents for later [`restore`](Self::restore).
    pub fn snapshot(&self) -> HistorySnapshot {
        HistorySnapshot {
            words: self.words.clone().into_boxed_slice(),
        }
    }

    /// Saves the register contents into an existing snapshot, reusing its
    /// word buffer when the widths match — the per-packet fast path that
    /// avoids one heap allocation per prediction.
    pub fn snapshot_into(&self, out: &mut HistorySnapshot) {
        if out.words.len() == self.words.len() {
            out.words.copy_from_slice(&self.words);
        } else {
            *out = self.snapshot();
        }
    }

    /// Restores a snapshot taken from a register of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a register of different width.
    pub fn restore(&mut self, snap: &HistorySnapshot) {
        assert_eq!(
            snap.words.len(),
            self.words.len(),
            "snapshot width mismatch"
        );
        self.words.copy_from_slice(&snap.words);
    }

    /// Clears the register to all zeros.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

impl Snapshot for HistoryRegister {
    fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(u64::from(self.width));
        for &word in &self.words {
            w.write_u64(word);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let width = r.read_u64("history register width")?;
        if width != u64::from(self.width) {
            return Err(SnapError::Shape {
                detail: format!("history register width {} != saved {width}", self.width),
            });
        }
        for word in &mut self.words {
            *word = r.read_u64("history register word")?;
        }
        self.mask_top();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_order_lsb_most_recent() {
        let mut h = HistoryRegister::new(16);
        h.push(true); // oldest
        h.push(true);
        h.push(false); // newest
        assert_eq!(h.low_bits(3), 0b110);
        assert!(!h.bit(0));
        assert!(h.bit(1));
        assert!(h.bit(2));
    }

    #[test]
    fn width_truncates_old_history() {
        let mut h = HistoryRegister::new(4);
        for _ in 0..4 {
            h.push(true);
        }
        h.push(false);
        assert_eq!(h.low_bits(4), 0b1110);
    }

    #[test]
    fn cross_word_shift() {
        let mut h = HistoryRegister::new(130);
        h.push(true);
        for _ in 0..129 {
            h.push(false);
        }
        assert!(h.bit(129), "the taken bit must have shifted to the top");
        h.push(false);
        // now it has fallen off the end
        for i in 0..130 {
            assert!(!h.bit(i));
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut h = HistoryRegister::new(100);
        for i in 0..77 {
            h.push(i % 3 == 0);
        }
        let snap = h.snapshot();
        for _ in 0..10 {
            h.push(true);
        }
        assert_ne!(h.low_bits(10), snap.words[0] & 0x3ff);
        h.restore(&snap);
        let again = h.snapshot();
        assert_eq!(snap, again);
    }

    #[test]
    fn folded_matches_manual_small_case() {
        let mut h = HistoryRegister::new(8);
        // history (newest..oldest) = 1,0,1,1
        h.push(true);
        h.push(true);
        h.push(false);
        h.push(true);
        // bits: b0=1 b1=0 b2=1 b3=1 -> fold 4 bits into 2: (0b01) ^ (0b11) = 0b10
        assert_eq!(h.folded(4, 2), 0b10);
    }

    #[test]
    fn folded_zero_cases() {
        let h = HistoryRegister::new(32);
        assert_eq!(h.folded(0, 8), 0);
        assert_eq!(h.folded(8, 0), 0);
    }

    #[test]
    fn push_all_equivalent_to_pushes() {
        let mut a = HistoryRegister::new(20);
        let mut b = HistoryRegister::new(20);
        let seq = [true, false, false, true, true];
        a.push_all(seq);
        for t in seq {
            b.push(t);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "snapshot width mismatch")]
    fn restore_wrong_width_panics() {
        let a = HistoryRegister::new(64);
        let mut b = HistoryRegister::new(256);
        b.restore(&a.snapshot());
    }

    #[test]
    fn snapshot_reports_bit_len() {
        let h = HistoryRegister::new(65);
        assert_eq!(h.snapshot().bit_len(), 128);
    }
}
