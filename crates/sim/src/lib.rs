//! # cobra-sim
//!
//! Cycle-level simulation primitives shared by the COBRA framework crates.
//!
//! This crate plays the role that a hardware construction language's standard
//! library plays for the original (Chisel) COBRA: it provides the small,
//! heavily-reused building blocks out of which predictor sub-components and
//! the host core are assembled:
//!
//! * [`SaturatingCounter`] — n-bit up/down saturating counters, the universal
//!   currency of direction prediction.
//! * [`HistoryRegister`] — a wide speculative shift register with snapshot
//!   save/restore, used for global branch history.
//! * [`FoldedHistory`] — incrementally-folded history compression as used by
//!   hardware TAGE index/tag hash functions.
//! * [`SramModel`] — a behavioural single/dual-ported SRAM with port-usage
//!   accounting, so predictor structures can be checked against their port
//!   budget and costed by the area model.
//! * [`CircularBuffer`] — the ring-buffer shape used by the composer's
//!   history file.
//! * [`TokenSlab`] — an O(1) ring-backed map from sequential packet ids to
//!   per-packet side state, replacing ordered maps on the hot path.
//! * [`Fifo`] — a bounded queue with hardware-like enqueue/dequeue semantics
//!   for the host-core pipeline.
//! * [`SplitMix64`] — a tiny deterministic RNG for stimulus and for the rare
//!   randomized hardware policies (e.g. TAGE allocation victim choice).
//! * [`bits`] — bit-field extraction and hash-mixing helpers.
//! * [`varint`] — LEB128/ZigZag integer coding and [`Crc32c`] checksums,
//!   the serialization primitives under the COBRA Binary Trace format
//!   (`cobra_workloads::cbt`).
//! * [`Snapshot`] with [`StateWriter`]/[`StateReader`] — structured
//!   full-state serialization for warm-state checkpoints (the COBRA
//!   Binary Snapshot format, `cobra_uarch::checkpoint`).
//!
//! Everything in this crate is deterministic and allocation-light; the
//! simulator's hot loops run over these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
mod checksum;
mod circular;
mod counter;
mod fifo;
mod folded;
mod history;
mod rng;
mod slab;
mod snapshot;
mod sram;
pub mod varint;

pub use checksum::{crc32c, Crc32c};
pub use circular::CircularBuffer;
pub use counter::{CounterState, SaturatingCounter};
pub use fifo::Fifo;
pub use folded::FoldedHistory;
pub use history::{HistoryRegister, HistorySnapshot};
pub use rng::SplitMix64;
pub use slab::TokenSlab;
pub use snapshot::{SnapError, Snapshot, StateReader, StateWriter};
pub use sram::{PortKind, PortViolation, SramModel, SramSpec};
