//! End-to-end reconciliation tests for interval telemetry.
//!
//! The contract under test (ISSUE: interval telemetry engine): with the
//! engine armed, (1) summed over all intervals, the host and
//! per-component attribution deltas equal the end-of-run `PerfReport` /
//! `AttributionReport` *bit-exactly*; (2) the simulated results are
//! byte-identical to an unarmed run — telemetry observes, never
//! perturbs; (3) the series round-trips through the `.cbm` container
//! and its self-contained [`reconcile`] check passes. All three hold on
//! every execution source: execution-driven, trace-replay, and
//! checkpoint-restore.
//!
//! Telemetry is armed with `Core::set_interval` (not `COBRA_INTERVAL`),
//! so nothing here mutates process environment and the tests stay
//! parallel-safe.

use cobra_core::composer::Design;
use cobra_core::designs;
use cobra_core::obs::interval::{HostCounters, IntervalSeries, SIG_BUCKETS};
use cobra_core::obs::ComponentCounters;
use cobra_uarch::{
    config_hash, read_metrics, reconcile, restore_checkpoint, save_checkpoint, save_metrics,
    CbmMeta, CbsMeta, Core, CoreConfig, PerfReport,
};
use cobra_workloads::{spec17, TraceProgram};
use std::collections::BTreeMap;

const MEASURE: u64 = 20_000;
const WARMUP: u64 = MEASURE * 2 / 5;
const INTERVAL: u64 = 1_500;

/// The designs × profiles matrix: smallest, tournament-style, and the
/// paper's flagship, each on three SPECint17 profiles with distinct
/// branch behavior.
fn matrix() -> (Vec<Design>, Vec<&'static str>) {
    (
        vec![designs::b2(), designs::tournament(), designs::tage_l()],
        vec!["gcc", "xz", "mcf"],
    )
}

/// Asserts every reconciliation invariant between a collected series and
/// the measured-region report it rode along with.
fn assert_reconciles(series: &IntervalSeries, report: &PerfReport, ctx: &str) {
    assert!(!series.records.is_empty(), "{ctx}: no intervals collected");
    assert_eq!(series.interval_n, INTERVAL, "{ctx}: interval length");

    // Host counters: field-wise sum equals the measured-region delta.
    let mut host = HostCounters::default();
    for r in &series.records {
        host.accumulate(&r.host);
    }
    assert_eq!(host, report.counters.to_host(), "{ctx}: host counters");

    // Attribution: one label per component row, every counter additive.
    let totals = &report.attribution;
    assert_eq!(
        series.labels.len(),
        totals.components.len(),
        "{ctx}: label table"
    );
    for (i, comp) in totals.components.iter().enumerate() {
        assert_eq!(series.labels[i], comp.label, "{ctx}: label order");
        let mut sum = ComponentCounters::default();
        for r in &series.records {
            let c = &r.attr.components[i].counters;
            sum.queries += c.queries;
            sum.fires += c.fires;
            sum.mispredict_events += c.mispredict_events;
            sum.repairs += c.repairs;
            sum.updates += c.updates;
            sum.provided_final += c.provided_final;
            sum.overridden += c.overridden;
            sum.direction_blame += c.direction_blame;
            sum.target_blame += c.target_blame;
        }
        assert_eq!(
            sum, comp.counters,
            "{ctx}: component {} counters",
            comp.label
        );
    }
    let packets: u64 = series
        .records
        .iter()
        .map(|r| r.attr.packets_with_prediction)
        .sum();
    assert_eq!(
        packets, totals.packets_with_prediction,
        "{ctx}: packets with prediction"
    );
    let ghist: u64 = series
        .records
        .iter()
        .map(|r| r.attr.ghist_snapshot_repairs)
        .sum();
    assert_eq!(
        ghist, totals.ghist_snapshot_repairs,
        "{ctx}: ghist snapshot repairs"
    );
    let lhist: u64 = series.records.iter().map(|r| r.attr.lhist_repairs).sum();
    assert_eq!(lhist, totals.lhist_repairs, "{ctx}: lhist repairs");

    // Override edges accumulate across intervals to the run's edge set.
    let mut edges: BTreeMap<(String, String), u64> = BTreeMap::new();
    for r in &series.records {
        for e in &r.attr.overrides {
            *edges
                .entry((e.winner.clone(), e.loser.clone()))
                .or_default() += e.count;
        }
    }
    let want: BTreeMap<(String, String), u64> = totals
        .overrides
        .iter()
        .map(|e| ((e.winner.clone(), e.loser.clone()), e.count))
        .collect();
    assert_eq!(edges, want, "{ctx}: override edges");

    // The high-water mark is monotone, not additive: the last interval
    // carries the whole-run value.
    let last = series.records.last().expect("non-empty");
    assert_eq!(
        last.attr.hf_high_water, totals.hf_high_water,
        "{ctx}: history-file high water"
    );

    // Phase signatures count one entry per committed CFI.
    for r in &series.records {
        assert_eq!(r.sig.len(), SIG_BUCKETS, "{ctx}: signature geometry");
        assert_eq!(
            r.sig.iter().map(|&s| u64::from(s)).sum::<u64>(),
            r.host.cfis,
            "{ctx}: signature mass equals committed CFIs"
        );
    }
}

/// Saves the series to an in-memory `.cbm`, reads it back, and checks
/// both the decoder's equality and its self-contained reconciliation.
fn assert_cbm_roundtrips(
    design: &Design,
    cfg: &CoreConfig,
    workload: &str,
    series: &IntervalSeries,
    report: &PerfReport,
    ctx: &str,
) {
    let meta = CbmMeta {
        design: design.name.clone(),
        topology: design.topology.clone(),
        config_hash: config_hash(design, cfg),
        workload: workload.to_string(),
        warmup_insts: WARMUP,
        interval_n: series.interval_n,
        sig_buckets: SIG_BUCKETS as u64,
    };
    let mut bytes = Vec::new();
    save_metrics(
        &mut bytes,
        &meta,
        series,
        &report.counters.to_host(),
        &report.attribution,
    )
    .unwrap_or_else(|e| panic!("{ctx}: save failed: {e}"));
    let file = read_metrics(&bytes[..]).unwrap_or_else(|e| panic!("{ctx}: read failed: {e}"));
    assert_eq!(file.meta, meta, "{ctx}: .cbm identity header");
    assert_eq!(file.labels, series.labels, "{ctx}: .cbm label table");
    assert_eq!(file.records, series.records, "{ctx}: .cbm records");
    reconcile(&file).unwrap_or_else(|e| panic!("{ctx}: .cbm reconcile failed: {e}"));
}

/// The headline property, execution-driven: for every design × profile
/// in the matrix, an armed run reports byte-identically to an unarmed
/// one, its interval sums reconcile with the report, and the series
/// survives the `.cbm` container bit-exactly.
#[test]
fn armed_run_reconciles_and_matches_unarmed_for_all_designs_and_profiles() {
    let cfg = CoreConfig::boom_4wide();
    let (designs, profiles) = matrix();
    for name in &profiles {
        let spec = spec17::spec17(name);
        for design in &designs {
            let ctx = format!("{name}/{}", design.name);
            let unarmed = {
                let mut core = Core::new(design, cfg, spec.build()).expect("stock designs compose");
                core.run_with_warmup(WARMUP, MEASURE, &spec.name)
            };
            let mut core = Core::new(design, cfg, spec.build()).expect("stock designs compose");
            core.set_interval(INTERVAL);
            let armed = core.run_with_warmup(WARMUP, MEASURE, &spec.name);
            let series = core
                .take_intervals()
                .unwrap_or_else(|| panic!("{ctx}: armed run collected no series"));
            assert_eq!(
                unarmed, armed,
                "{ctx}: telemetry perturbed the simulated results"
            );
            assert_reconciles(&series, &armed, &ctx);
            assert_cbm_roundtrips(design, &cfg, &spec.name, &series, &armed, &ctx);
        }
    }
}

/// The trace-replay arm: a run replaying a captured `.cbt` stream with
/// telemetry armed reports identically to the execution-driven unarmed
/// run, and its intervals reconcile the same way.
#[test]
fn trace_replay_arm_reconciles() {
    let cfg = CoreConfig::boom_4wide();
    let design = designs::tage_l();
    let dir = std::env::temp_dir().join(format!("cobra-cbm-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp trace dir");
    for name in ["gcc", "xz", "mcf"] {
        let spec = spec17::spec17(name);
        let ctx = format!("replay {name}/{}", design.name);
        let unarmed = {
            let mut core = Core::new(&design, cfg, spec.build()).expect("stock designs compose");
            core.run_with_warmup(WARMUP, MEASURE, &spec.name)
        };
        let (_, path) =
            cobra_bench::capture_workload(&spec, MEASURE, &dir).expect("capture succeeds");
        let program = TraceProgram::open(&path).expect("captured trace opens");
        let mut core = Core::new(&design, cfg, program).expect("stock designs compose");
        core.set_interval(INTERVAL);
        let armed = core.run_with_warmup(WARMUP, MEASURE, &spec.name);
        let series = core
            .take_intervals()
            .unwrap_or_else(|| panic!("{ctx}: no series"));
        assert_eq!(unarmed, armed, "{ctx}: replay differs from execution");
        assert_reconciles(&series, &armed, &ctx);
        assert_cbm_roundtrips(&design, &cfg, &spec.name, &series, &armed, &ctx);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The checkpoint-restore arm: a run that skips its warm-up by restoring
/// a `.cbs` checkpoint still arms the interval engine at the measure
/// boundary, reports identically, and reconciles.
#[test]
fn checkpoint_restore_arm_reconciles() {
    let cfg = CoreConfig::boom_4wide();
    let design = designs::tournament();
    for name in ["gcc", "xz", "mcf"] {
        let spec = spec17::spec17(name);
        let ctx = format!("restore {name}/{}", design.name);
        let unarmed = {
            let mut core = Core::new(&design, cfg, spec.build()).expect("stock designs compose");
            core.run_with_warmup(WARMUP, MEASURE, &spec.name)
        };
        let bytes = {
            let mut core = Core::new(&design, cfg, spec.build()).expect("stock designs compose");
            core.run(WARMUP, &spec.name);
            let meta = CbsMeta::for_run(&design, &cfg, &spec.name, WARMUP);
            let mut bytes = Vec::new();
            save_checkpoint(&mut bytes, &meta, &core).expect("in-memory save cannot fail");
            bytes
        };
        let mut core = Core::new(&design, cfg, spec.build()).expect("stock designs compose");
        let meta = CbsMeta::for_run(&design, &cfg, &spec.name, WARMUP);
        restore_checkpoint(&bytes[..], &meta, &mut core)
            .unwrap_or_else(|e| panic!("{ctx}: restore failed: {e}"));
        core.set_interval(INTERVAL);
        let armed = core.run_with_warmup(WARMUP, MEASURE, &spec.name);
        let series = core
            .take_intervals()
            .unwrap_or_else(|| panic!("{ctx}: no series"));
        assert_eq!(unarmed, armed, "{ctx}: restored run differs");
        assert_reconciles(&series, &armed, &ctx);
        assert_cbm_roundtrips(&design, &cfg, &spec.name, &series, &armed, &ctx);
    }
}

/// An unarmed core collects nothing — `take_intervals` stays `None`, so
/// the default path costs nothing and writes nothing.
#[test]
fn unarmed_run_collects_nothing() {
    let cfg = CoreConfig::boom_4wide();
    let spec = spec17::spec17("xz");
    let mut core = Core::new(&designs::b2(), cfg, spec.build()).expect("stock designs compose");
    core.run_with_warmup(WARMUP, MEASURE, &spec.name);
    assert!(core.take_intervals().is_none());
}

/// `set_interval(0)` disables telemetry even if the environment would
/// arm it — the in-process override wins.
#[test]
fn set_interval_zero_disables() {
    let cfg = CoreConfig::boom_4wide();
    let spec = spec17::spec17("xz");
    let mut core = Core::new(&designs::b2(), cfg, spec.build()).expect("stock designs compose");
    core.set_interval(0);
    core.run_with_warmup(WARMUP, MEASURE, &spec.name);
    assert!(core.take_intervals().is_none());
}
