//! Determinism of the parallel experiment runner.
//!
//! Every grid cell is an independent seeded simulation, so the runner's
//! thread count must never leak into the results: `COBRA_THREADS=1` and
//! `COBRA_THREADS=4` have to produce bit-identical [`PerfReport`]s in the
//! same job order. This is the property that lets the harness binaries
//! print byte-stable tables whatever the host's core count.

use cobra_bench::runner::{run_grid_on, Job};
use cobra_core::designs;
use cobra_uarch::{CoreConfig, PerfReport};
use cobra_workloads::{kernels, spec17};

/// One test function on purpose: it pins `COBRA_INSTS` for the whole
/// process, which would race against sibling tests reading the same
/// variable.
#[test]
fn thread_count_does_not_change_reports() {
    // Keep the grid fast: the property under test is scheduling
    // independence, not simulator behavior at full run length.
    std::env::set_var("COBRA_INSTS", "6000");

    let d_tourn = designs::tournament();
    let d_tage = designs::tage_l();
    let specs = [spec17::spec17("gcc"), kernels::aliasing_stress()];
    let designs = [&d_tourn, &d_tage];
    let jobs: Vec<Job<'_>> = specs
        .iter()
        .flat_map(|spec| {
            designs
                .iter()
                .map(move |d| Job::new(d, CoreConfig::boom_4wide(), spec))
        })
        .collect();

    let serial: Vec<PerfReport> = run_grid_on(1, &jobs)
        .into_iter()
        .map(|r| r.report)
        .collect();
    let parallel: Vec<PerfReport> = run_grid_on(4, &jobs)
        .into_iter()
        .map(|r| r.report)
        .collect();

    assert_eq!(serial.len(), jobs.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s, p,
            "job {i} ({}/{}) diverged across thread counts",
            s.design, s.workload
        );
    }

    // And the runs actually simulated something.
    assert!(serial.iter().all(|r| r.counters.committed_insts > 0));
}
