//! End-to-end fidelity tests for the CBT capture/replay path.
//!
//! The contract under test (ISSUE: trace-driven workload subsystem): a
//! captured `.cbt` trace replays the workload's instruction stream
//! *bit-for-bit*, so a full-core simulation driven by the replay produces
//! a `PerfReport` byte-identical to the execution-driven run — and any
//! corruption of the file is rejected up front with a precise error, not
//! discovered mid-simulation.

use cobra_bench::capture_len;
use cobra_core::designs;
use cobra_uarch::{Core, CoreConfig, InstructionStream};
use cobra_workloads::{capture_stream, spec17, CbtError, TraceProgram, SPEC17_NAMES};

/// Captures `records` instructions of `name`'s stream into memory.
fn capture_bytes(name: &str, records: u64) -> Vec<u8> {
    let spec = spec17::spec17(name);
    let mut bytes = Vec::new();
    capture_stream(&mut spec.build(), records, name, &mut bytes).unwrap();
    bytes
}

/// Capture → replay reproduces the dynamic stream record-for-record, for
/// every SPECint17 profile. This is the cheap, wide net; the expensive
/// full-core identity check below samples two profiles.
#[test]
fn replay_matches_direct_stream_for_all_profiles() {
    for name in SPEC17_NAMES {
        let records = 30_000u64;
        let bytes = capture_bytes(name, records);
        let mut replay = TraceProgram::from_bytes(bytes).unwrap();
        let mut direct = spec17::spec17(name).build();
        assert_eq!(replay.entry_pc(), direct.entry_pc(), "{name}: entry pc");
        for i in 0..records {
            assert_eq!(
                replay.next_inst(),
                direct.next_inst(),
                "{name}: record {i} diverges"
            );
        }
        assert!(replay.next_inst().is_none(), "{name}: trace must end");
    }
}

/// The headline acceptance criterion: a full speculating-core run fed by
/// the replayed trace produces a `PerfReport` equal in every field to the
/// execution-driven run — same counters, same attribution, cycle for
/// cycle. Covers both a pattern-heavy profile (gcc) and an
/// indirect/call-heavy one (omnetpp) so wrong-path `inst_at` fetches and
/// the RAS/BTB paths are exercised through the static image.
#[test]
fn replayed_core_report_is_byte_identical() {
    let measure = 20_000u64;
    let warmup = measure * 2 / 5;
    for name in ["gcc", "omnetpp"] {
        let spec = spec17::spec17(name);
        let bytes = capture_bytes(name, capture_len(measure));
        for design in designs::all() {
            let direct = {
                let mut core = Core::new(&design, CoreConfig::boom_4wide(), spec.build())
                    .expect("stock designs compose");
                core.run_with_warmup(warmup, measure, &spec.name)
            };
            let replayed = {
                let program = TraceProgram::from_bytes(bytes.clone()).unwrap();
                let mut core = Core::new(&design, CoreConfig::boom_4wide(), program)
                    .expect("stock designs compose");
                core.run_with_warmup(warmup, measure, &spec.name)
            };
            assert_eq!(
                direct, replayed,
                "{name}/{}: replayed PerfReport differs from execution-driven",
                design.name
            );
        }
    }
}

/// Every possible truncation of a valid trace is rejected by
/// `TraceProgram::from_bytes` (which validates exhaustively at open).
#[test]
fn every_truncation_is_rejected() {
    let bytes = capture_bytes("xz", 2_000);
    for len in 0..bytes.len() {
        let err = TraceProgram::from_bytes(bytes[..len].to_vec())
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes was accepted"));
        // No truncation may be reported as a success or a panic; any
        // CbtError variant is acceptable, but the common ones should be
        // the precise, named ones.
        let msg = err.to_string();
        assert!(!msg.is_empty());
    }
}

/// Every single-bit flip anywhere in a valid trace is rejected: each file
/// region (header, blocks, static image, footer) is CRC-32C-covered, so
/// no flip can escape.
#[test]
fn every_bit_flip_is_rejected() {
    let bytes = capture_bytes("xz", 1_000);
    for i in 0..bytes.len() {
        let bit = i % 8; // one flip per byte keeps this O(n) yet covers every byte
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 1 << bit;
        assert!(
            TraceProgram::from_bytes(corrupt).is_err(),
            "flipping bit {bit} of byte {i} was accepted"
        );
    }
}

/// Targeted corruptions produce the *precise* error the spec promises,
/// not a generic failure.
#[test]
fn corruption_errors_are_precise() {
    let bytes = capture_bytes("xz", 1_000);

    // Wrong leading magic.
    let mut c = bytes.clone();
    c[0] = b'X';
    assert!(matches!(
        TraceProgram::from_bytes(c),
        Err(CbtError::BadMagic)
    ));

    // Future version number (bytes 8..10, little-endian u16) — also
    // breaks the header CRC, but version is checked first so old readers
    // fail with the actionable error.
    let mut c = bytes.clone();
    c[8] = 0xFF;
    c[9] = 0x7F;
    assert!(matches!(
        TraceProgram::from_bytes(c),
        Err(CbtError::UnsupportedVersion(0x7FFF))
    ));

    // Payload corruption inside the first block: named by block number.
    // The first block starts right after the header; find it by flipping
    // a byte well past the header region but before the footer.
    let mut c = bytes.clone();
    let mid = c.len() / 3;
    c[mid] ^= 0x40;
    match TraceProgram::from_bytes(c) {
        Err(
            CbtError::BlockChecksum {
                stored, computed, ..
            }
            | CbtError::HeaderChecksum { stored, computed }
            | CbtError::StaticChecksum { stored, computed }
            | CbtError::FooterChecksum { stored, computed },
        ) => assert_ne!(stored, computed),
        other => panic!("expected a checksum error with stored/computed, got {other:?}"),
    }

    // Truncation mid-footer names the structure that ran out.
    let short = bytes[..bytes.len() - 4].to_vec();
    let err = TraceProgram::from_bytes(short).expect_err("truncated file accepted");
    let msg = err.to_string();
    assert!(
        msg.contains("truncated") || msg.contains("footer") || msg.contains("magic"),
        "unhelpful truncation error: {msg}"
    );
}
