//! End-to-end fidelity tests for the `.cbs` warm-state checkpoint path.
//!
//! The contract under test (ISSUE: warm-state checkpoints): a core
//! restored from a checkpoint taken at the warmup boundary produces a
//! `PerfReport` *byte-identical* to the straight-through run — for every
//! stock design on every SPECint17 profile — and any corruption or
//! identity mismatch is rejected up front with a precise error, never
//! discovered as silent measurement skew.

use cobra_bench::{ckpt_file_name, run_one_sourced};
use cobra_core::composer::Design;
use cobra_core::designs;
use cobra_uarch::{
    restore_checkpoint, save_checkpoint, CacheConfig, CbsError, CbsMeta, Core, CoreConfig,
};
use cobra_workloads::{spec17, ProgramSpec, SPEC17_NAMES};

const MEASURE: u64 = 20_000;
const WARMUP: u64 = MEASURE * 2 / 5;

/// Runs `spec` on `design` to the warmup boundary and serializes the warm
/// state to memory.
fn checkpoint_bytes(design: &Design, cfg: &CoreConfig, spec: &ProgramSpec, warmup: u64) -> Vec<u8> {
    let mut core = Core::new(design, *cfg, spec.build()).expect("stock designs compose");
    core.run(warmup, &spec.name);
    let meta = CbsMeta::for_run(design, cfg, &spec.name, warmup);
    let mut bytes = Vec::new();
    save_checkpoint(&mut bytes, &meta, &core).expect("in-memory save cannot fail");
    bytes
}

/// A boom_4wide variant with four-set caches, so checkpoints stay small
/// enough for the quadratic hostile-input sweeps below. Only capacities
/// shrink; each level keeps its stock hit latency (the fetch stage treats
/// any nonzero L1I latency as a stall-and-retry, so it must stay 0).
fn tiny_cfg() -> CoreConfig {
    let base = CoreConfig::boom_4wide();
    let shrink = |mut c: CacheConfig| {
        c.size_bytes = c.ways * c.line_bytes * 4;
        c
    };
    CoreConfig {
        l1i: shrink(base.l1i),
        l1d: shrink(base.l1d),
        l2: shrink(base.l2),
        l3: shrink(base.l3),
        ..base
    }
}

/// A small valid checkpoint for the corruption sweeps: B2 (the smallest
/// stock design) on xz with tiny caches.
fn small_checkpoint() -> (Design, CoreConfig, ProgramSpec, Vec<u8>) {
    let design = designs::b2();
    let cfg = tiny_cfg();
    let spec = spec17::spec17("xz");
    let bytes = checkpoint_bytes(&design, &cfg, &spec, 2_000);
    (design, cfg, spec, bytes)
}

/// The headline acceptance criterion: for every stock design on every
/// SPECint17 profile, restoring a warmup-boundary checkpoint into a fresh
/// core and running the measured region yields a `PerfReport` equal in
/// every field to the straight-through warmup-and-measure run — same
/// counters, same attribution, cycle for cycle.
#[test]
fn restored_report_is_byte_identical_for_all_designs_and_profiles() {
    let cfg = CoreConfig::boom_4wide();
    for name in SPEC17_NAMES {
        let spec = spec17::spec17(name);
        for design in designs::all() {
            let direct = {
                let mut core =
                    Core::new(&design, cfg, spec.build()).expect("stock designs compose");
                core.run_with_warmup(WARMUP, MEASURE, &spec.name)
            };
            let bytes = checkpoint_bytes(&design, &cfg, &spec, WARMUP);
            let restored = {
                let mut core =
                    Core::new(&design, cfg, spec.build()).expect("stock designs compose");
                let meta = CbsMeta::for_run(&design, &cfg, &spec.name, WARMUP);
                restore_checkpoint(&bytes[..], &meta, &mut core)
                    .unwrap_or_else(|e| panic!("{name}/{}: restore failed: {e}", design.name));
                core.run_with_warmup(WARMUP, MEASURE, &spec.name)
            };
            assert_eq!(
                direct, restored,
                "{name}/{}: restored PerfReport differs from straight-through",
                design.name
            );
        }
    }
}

/// The harness-level path: with `COBRA_CKPT_DIR` pointing at a directory
/// holding a matching checkpoint, `run_one_sourced` restores it (and says
/// so in its provenance) and still reports byte-identically to the
/// warm-up-from-scratch run. This is the only test in this binary that
/// touches process environment, so it cannot race a parallel test.
#[test]
fn ckpt_dir_restore_matches_direct_end_to_end() {
    let design = designs::tage_l();
    let cfg = CoreConfig::boom_4wide();
    let spec = spec17::spec17("gcc");

    // The harness derives measure from COBRA_INSTS and warmup as 40 % of
    // it; the checkpoint must be taken at exactly that boundary.
    std::env::set_var("COBRA_INSTS", MEASURE.to_string());
    let direct = run_one_sourced(&design, cfg, &spec, None);
    assert_eq!(direct.checkpoint, None, "no checkpoint dir set yet");

    let dir = std::env::temp_dir().join(format!("cobra-cbs-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp checkpoint dir");
    let path = dir.join(ckpt_file_name(&design.name, &spec.name));
    let bytes = checkpoint_bytes(&design, &cfg, &spec, WARMUP);
    std::fs::write(&path, bytes).expect("write checkpoint");

    std::env::set_var("COBRA_CKPT_DIR", &dir);
    let restored = run_one_sourced(&design, cfg, &spec, None);
    std::env::remove_var("COBRA_CKPT_DIR");
    std::env::remove_var("COBRA_INSTS");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        restored.checkpoint.as_deref(),
        Some(path.as_path()),
        "provenance must record the restored file"
    );
    assert_eq!(
        direct.report, restored.report,
        "restored harness run differs from warm-up-from-scratch"
    );
}

/// A checkpoint only restores into the exact run it was taken from: any
/// identity drift — design, configuration, workload, or warmup boundary —
/// is named precisely, before any state is touched.
#[test]
fn identity_mismatches_are_rejected_up_front() {
    let design = designs::b2();
    let cfg = tiny_cfg();
    let spec = spec17::spec17("xz");
    let bytes = checkpoint_bytes(&design, &cfg, &spec, 2_000);
    let good = CbsMeta::for_run(&design, &cfg, &spec.name, 2_000);
    let mut core = Core::new(&design, cfg, spec.build()).expect("stock designs compose");

    let wrong_design = CbsMeta::for_run(&designs::tournament(), &cfg, &spec.name, 2_000);
    assert!(matches!(
        restore_checkpoint(&bytes[..], &wrong_design, &mut core),
        Err(CbsError::DesignMismatch { .. })
    ));

    let mut other_cfg = cfg;
    other_cfg.rob_entries += 1;
    let wrong_cfg = CbsMeta::for_run(&design, &other_cfg, &spec.name, 2_000);
    assert!(matches!(
        restore_checkpoint(&bytes[..], &wrong_cfg, &mut core),
        Err(CbsError::ConfigHashMismatch { .. })
    ));

    let wrong_workload = CbsMeta::for_run(&design, &cfg, "gcc", 2_000);
    assert!(matches!(
        restore_checkpoint(&bytes[..], &wrong_workload, &mut core),
        Err(CbsError::WorkloadMismatch { .. })
    ));

    let wrong_warmup = CbsMeta::for_run(&design, &cfg, &spec.name, 2_001);
    assert!(matches!(
        restore_checkpoint(&bytes[..], &wrong_warmup, &mut core),
        Err(CbsError::WarmupMismatch { .. })
    ));

    // And the untouched core still restores cleanly afterwards.
    restore_checkpoint(&bytes[..], &good, &mut core).expect("matching restore succeeds");
}

/// Every possible truncation of a valid checkpoint is rejected — never
/// accepted, never a panic.
#[test]
fn every_truncation_is_rejected() {
    let (design, cfg, spec, bytes) = small_checkpoint();
    let good = CbsMeta::for_run(&design, &cfg, &spec.name, 2_000);
    // Detection never depends on prior core contents, so one scratch core
    // serves the whole sweep.
    let mut core = Core::new(&design, cfg, spec.build()).expect("stock designs compose");
    for len in 0..bytes.len() {
        let err = restore_checkpoint(&bytes[..len], &good, &mut core)
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes was accepted"));
        assert!(!err.to_string().is_empty());
    }
}

/// Every single-bit flip anywhere in a valid checkpoint is rejected: the
/// header and payload are both CRC-32C-covered, so no flip can escape.
#[test]
fn every_bit_flip_is_rejected() {
    let (design, cfg, spec, bytes) = small_checkpoint();
    let good = CbsMeta::for_run(&design, &cfg, &spec.name, 2_000);
    let mut core = Core::new(&design, cfg, spec.build()).expect("stock designs compose");
    for i in 0..bytes.len() {
        let bit = i % 8; // one flip per byte keeps this O(n^2) yet covers every byte
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 1 << bit;
        assert!(
            restore_checkpoint(&corrupt[..], &good, &mut core).is_err(),
            "flipping bit {bit} of byte {i} was accepted"
        );
    }
}

/// Targeted corruptions produce the *precise* error the format spec
/// (`docs/CHECKPOINT_FORMAT.md`) promises, not a generic failure.
#[test]
fn corruption_errors_are_precise() {
    let (design, cfg, spec, bytes) = small_checkpoint();
    let good = CbsMeta::for_run(&design, &cfg, &spec.name, 2_000);
    let mut core = Core::new(&design, cfg, spec.build()).expect("stock designs compose");

    // Wrong leading magic.
    let mut c = bytes.clone();
    c[0] = b'X';
    assert!(matches!(
        restore_checkpoint(&c[..], &good, &mut core),
        Err(CbsError::BadMagic)
    ));

    // Future version number (bytes 8..10, little-endian u16) — also
    // breaks the header CRC, but version is checked first so old readers
    // fail with the actionable error.
    let mut c = bytes.clone();
    c[8] = 0xFF;
    c[9] = 0x7F;
    assert!(matches!(
        restore_checkpoint(&c[..], &good, &mut core),
        Err(CbsError::UnsupportedVersion(0x7FFF))
    ));

    // Payload corruption mid-file is caught by a checksum with
    // stored/computed evidence.
    let mut c = bytes.clone();
    let mid = c.len() / 2;
    c[mid] ^= 0x40;
    match restore_checkpoint(&c[..], &good, &mut core) {
        Err(
            CbsError::PayloadChecksum { stored, computed }
            | CbsError::HeaderChecksum { stored, computed },
        ) => assert_ne!(stored, computed),
        other => panic!("expected a checksum error with stored/computed, got {other:?}"),
    }

    // Appending trailing garbage is counted and rejected.
    let mut c = bytes.clone();
    c.extend_from_slice(b"junk");
    assert!(matches!(
        restore_checkpoint(&c[..], &good, &mut core),
        Err(CbsError::TrailingBytes { count: 4 })
    ));
}
