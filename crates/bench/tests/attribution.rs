//! Reconciliation of the per-component attribution counters against the
//! host core's own performance counters.
//!
//! Attribution (`cobra_core::obs`) is a second, independent accounting of
//! the same events the core counts: every misprediction must be blamed on
//! exactly one component row (or the static pseudo-row), and every packet
//! that carried a prediction must have exactly one decision provider. The
//! invariants here are exact equalities — if attribution drifts from
//! `PerfCounters` by even one event, the blame tables `cobra-trace`
//! prints stop meaning anything.

use cobra_core::designs;
use cobra_core::obs::STATIC_LABEL;
use cobra_uarch::{Core, CoreConfig};
use cobra_workloads::{kernels, spec17, ProgramSpec, SyntheticProgram};

/// Whole-run simulation (no warm-up, so attribution and the counters
/// cover exactly the same interval) with per-PC blame enabled.
fn run(design_name: &str, spec: &ProgramSpec, insts: u64) -> Core<SyntheticProgram> {
    let design = designs::by_name(design_name).expect("stock design");
    let mut core =
        Core::new(&design, CoreConfig::boom_4wide(), spec.build()).expect("stock designs compose");
    core.bpu_mut().enable_pc_attribution();
    core.run(insts, &spec.name);
    core
}

#[test]
fn blame_reconciles_with_perf_counters() {
    let specs = [spec17::spec17("gcc"), kernels::aliasing_stress()];
    for design_name in ["Tournament", "B2", "TAGE-L"] {
        for spec in &specs {
            let core = run(design_name, spec, 8000);
            let counters = core.counters();
            let report = core.bpu().attribution_report();
            let label = format!("{design_name}/{}", spec.name);

            // Every branch miss the core counted was blamed on exactly
            // one attribution row, and nothing else was.
            assert_eq!(
                report.total_blame(),
                counters.branch_misses(),
                "{label}: blame must sum to the core's branch misses"
            );
            let dir: u64 = report
                .components
                .iter()
                .map(|c| c.counters.direction_blame)
                .sum();
            let tgt: u64 = report
                .components
                .iter()
                .map(|c| c.counters.target_blame)
                .sum();
            assert_eq!(
                dir, counters.cond_mispredicts,
                "{label}: direction blame must match cond_mispredicts"
            );
            assert_eq!(
                tgt, counters.target_mispredicts,
                "{label}: target blame must match target_mispredicts"
            );

            // Exactly one decision provider per predicted packet.
            assert_eq!(
                report.total_provided(),
                report.packets_with_prediction,
                "{label}: provided_final must sum to packets_with_prediction"
            );
            assert!(
                report.packets_with_prediction <= core.bpu().stats().queries,
                "{label}: cannot provide more packets than were queried"
            );

            // Broadcast events reach every component row equally, and the
            // static pseudo-row receives none of them.
            let stats = core.bpu().stats();
            for c in &report.components {
                if c.label == STATIC_LABEL {
                    assert_eq!(
                        c.counters.queries, 0,
                        "{label}: static row is never queried"
                    );
                } else {
                    assert_eq!(
                        c.counters.queries, stats.queries,
                        "{label}: every component sees every query"
                    );
                }
            }

            // The per-PC map is the same blame, grouped by branch PC.
            let pc_total: u64 = core
                .bpu()
                .pc_attribution()
                .expect("pc attribution enabled")
                .values()
                .flat_map(|row| row.iter())
                .sum();
            assert_eq!(
                pc_total,
                counters.branch_misses(),
                "{label}: per-PC blame must also sum to the branch misses"
            );

            // Overridden components actually lost to a different winner.
            for e in &report.overrides {
                assert_ne!(e.winner, e.loser, "{label}: no self-overrides");
                assert!(e.count > 0, "{label}: zero edges are dropped");
            }

            // The workloads are branchy enough that the run mispredicted
            // at least once, so the assertions above weren't 0 == 0.
            assert!(
                counters.branch_misses() > 0,
                "{label}: expected a nonzero miss count for a meaningful test"
            );
        }
    }
}
