//! Determinism and isolation of `COBRA_TRACE` event tracing.
//!
//! Two properties, both load-bearing for the observability story:
//!
//! 1. **Tracing never perturbs results.** A grid run with tracing on
//!    must produce `PerfReport`s (and therefore printed stdout rows)
//!    identical to a run with tracing off — the sinks observe, they do
//!    not steer.
//! 2. **Trace files are thread-count independent.** Each grid job traces
//!    to its own file named by its stable job id, so the bytes of every
//!    per-job trace must be identical whether the grid ran on 1 thread
//!    or 4, same as the reports themselves.

use cobra_bench::runner::{job_id, run_grid_on, Job};
use cobra_core::designs;
use cobra_core::obs::trace;
use cobra_uarch::{CoreConfig, PerfReport};
use cobra_workloads::{kernels, spec17};
use std::path::PathBuf;

fn grid_reports(threads: usize, jobs: &[Job<'_>]) -> Vec<PerfReport> {
    run_grid_on(threads, jobs)
        .into_iter()
        .map(|r| r.report)
        .collect()
}

/// One test function on purpose: it pins `COBRA_INSTS` and `COBRA_TRACE`
/// for the whole process, which would race against sibling tests reading
/// the same variables.
#[test]
fn tracing_is_deterministic_and_free_of_side_effects() {
    std::env::set_var("COBRA_INSTS", "6000");

    let d_tourn = designs::tournament();
    let d_tage = designs::tage_l();
    let specs = [spec17::spec17("gcc"), kernels::aliasing_stress()];
    let designs = [&d_tourn, &d_tage];
    let jobs: Vec<Job<'_>> = specs
        .iter()
        .flat_map(|spec| {
            designs
                .iter()
                .map(move |d| Job::new(d, CoreConfig::boom_4wide(), spec))
        })
        .collect();

    // Baseline: tracing off.
    trace::set_enabled(false);
    let reports_off = grid_reports(1, &jobs);

    let base = std::env::temp_dir().join(format!("cobra-trace-test-{}", std::process::id()));
    let dir1 = base.join("t1");
    let dir4 = base.join("t4");

    // Same grid, tracing on, 1 thread then 4 threads into separate dirs.
    std::env::set_var(
        "COBRA_TRACE",
        dir1.join("ev-{}.jsonl").to_str().expect("utf-8 path"),
    );
    trace::set_enabled(true);
    let reports_t1 = grid_reports(1, &jobs);

    std::env::set_var(
        "COBRA_TRACE",
        dir4.join("ev-{}.jsonl").to_str().expect("utf-8 path"),
    );
    let reports_t4 = grid_reports(4, &jobs);

    std::env::remove_var("COBRA_TRACE");
    trace::set_enabled(false);

    // Property 1: tracing changed nothing — raw reports and the Display
    // rows the harness binaries print are byte-identical.
    assert_eq!(
        reports_off, reports_t1,
        "tracing on must not change results"
    );
    assert_eq!(
        reports_off, reports_t4,
        "thread count must not change results"
    );
    for (off, on) in reports_off.iter().zip(&reports_t1) {
        assert_eq!(off.to_string(), on.to_string());
    }

    // Property 2: per-job trace bytes are identical across thread counts.
    for (i, job) in jobs.iter().enumerate() {
        let name = format!(
            "ev-{}-{}-{}.jsonl",
            job_id(i),
            job.design.name,
            job.spec.name
        );
        let read = |dir: &PathBuf| {
            std::fs::read(dir.join(&name))
                .unwrap_or_else(|e| panic!("missing trace {name} in {}: {e}", dir.display()))
        };
        let (b1, b4) = (read(&dir1), read(&dir4));
        assert!(!b1.is_empty(), "{name}: trace should contain events");
        assert_eq!(b1, b4, "{name}: trace bytes diverged across thread counts");
    }

    let _ = std::fs::remove_dir_all(&base);
}
