//! Cache-correctness sweeps for the `cobra-serve` warm-state store.
//!
//! The cache must be a pure accelerator: an identity mismatch must never
//! return a cached report, a tier-2 partial restore must reproduce the
//! straight-through run byte for byte, and a poisoned entry — truncated
//! at any length, or with any single bit flipped — must degrade to a
//! cold run, never a wrong answer. The poisoning sweeps reuse the
//! exhaustive every-byte harness pattern from `cbs_roundtrip.rs`,
//! driven through the real `WarmCache::lookup_result` path.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

use cobra_bench::serve::cache::WarmCache;
use cobra_bench::serve::exec::{execute_job, warmup_for, CacheDisposition};
use cobra_bench::workload_by_name;
use cobra_core::composer::Design;
use cobra_uarch::{config_hash, CbrMeta, CoreConfig};

const INSTS: u64 = 5_000;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cobra-servecache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn design() -> Design {
    cobra_core::designs::b2()
}

fn meta_for(design: &Design, cfg: &CoreConfig, workload: &str, insts: u64) -> CbrMeta {
    CbrMeta {
        design: design.name.clone(),
        topology: design.topology.clone(),
        config_hash: config_hash(design, cfg),
        workload: workload.to_string(),
        insts,
        warmup_insts: warmup_for(insts),
    }
}

/// Runs one job through the cache and returns `(report, disposition)`.
fn run(cache: &WarmCache, insts: u64) -> (cobra_uarch::PerfReport, CacheDisposition) {
    let d = design();
    let spec = workload_by_name("gcc").unwrap();
    let o = execute_job(
        &d,
        CoreConfig::boom_4wide(),
        &spec,
        insts,
        Some(cache),
        None,
    );
    (o.report, o.cache)
}

#[test]
fn store_then_lookup_round_trips_and_repeats_hit() {
    let dir = scratch("roundtrip");
    let cache = WarmCache::open(&dir).unwrap();
    let (first, d1) = run(&cache, INSTS);
    assert_eq!(d1, CacheDisposition::Miss);
    // Result + warmup checkpoint were persisted.
    assert_eq!(cache.stats.stores.load(Ordering::Relaxed), 2);
    let (second, d2) = run(&cache, INSTS);
    assert_eq!(d2, CacheDisposition::Hit);
    assert_eq!(second, first, "tier-1 hit returns the identical report");
    assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tier2_partial_restore_is_byte_exact() {
    let dir = scratch("tier2");
    let cache = WarmCache::open(&dir).unwrap();
    // Seed with a short job: stores a checkpoint at warmup_for(INSTS).
    let (_, d1) = run(&cache, INSTS);
    assert_eq!(d1, CacheDisposition::Miss);
    // A longer job over the same design/workload restores that earlier
    // boundary and simulates only the remainder…
    let (warm, d2) = run(&cache, INSTS * 3);
    assert_eq!(d2, CacheDisposition::Warm);
    assert_eq!(cache.stats.warm.load(Ordering::Relaxed), 1);
    // …and must equal the straight-through run exactly.
    let d = design();
    let spec = workload_by_name("gcc").unwrap();
    let direct = execute_job(&d, CoreConfig::boom_4wide(), &spec, INSTS * 3, None, None);
    assert_eq!(direct.cache, CacheDisposition::Miss);
    assert_eq!(warm, direct.report, "tier-2 restore vs straight-through");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identity_mismatch_never_hits() {
    let dir = scratch("identity");
    let cache = WarmCache::open(&dir).unwrap();
    let (_, d1) = run(&cache, INSTS);
    assert_eq!(d1, CacheDisposition::Miss);
    let cfg = CoreConfig::boom_4wide();
    let d = design();
    let stored = meta_for(&d, &cfg, "gcc", INSTS);
    assert!(cache.lookup_result(&stored).is_some(), "sanity: exact hit");

    // Same design, different measured region: distinct identity.
    assert!(cache
        .lookup_result(&meta_for(&d, &cfg, "gcc", INSTS + 1))
        .is_none());
    // Same design, different workload.
    assert!(cache
        .lookup_result(&meta_for(&d, &cfg, "xz", INSTS))
        .is_none());
    // Different design altogether.
    let other = cobra_core::designs::tage_l();
    assert!(cache
        .lookup_result(&meta_for(&other, &cfg, "gcc", INSTS))
        .is_none());
    // Same everything but a different configuration hash: the entry is
    // *found on disk* (the path only encodes hash/workload/insts, and we
    // force the stored hash into the name) — the header identity check
    // must still refuse it.
    let mut forged = stored.clone();
    forged.design = "Forged".into();
    let before = cache.stats.rejected.load(Ordering::Relaxed);
    assert!(cache.lookup_result(&forged).is_none());
    assert_eq!(
        cache.stats.rejected.load(Ordering::Relaxed),
        before + 1,
        "an on-disk entry with mismatched identity is rejected, not missed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Locates the single `.cbr` file a seeded cache holds.
fn the_result_file(dir: &Path) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir.join("results"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(files.len(), 1);
    files.remove(0)
}

#[test]
fn truncated_entries_are_rejected_at_every_length() {
    let dir = scratch("truncate");
    let cache = WarmCache::open(&dir).unwrap();
    let (_, _) = run(&cache, INSTS);
    let path = the_result_file(&dir);
    let full = std::fs::read(&path).unwrap();
    let meta = meta_for(&design(), &CoreConfig::boom_4wide(), "gcc", INSTS);
    assert!(
        cache.lookup_result(&meta).is_some(),
        "sanity: intact entry hits"
    );
    for len in 0..full.len() {
        std::fs::write(&path, &full[..len]).unwrap();
        assert!(
            cache.lookup_result(&meta).is_none(),
            "truncation to {len} of {} bytes must not hit",
            full.len()
        );
    }
    std::fs::write(&path, &full).unwrap();
    assert!(
        cache.lookup_result(&meta).is_some(),
        "restored entry hits again"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_entries_are_rejected_at_every_byte() {
    let dir = scratch("bitflip");
    let cache = WarmCache::open(&dir).unwrap();
    let (_, _) = run(&cache, INSTS);
    let path = the_result_file(&dir);
    let full = std::fs::read(&path).unwrap();
    let meta = meta_for(&design(), &CoreConfig::boom_4wide(), "gcc", INSTS);
    for i in 0..full.len() {
        let mut poisoned = full.clone();
        poisoned[i] ^= 0x01;
        std::fs::write(&path, &poisoned).unwrap();
        assert!(
            cache.lookup_result(&meta).is_none(),
            "bit flip at byte {i} of {} must not hit",
            full.len()
        );
    }
    assert_eq!(
        cache.stats.rejected.load(Ordering::Relaxed),
        full.len() as u64,
        "every poisoned lookup is counted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_cache_always_misses() {
    let d = design();
    let spec = workload_by_name("gcc").unwrap();
    let a = execute_job(&d, CoreConfig::boom_4wide(), &spec, INSTS, None, None);
    let b = execute_job(&d, CoreConfig::boom_4wide(), &spec, INSTS, None, None);
    assert_eq!(a.cache, CacheDisposition::Miss);
    assert_eq!(b.cache, CacheDisposition::Miss);
    assert_eq!(a.report, b.report, "determinism without a cache");
}
