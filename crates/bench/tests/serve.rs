//! End-to-end tests for the `cobra-serve` daemon: served reports must be
//! byte-identical to direct in-process runs on every cache path, the
//! golden fixture must agree with what the daemon serves, admission must
//! answer bad jobs with precise reject codes, and the bounded queue must
//! push back instead of stalling.
//!
//! Each test binds an ephemeral TCP port (`tcp:127.0.0.1:0`), runs the
//! real server on a background thread, and talks the real wire protocol
//! through `serve::client::Client` — nothing is mocked.

use std::path::PathBuf;

use cobra_bench::jsonv::{self, Json};
use cobra_bench::serve::client::Client;
use cobra_bench::serve::exec::execute_job;
use cobra_bench::serve::protocol::{self, JobTarget};
use cobra_bench::serve::server::{DrainHandle, Listen, ServeConfig, Server};
use cobra_bench::workload_by_name;
use cobra_core::designs;
use cobra_uarch::CoreConfig;

/// Matches the golden fixture's measured region
/// (`crates/bench/tests/golden/reports.jsonl`), so served counters can be
/// cross-checked against the committed goldens.
const INSTS: u64 = 20_000;

struct TestServer {
    listen: Listen,
    drain: DrainHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(threads: usize, queue_cap: usize, cache_dir: Option<PathBuf>) -> TestServer {
        let server = Server::bind(ServeConfig {
            listen: Listen::parse("tcp:127.0.0.1:0").unwrap(),
            threads,
            queue_cap,
            cache_dir,
            insts_cap: 1_000_000,
            progress_stride: None,
        })
        .expect("bind ephemeral port");
        let addr = server.local_addr().expect("tcp listener has an address");
        let drain = server.drain_handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            listen: Listen::Tcp(addr.to_string()),
            drain,
            thread: Some(thread),
        }
    }

    fn connect(&self) -> Client {
        Client::connect(&self.listen).expect("connect to test server")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.drain.drain();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread exits on drain");
        }
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cobra-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Submits `cells` over one connection (pipelined) and returns, per cell
/// id, the result event's `(raw report bytes, cache disposition)`.
fn sweep(
    client: &mut Client,
    cells: &[(u64, &str, &str)],
    insts: u64,
) -> std::collections::BTreeMap<u64, (String, String)> {
    for (id, design, workload) in cells {
        let line = protocol::submit_line(
            *id,
            &JobTarget::Named((*design).to_string()),
            workload,
            insts,
        );
        client.send(&line).expect("send submit");
    }
    let mut out = std::collections::BTreeMap::new();
    while out.len() < cells.len() {
        let (line, parsed) = client
            .recv_until("result", |l, v| {
                let ev = v.get("ev").and_then(Json::as_str).unwrap_or("");
                assert!(
                    matches!(ev, "hello" | "accepted" | "progress"),
                    "unexpected event during sweep: {l}"
                );
            })
            .expect("recv")
            .expect("server stayed up");
        let id = parsed.get("id").and_then(Json::as_u64).unwrap();
        let cache = parsed
            .get("cache")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let bytes = protocol::report_bytes(&line).unwrap().to_string();
        out.insert(id, (bytes, cache));
    }
    out
}

/// The direct (no daemon, no cache) rendering of one grid cell — the
/// byte-identity baseline.
fn direct(design: &str, workload: &str, insts: u64) -> String {
    let design = designs::by_name(design).unwrap();
    let spec = workload_by_name(workload).unwrap();
    let outcome = execute_job(&design, CoreConfig::boom_4wide(), &spec, insts, None, None);
    protocol::report_json(&outcome.report)
}

#[test]
fn served_reports_are_byte_identical_to_direct_runs() {
    let cache = scratch("e2e");
    let server = TestServer::start(3, 64, Some(cache.clone()));

    // The golden grid — every stock design on two contrasting profiles —
    // driven cold from two concurrent connections.
    let mut cells: Vec<(u64, String, String)> = Vec::new();
    for (d, design) in designs::all().iter().enumerate() {
        for (w, workload) in ["gcc", "xz"].iter().enumerate() {
            cells.push((
                (d * 2 + w) as u64,
                design.name.clone(),
                workload.to_string(),
            ));
        }
    }
    let all: Vec<(u64, &str, &str)> = cells
        .iter()
        .map(|(i, d, w)| (*i, d.as_str(), w.as_str()))
        .collect();
    let left: Vec<_> = all.iter().step_by(2).copied().collect();
    let right: Vec<_> = all.iter().skip(1).step_by(2).copied().collect();

    let (cold_left, cold_right) = std::thread::scope(|s| {
        let mut c1 = server.connect();
        let mut c2 = server.connect();
        let t1 = s.spawn(move || sweep(&mut c1, &left, INSTS));
        let t2 = s.spawn(move || sweep(&mut c2, &right, INSTS));
        (t1.join().unwrap(), t2.join().unwrap())
    });
    let mut cold = cold_left;
    cold.extend(cold_right);
    assert_eq!(cold.len(), cells.len());

    // Byte-identity against direct runs, and a cold sweep never hits.
    for (id, design, workload) in cells.iter().map(|(i, d, w)| (*i, d.as_str(), w.as_str())) {
        let (bytes, cache_tag) = &cold[&id];
        assert_eq!(cache_tag, "miss", "cold sweep cell {design}/{workload}");
        assert_eq!(
            *bytes,
            direct(design, workload, INSTS),
            "served vs direct for {design}/{workload}"
        );
    }

    // Cross-check the served counters against the committed golden
    // fixture: same designs, same workloads, same measured region.
    let fixture = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/reports.jsonl"),
    )
    .expect("golden fixture exists");
    for line in fixture.lines() {
        let g = jsonv::parse(line).unwrap();
        let (gd, gw) = (
            g.get("design").and_then(Json::as_str).unwrap(),
            g.get("workload").and_then(Json::as_str).unwrap(),
        );
        let id = cells
            .iter()
            .find(|(_, d, w)| d == gd && w == gw)
            .map(|(i, _, _)| *i)
            .expect("fixture cell is in the sweep");
        let served = jsonv::parse(&cold[&id].0).unwrap();
        for key in [
            "cycles",
            "committed_insts",
            "cond_mispredicts",
            "fetch_bubbles",
        ] {
            assert_eq!(
                served
                    .get("counters")
                    .unwrap()
                    .get(key)
                    .and_then(Json::as_u64),
                g.get(key).and_then(Json::as_u64),
                "golden {key} for {gd}/{gw}"
            );
        }
    }

    // Second sweep: every cell is a tier-1 hit, bytes unchanged.
    let warm = sweep(&mut server.connect(), &all, INSTS);
    for (id, _, _) in &all {
        let (bytes, cache_tag) = &warm[id];
        assert_eq!(cache_tag, "hit", "second sweep cell {id}");
        assert_eq!(bytes, &cold[id].0, "tier-1 hit bytes for cell {id}");
    }

    // Larger measured region over the same design/workload: tier 2
    // restores the 8 000-instruction warmup checkpoint (20 000-inst jobs
    // store w8000; a 30 000-inst job wants w12000, so the best eligible
    // boundary is 8 000) and still matches the direct run byte for byte.
    let longer = sweep(&mut server.connect(), &[(99, "B2", "gcc")], 30_000);
    let (bytes, cache_tag) = &longer[&99];
    assert_eq!(cache_tag, "warm");
    assert_eq!(*bytes, direct("B2", "gcc", 30_000));

    drop(server);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn admission_rejects_are_precise() {
    let server = TestServer::start(1, 8, None);
    let mut c = server.connect();

    let expect_reject = |c: &mut Client, send: &str, code: &str| -> Json {
        c.send(send).unwrap();
        let (_, parsed) = c
            .recv_until("rejected", |_, _| {})
            .unwrap()
            .expect("server stayed up");
        assert_eq!(
            parsed.get("code").and_then(Json::as_str),
            Some(code),
            "for request {send}"
        );
        parsed
    };

    expect_reject(&mut c, "this is not json", protocol::E_PARSE);
    expect_reject(&mut c, "{\"op\":\"frobnicate\"}", protocol::E_PARSE);
    expect_reject(
        &mut c,
        "{\"op\":\"submit\",\"id\":1,\"design\":\"B2\",\"workload\":\"notaworkload\"}",
        protocol::E_WORKLOAD,
    );
    expect_reject(
        &mut c,
        "{\"op\":\"submit\",\"id\":2,\"design\":\"NoSuchDesign\",\"workload\":\"gcc\"}",
        protocol::E_TOPOLOGY,
    );
    expect_reject(
        &mut c,
        "{\"op\":\"submit\",\"id\":3,\"design\":\"B2\",\"workload\":\"gcc\",\"insts\":0}",
        protocol::E_INSTS,
    );
    expect_reject(
        &mut c,
        "{\"op\":\"submit\",\"id\":4,\"design\":\"B2\",\"workload\":\"gcc\",\
         \"insts\":999999999}",
        protocol::E_INSTS,
    );
    // A topology that fails to parse reports the span.
    let r = expect_reject(
        &mut c,
        "{\"op\":\"submit\",\"id\":5,\"topology\":\"TAGE3 >\",\"workload\":\"gcc\"}",
        protocol::E_TOPOLOGY,
    );
    assert!(r
        .get("msg")
        .and_then(Json::as_str)
        .unwrap()
        .contains("parse"));
    // A topology that parses but fails the lint gate carries structured
    // C-code diagnostics, exactly what `cobra-lint` would print.
    let r = expect_reject(
        &mut c,
        "{\"op\":\"submit\",\"id\":6,\"topology\":\"UBTB1 > BIM2\",\"workload\":\"gcc\"}",
        protocol::E_TOPOLOGY,
    );
    let diags = r
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("lint failure carries diagnostics");
    assert!(!diags.is_empty());
    assert!(diags[0]
        .get("code")
        .and_then(Json::as_str)
        .is_some_and(|code| code.starts_with('C')));

    // The connection is still healthy after every rejection.
    c.send("{\"op\":\"ping\"}").unwrap();
    assert!(c.recv_until("pong", |_, _| {}).unwrap().is_some());
}

#[test]
fn full_queue_pushes_back_with_retry_hint() {
    // One worker and a one-deep queue: pipelining a burst must produce
    // at least one E_QUEUE_FULL with a retry hint, and every accepted
    // job must still complete.
    let server = TestServer::start(1, 1, None);
    let mut c = server.connect();
    let burst = 8u64;
    for id in 0..burst {
        let line = protocol::submit_line(id, &JobTarget::Named("B2".into()), "gcc", 2_000);
        c.send(&line).unwrap();
    }
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut results = 0u64;
    while accepted + rejected < burst || results < accepted {
        let line = c.recv().unwrap().expect("server stayed up");
        let v = jsonv::parse(&line).unwrap();
        match v.get("ev").and_then(Json::as_str).unwrap() {
            "accepted" => accepted += 1,
            "rejected" => {
                assert_eq!(
                    v.get("code").and_then(Json::as_str),
                    Some(protocol::E_QUEUE_FULL),
                    "only backpressure rejections expected: {line}"
                );
                assert!(
                    v.get("retry_after_ms").and_then(Json::as_u64).unwrap() >= 50,
                    "retry hint present and sane: {line}"
                );
                rejected += 1;
            }
            "result" => results += 1,
            "hello" | "progress" => {}
            other => panic!("unexpected event {other}: {line}"),
        }
    }
    assert!(rejected >= 1, "burst of {burst} never hit the queue bound");
    assert_eq!(results, accepted);
}

#[test]
fn progress_streams_and_shutdown_drains() {
    let mut server = TestServer::start(1, 8, None);
    let mut c = server.connect();
    c.send(&protocol::submit_line(
        7,
        &JobTarget::Named("TAGE-L".into()),
        "xz",
        INSTS,
    ))
    .unwrap();
    let mut progress = 0u64;
    let (_, result) = c
        .recv_until("result", |_, v| {
            if v.get("ev").and_then(Json::as_str) == Some("progress") {
                assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
                let insts = v.get("insts").and_then(Json::as_u64).unwrap();
                let target = v.get("target").and_then(Json::as_u64).unwrap();
                assert!(insts <= target);
                progress += 1;
            }
        })
        .unwrap()
        .expect("server stayed up");
    assert!(progress >= 1, "default stride emits progress events");
    assert_eq!(result.get("cache").and_then(Json::as_str), Some("miss"));

    // stats reflects the finished job.
    c.send("{\"op\":\"stats\"}").unwrap();
    let (_, stats) = c.recv_until("stats", |_, _| {}).unwrap().unwrap();
    assert_eq!(stats.get("done").and_then(Json::as_u64), Some(1));

    // A protocol-level shutdown answers bye and drains the server; the
    // run() thread must come home without the Drop-side drain.
    c.send("{\"op\":\"shutdown\"}").unwrap();
    assert!(c.recv_until("bye", |_, _| {}).unwrap().is_some());
    server
        .thread
        .take()
        .unwrap()
        .join()
        .expect("server drained after shutdown op");
}

#[test]
fn raw_topology_jobs_are_served() {
    let server = TestServer::start(1, 8, None);
    let mut c = server.connect();
    // The B2 design's own topology, submitted raw: admission lints it,
    // a worker builds it from the stock registry, and the measured
    // region commits exactly the requested instructions past warm-up.
    let b2 = designs::b2();
    c.send(&protocol::submit_line(
        11,
        &JobTarget::Topology {
            topology: b2.topology.clone(),
            ghist_bits: b2.ghist_bits,
            lhist_entries: b2.lhist_entries,
        },
        "mcf",
        10_000,
    ))
    .unwrap();
    let (line, parsed) = c
        .recv_until("result", |_, _| {})
        .unwrap()
        .expect("server stayed up");
    let report = protocol::report_from_json(parsed.get("report").unwrap()).unwrap();
    assert_eq!(report.design, b2.topology);
    assert_eq!(report.workload, "mcf");
    // Commit proceeds in fetch packets, so the measured region may run a
    // couple of instructions past the bound — never short of it.
    assert!(report.counters.committed_insts >= 10_000);
    assert!(report.counters.committed_insts < 10_100);
    assert!(protocol::report_bytes(&line).is_some());
}
