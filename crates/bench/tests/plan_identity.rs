//! Byte-identity of the compiled execution plan against the reference
//! interpreter.
//!
//! The plan path (`composer/plan.rs`) is a pure devirtualization of the
//! interpreter's per-packet walk: same responses, same fold schedule
//! results, same metadata, same attribution. This test enforces that
//! contract end-to-end: every stock design × every SPECint17 profile must
//! produce bit-identical [`PerfReport`]s (counters *and* per-component
//! attribution) with `COBRA_PLAN=off` and with the plan enabled —
//! execution-driven, trace-replayed (`COBRA_TRACE_DIR`), and
//! checkpoint-restored (`COBRA_CKPT_DIR`), plus a dirty-state
//! `reset_to_baseline` rerun arm.
//!
//! One test function on purpose: it pins `COBRA_PLAN`, `COBRA_INSTS`,
//! `COBRA_TRACE_DIR`, and `COBRA_CKPT_DIR` for the whole process, which
//! would race against sibling tests reading the same variables.

use cobra_bench::{capture_workload, ckpt_file_name, run_insts, run_one};
use cobra_core::composer::Design;
use cobra_core::designs;
use cobra_uarch::{restore_checkpoint, save_checkpoint, CbsMeta, Core, CoreConfig, PerfReport};
use cobra_workloads::{spec17, ProgramSpec};
use std::path::Path;

fn sweep(designs: &[Design], specs: &[ProgramSpec]) -> Vec<PerfReport> {
    designs
        .iter()
        .flat_map(|d| {
            specs
                .iter()
                .map(|s| run_one(d, CoreConfig::boom_4wide(), s))
        })
        .collect()
}

fn assert_identical(reference: &[PerfReport], got: &[PerfReport], arm: &str) {
    assert_eq!(reference.len(), got.len());
    for (r, g) in reference.iter().zip(got) {
        assert_eq!(
            r, g,
            "{arm}: {}/{} diverged from the reference interpreter run",
            r.design, r.workload
        );
        // PerfReport equality already covers attribution; spell the
        // per-component check out so a divergence names the surface.
        assert_eq!(
            r.attribution, g.attribution,
            "{arm}: {}/{} attribution counters diverged",
            r.design, r.workload
        );
    }
}

#[test]
fn plan_matches_interpreter_on_every_design_and_profile() {
    std::env::set_var("COBRA_INSTS", "4000");
    std::env::remove_var("COBRA_TRACE_DIR");
    std::env::remove_var("COBRA_CKPT_DIR");
    let measure = run_insts();
    let warmup = measure * 2 / 5;
    let all = designs::all();
    let specs: Vec<ProgramSpec> = spec17::SPEC17_NAMES
        .iter()
        .map(|w| spec17::spec17(w))
        .collect();

    // Arm 1 — direct execution: the interpreter is the reference.
    std::env::set_var("COBRA_PLAN", "off");
    let reference = sweep(&all, &specs);
    std::env::set_var("COBRA_PLAN", "on");
    let plan = sweep(&all, &specs);
    assert_identical(&reference, &plan, "direct");

    let scratch = std::env::temp_dir().join(format!("cobra-plan-identity-{}", std::process::id()));
    let trace_dir = scratch.join("traces");
    let ckpt_dir = scratch.join("ckpts");
    std::fs::create_dir_all(&trace_dir).unwrap();
    std::fs::create_dir_all(&ckpt_dir).unwrap();

    // Arm 2 — trace-replayed: capture every profile, then replay through
    // both packet paths.
    for s in &specs {
        capture_workload(s, measure, &trace_dir).expect("capture");
    }
    std::env::set_var("COBRA_TRACE_DIR", &trace_dir);
    std::env::set_var("COBRA_PLAN", "off");
    assert_identical(&reference, &sweep(&all, &specs), "trace+interpreter");
    std::env::set_var("COBRA_PLAN", "on");
    assert_identical(&reference, &sweep(&all, &specs), "trace+plan");

    // Arm 3 — checkpoint-restored (composed with the trace replay): warm
    // every pair once, checkpoint at the warmup boundary, and rerun both
    // packet paths from the restored state.
    for d in &all {
        for s in &specs {
            capture_ckpt(
                d,
                s,
                warmup,
                &ckpt_dir.join(ckpt_file_name(&d.name, &s.name)),
            );
        }
    }
    std::env::set_var("COBRA_CKPT_DIR", &ckpt_dir);
    std::env::set_var("COBRA_PLAN", "off");
    assert_identical(&reference, &sweep(&all, &specs), "ckpt+interpreter");
    std::env::set_var("COBRA_PLAN", "on");
    assert_identical(&reference, &sweep(&all, &specs), "ckpt+plan");

    // Arm 4 — dirty-state rerun: restore once, then measure twice with a
    // `reset_to_baseline` in between. Both reruns must reproduce the
    // reference report exactly, proving the dirty-row reset restores every
    // mutated table row (a missed row would skew the second run).
    for (di, d) in all.iter().enumerate() {
        for (si, s) in specs.iter().take(3).enumerate() {
            let cfg = CoreConfig::boom_4wide();
            let mut core = Core::new(d, cfg, s.build()).expect("compose");
            let meta = CbsMeta::for_run(d, &cfg, &s.name, warmup);
            let bytes = std::fs::read(ckpt_dir.join(ckpt_file_name(&d.name, &s.name))).unwrap();
            restore_checkpoint(&bytes[..], &meta, &mut core).expect("restore");
            core.arm_baseline();
            let first = core.run_with_warmup(warmup, measure, &s.name);
            core.reset_to_baseline(s.build()).expect("dirty reset");
            let second = core.run_with_warmup(warmup, measure, &s.name);
            let expect = &reference[di * specs.len() + si];
            assert_eq!(&first, expect, "rerun arm: first run diverged");
            assert_eq!(
                &second, expect,
                "rerun arm: {}/{} diverged after reset_to_baseline",
                d.name, s.name
            );
        }
    }

    std::fs::remove_dir_all(&scratch).ok();
}

fn capture_ckpt(design: &Design, spec: &ProgramSpec, warmup: u64, path: &Path) {
    let cfg = CoreConfig::boom_4wide();
    let mut core = Core::new(design, cfg, spec.build()).expect("compose");
    core.run(warmup, &spec.name);
    let meta = CbsMeta::for_run(design, &cfg, &spec.name, warmup);
    let file = std::fs::File::create(path).expect("create checkpoint");
    save_checkpoint(std::io::BufWriter::new(file), &meta, &core).expect("save checkpoint");
}
