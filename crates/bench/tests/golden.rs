//! Golden-report regression gate.
//!
//! The simulator is deterministic: for a fixed design, configuration, and
//! workload, every counter in the `PerfReport` is reproducible bit for
//! bit. This test pins that output — every stock design on two contrasting
//! SPECint17 profiles at a 20 000-instruction measured region — against
//! checked-in JSONL fixtures, so any change that silently shifts simulated
//! behaviour fails CI with a field-level diff instead of landing unnoticed.
//!
//! Wall-clock-dependent metrics (`wall_s`, MIPS) are deliberately absent
//! from the fixtures; only architectural counters are gated.
//!
//! To accept an *intentional* behaviour change, regenerate the fixtures:
//!
//! ```text
//! COBRA_GOLDEN_BLESS=1 cargo test -p cobra-bench --test golden
//! ```
//!
//! and commit the diff — the fixture churn documents the drift in review.

use cobra_bench::jsonv;
use cobra_core::designs;
use cobra_uarch::{Core, CoreConfig};
use cobra_workloads::spec17;
use std::fmt::Write as _;
use std::path::PathBuf;

const MEASURE: u64 = 20_000;
const WARMUP: u64 = MEASURE * 2 / 5;
const WORKLOADS: [&str; 2] = ["gcc", "xz"];

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/reports.jsonl")
}

/// Runs the golden grid and renders one JSONL record per cell, in a fixed
/// order (workload-major, then design).
fn current_reports() -> String {
    let cfg = CoreConfig::boom_4wide();
    let mut out = String::new();
    for name in WORKLOADS {
        let spec = spec17::spec17(name);
        for design in designs::all() {
            let mut core = Core::new(&design, cfg, spec.build()).expect("stock designs compose");
            let report = core.run_with_warmup(WARMUP, MEASURE, &spec.name);
            let c = &report.counters;
            writeln!(
                out,
                "{{\"design\":{},\"workload\":{},\"warmup\":{WARMUP},\
                 \"measure\":{MEASURE},\"cycles\":{},\"committed_insts\":{},\
                 \"cond_branches\":{},\"cfis\":{},\"cond_mispredicts\":{},\
                 \"target_mispredicts\":{},\"override_redirects\":{},\
                 \"history_replays\":{},\"fetch_bubbles\":{},\
                 \"icache_stall_cycles\":{},\"rob_stall_cycles\":{}}}",
                jsonv::escape(&design.name),
                jsonv::escape(name),
                c.cycles,
                c.committed_insts,
                c.cond_branches,
                c.cfis,
                c.cond_mispredicts,
                c.target_mispredicts,
                c.override_redirects,
                c.history_replays,
                c.fetch_bubbles,
                c.icache_stall_cycles,
                c.rob_stall_cycles,
            )
            .expect("writing to a String cannot fail");
        }
    }
    out
}

/// Field-level description of how `got` differs from `want`, for a
/// reviewable failure message.
fn describe_drift(want: &str, got: &str) -> String {
    let mut drift = String::new();
    let (want_lines, got_lines): (Vec<_>, Vec<_>) = (want.lines().collect(), got.lines().collect());
    if want_lines.len() != got_lines.len() {
        let _ = writeln!(
            drift,
            "record count changed: fixture has {}, current run has {}",
            want_lines.len(),
            got_lines.len()
        );
    }
    for (w, g) in want_lines.iter().zip(&got_lines) {
        let (w, g) = match (jsonv::parse(w), jsonv::parse(g)) {
            (Ok(w), Ok(g)) => (w, g),
            _ => {
                let _ = writeln!(drift, "unparsable record:\n  fixture: {w}\n  current: {g}");
                continue;
            }
        };
        if w == g {
            continue;
        }
        let cell = format!(
            "{}/{}",
            g.get("design").and_then(jsonv::Json::as_str).unwrap_or("?"),
            g.get("workload")
                .and_then(jsonv::Json::as_str)
                .unwrap_or("?"),
        );
        if let (jsonv::Json::Obj(wm), jsonv::Json::Obj(gm)) = (&w, &g) {
            for (key, wv) in wm {
                let gv = gm.get(key);
                if gv != Some(wv) {
                    let _ = writeln!(
                        drift,
                        "  {cell}: {key} was {wv:?}, now {}",
                        gv.map_or("absent".to_string(), |v| format!("{v:?}"))
                    );
                }
            }
        }
    }
    drift
}

/// The gate: the current run must match `tests/golden/reports.jsonl`
/// exactly. Set `COBRA_GOLDEN_BLESS=1` to regenerate the fixture instead.
#[test]
fn reports_match_golden_fixtures() {
    let got = current_reports();
    let path = fixture_path();
    if std::env::var_os("COBRA_GOLDEN_BLESS").is_some() {
        std::fs::write(&path, &got)
            .unwrap_or_else(|e| panic!("blessing {} failed: {e}", path.display()));
        eprintln!(
            "blessed {} ({} records)",
            path.display(),
            got.lines().count()
        );
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{} is unreadable ({e}); generate it with \
             COBRA_GOLDEN_BLESS=1 cargo test -p cobra-bench --test golden",
            path.display()
        )
    });
    assert!(
        want == got,
        "simulated behaviour drifted from the golden fixtures:\n{}\n\
         If this change is intentional, re-bless with \
         COBRA_GOLDEN_BLESS=1 cargo test -p cobra-bench --test golden \
         and commit the fixture diff.",
        describe_drift(&want, &got)
    );
}

/// The fixture file itself must stay valid JSONL with the gated schema —
/// catches hand-edits that would otherwise surface as a confusing diff.
#[test]
fn golden_fixtures_are_valid_jsonl() {
    let path = fixture_path();
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} is unreadable: {e}", path.display()));
    for (i, line) in body.lines().enumerate() {
        let v = jsonv::parse(line)
            .unwrap_or_else(|e| panic!("{}:{}: bad JSON: {e}", path.display(), i + 1));
        for key in [
            "design",
            "workload",
            "warmup",
            "measure",
            "cycles",
            "committed_insts",
            "cond_branches",
            "cfis",
            "cond_mispredicts",
            "target_mispredicts",
            "override_redirects",
            "history_replays",
            "fetch_bubbles",
            "icache_stall_cycles",
            "rob_stall_cycles",
        ] {
            assert!(
                v.get(key).is_some(),
                "{}:{}: record is missing `{key}`",
                path.display(),
                i + 1
            );
        }
    }
}
