//! A dependency-free JSON value: escape on the way out, parse/validate on
//! the way back in.
//!
//! The build environment has no crates.io access, so the observability
//! surfaces (the runner's metrics JSONL, `cobra-trace --format json`, the
//! `COBRA_TRACE` event stream) hand-roll their JSON output. This module
//! holds the shared escaping helper plus a small recursive-descent parser
//! used to validate those streams in `--selfcheck` mode and in tests —
//! strict enough to reject malformed output (trailing garbage, bad
//! escapes, unterminated strings), with no serde-style mapping layer.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is not preserved (keys sort).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact u64, if this is a non-negative
    /// integer small enough to round-trip through f64.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53)).then_some(n as u64)
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

/// Parses exactly one JSON value spanning the whole input (surrounding
/// whitespace allowed, trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed construct.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let b = input.as_bytes();
    let mut pos = 0;
    let v = value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(err(pos, "trailing characters after value"));
    }
    Ok(v)
}

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes — the shared writer-side helper.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn err(at: usize, msg: &str) -> ParseError {
    ParseError {
        at,
        msg: msg.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => string(b, pos).map(Json::Str),
        Some(b'[') => array(b, pos),
        Some(b'{') => object(b, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(err(*pos, &format!("unexpected byte `{}`", *c as char))),
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are rejected rather than paired: the
                        // writers in this repo never emit them.
                        let c = char::from_u32(cp)
                            .ok_or_else(|| err(*pos, "\\u escape is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(err(*pos, "raw control character in string")),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a valid boundary walk).
                let s = std::str::from_utf8(&b[*pos..]).expect("input was a str");
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| err(start, "malformed number"))
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // [
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // {
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key"));
        }
        let key = string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, ":")?;
        let v = value(b, pos)?;
        out.insert(key, v);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"ev":"predict","cycle":7,"xs":[1,2,{"k":null}]}"#).unwrap();
        assert_eq!(v.get("ev").and_then(Json::as_str), Some("predict"));
        assert_eq!(v.get("cycle").and_then(Json::as_u64), Some(7));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}f";
        assert_eq!(parse(&escape(s)).unwrap(), Json::Str(s.to_string()));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
        assert!(parse(r#""\ud800""#).is_err(), "lone surrogate rejected");
    }
}
