//! Table III: the systems compared in the SPECint17 evaluation.

fn main() {
    println!("TABLE III — Evaluated systems for SPECint17 performance comparison");
    let rows = [
        ("Core", "Intel Skylake", "AWS Graviton", "BOOM (this model)"),
        (
            "Branch predictor",
            "undisclosed",
            "undisclosed",
            "Tournament / B2 / TAGE-L",
        ),
        ("L1 (I/D)", "64/64 KB", "48/32 KB", "32/32 KB"),
        ("L2 / L3", "1 MB / 24 MB", "2 MB / 0 MB", "512 KB / 4 MB"),
        (
            "Workloads",
            "SPECint17 (reference)",
            "SPECint17 (reference)",
            "synthetic SPECint17 profiles",
        ),
        (
            "Platform",
            "AWS EC2 bare-metal (perf)",
            "AWS EC2 bare-metal (perf)",
            "cycle-level Rust simulation",
        ),
    ];
    for (k, a, b, c) in rows {
        println!("{k:<18} {a:<26} {b:<26} {c}");
    }
    println!();
    println!("The Skylake/Graviton columns of Fig 10 are reproduced as fixed");
    println!("reference series (the paper measured them with `perf` on EC2; this");
    println!("build has no access to that hardware). The BOOM column is measured.");
}
