//! Fig 10: branch MPKI and IPC of the three COBRA-BOOM variants on the
//! SPECint17 suite, with the commercial-core reference points.

use cobra_bench::reference;
use cobra_bench::runner::{run_grid, threads, write_grid_summary, Job};
use cobra_uarch::{harmonic_mean, CoreConfig, PerfReport};
use cobra_workloads::{spec17, ProgramSpec};
use std::time::Instant;

fn main() {
    let all_designs = cobra_core::designs::all();
    let specs: Vec<ProgramSpec> = spec17::SPEC17_NAMES
        .iter()
        .map(|w| spec17::spec17(w))
        .collect();
    // Design-major grid: results[design][bench].
    let jobs: Vec<Job<'_>> = all_designs
        .iter()
        .flat_map(|d| {
            specs
                .iter()
                .map(move |s| Job::new(d, CoreConfig::boom_4wide(), s))
        })
        .collect();
    let started = Instant::now();
    let grid = run_grid(&jobs);
    let grid_wall = started.elapsed();
    // Machine-readable companion to the stdout tables (stderr notes the
    // path): wall, MIPS, packet-path mode, and thread count per run.
    let summary_path =
        std::env::var("COBRA_GRID_JSON").unwrap_or_else(|_| "results/bench_fig10.json".into());
    write_grid_summary(&summary_path, &grid, threads(), grid_wall);
    let results: Vec<Vec<PerfReport>> = grid
        .chunks(specs.len())
        .map(|row| row.iter().map(|r| r.report.clone()).collect())
        .collect();

    println!("FIG 10 — SPECint17: branch misses per kilo-instruction (MPKI)");
    println!(
        "{:<11} {:>10} {:>10} {:>10}   {:>9} {:>9} {:>9} {:>9} {:>9}",
        "bench",
        "Tournament",
        "B2",
        "TAGE-L",
        "pprTourn",
        "pprB2",
        "pprTAGEL",
        "Skylake*",
        "Gravitn*"
    );
    for (i, w) in spec17::SPEC17_NAMES.iter().enumerate() {
        println!(
            "{:<11} {:>10.2} {:>10.2} {:>10.2}   {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            w,
            results[0][i].counters.mpki(),
            results[1][i].counters.mpki(),
            results[2][i].counters.mpki(),
            reference::FIG10_MPKI_TOURNAMENT[i],
            reference::FIG10_MPKI_B2[i],
            reference::FIG10_MPKI_TAGE_L[i],
            reference::FIG10_SKYLAKE[i].0,
            reference::FIG10_GRAVITON[i].0,
        );
    }

    println!();
    println!("FIG 10 — SPECint17: IPC");
    println!(
        "{:<11} {:>10} {:>10} {:>10}   {:>9} {:>9}",
        "bench", "Tournament", "B2", "TAGE-L", "Skylake*", "Gravitn*"
    );
    let mut ipcs = [Vec::new(), Vec::new(), Vec::new()];
    for (i, w) in spec17::SPEC17_NAMES.iter().enumerate() {
        for d in 0..3 {
            ipcs[d].push(results[d][i].counters.ipc());
        }
        println!(
            "{:<11} {:>10.3} {:>10.3} {:>10.3}   {:>9.2} {:>9.2}",
            w,
            results[0][i].counters.ipc(),
            results[1][i].counters.ipc(),
            results[2][i].counters.ipc(),
            reference::FIG10_SKYLAKE[i].1,
            reference::FIG10_GRAVITON[i].1,
        );
    }
    println!(
        "{:<11} {:>10.3} {:>10.3} {:>10.3}",
        "HARMEAN",
        harmonic_mean(&ipcs[0]),
        harmonic_mean(&ipcs[1]),
        harmonic_mean(&ipcs[2]),
    );
    println!();
    println!("* fixed reference series quoted from the paper's figure (measured");
    println!("  there with `perf` on EC2 hardware; \"approximate due to different");
    println!("  ISAs\"). Shape checks: TAGE-L most accurate on every benchmark;");
    println!("  Tournament suffers on aliasing-heavy workloads; easy benchmarks");
    println!("  (exchange2, x264) near-ceiling for all designs.");
}
