//! `cobra-trace` — run one design × workload and show where the
//! mispredictions come from.
//!
//! The simulated BPU keeps per-component attribution counters (see
//! [`cobra_core::obs`]); this tool runs a simulation with per-PC blame
//! recording enabled and renders the results:
//!
//! ```text
//! cobra-trace TAGE-L gcc                          # human-readable blame tables
//! cobra-trace Tournament xz --top 20              # more mispredicted-PC rows
//! cobra-trace B2 dhrystone --format json          # machine-readable report
//! cobra-trace TAGE-L gcc --trace t.jsonl          # plus a JSONL event trace
//! cobra-trace TAGE-L gcc --chrome t.chrome.json   # plus a chrome://tracing file
//! cobra-trace TAGE-L gcc --selfcheck              # CI mode: validate output
//! cobra-trace --list                              # known designs and workloads
//! ```
//!
//! Designs resolve through [`cobra_core::designs::by_name`]; workloads are
//! the synthetic SPECint17 models plus the named kernels. `--selfcheck`
//! re-parses every JSON surface the run produced and asserts the
//! reconciliation invariant (per-component blame sums to the core's
//! branch-miss count exactly).
//!
//! Exit status: 0 on success, 1 when `--selfcheck` finds a violation,
//! 2 on a usage error.

use cobra_bench::{jsonv, run_insts, runner};
use cobra_core::designs;
use cobra_core::obs::trace::{TraceFormat, TraceSink};
use cobra_core::obs::{AttributionReport, PcBlame};
use cobra_uarch::{Core, CoreConfig, PerfReport};
use cobra_workloads::{kernels, spec17, ProgramSpec, SPEC17_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    design: String,
    workload: String,
    json: bool,
    top: usize,
    insts: Option<u64>,
    warmup: u64,
    trace: Option<String>,
    chrome: Option<String>,
    metrics: Option<String>,
    selfcheck: bool,
}

const USAGE: &str = "usage: cobra-trace [OPTIONS] DESIGN WORKLOAD

Runs one design x workload simulation with per-component attribution and
per-PC mispredict blame enabled, then renders the results.

Options:
  --format FMT     human (default) or json
  --top N          rows in the mispredicted-PC blame table [10]
  --insts N        measured instructions [COBRA_INSTS or 500000]
  --warmup N       warm-up instructions excluded from counters [0]
                   (the per-PC table always covers the whole run)
  --trace PATH     also write a JSONL event trace to PATH
  --chrome PATH    also write a Chrome trace_event file to PATH
  --metrics PATH   append a runner-schema metrics JSONL record to PATH
  --selfcheck      validate all emitted JSON and the blame-reconciliation
                   invariant; exit 1 on any violation
  --list           print known designs and workloads and exit
  -h, --help       print this help";

const KERNEL_NAMES: &[&str] = &[
    "dhrystone",
    "coremark",
    "aliasing_stress",
    "loop_stress",
    "history_depth",
    "btb_stress",
    "ras_stress",
];

fn workload_by_name(name: &str) -> Option<ProgramSpec> {
    if SPEC17_NAMES.iter().any(|n| n.eq_ignore_ascii_case(name)) {
        return Some(spec17(&name.to_ascii_lowercase()));
    }
    match name.to_ascii_lowercase().as_str() {
        "dhrystone" => Some(kernels::dhrystone()),
        "coremark" => Some(kernels::coremark(false)),
        "aliasing_stress" => Some(kernels::aliasing_stress()),
        "loop_stress" => Some(kernels::loop_stress()),
        "history_depth" => Some(kernels::history_depth(32)),
        "btb_stress" => Some(kernels::btb_stress()),
        "ras_stress" => Some(kernels::ras_stress()),
        _ => None,
    }
}

fn print_list() {
    println!("designs:");
    for d in designs::catalog() {
        println!("  {:<16} {}", d.name, d.topology);
    }
    println!("workloads:");
    println!("  spec17: {}", SPEC17_NAMES.join(" "));
    println!("  kernels: {}", KERNEL_NAMES.join(" "));
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut json = false;
    let mut top = 10usize;
    let mut insts = None;
    let mut warmup = 0u64;
    let mut trace = None;
    let mut chrome = None;
    let mut metrics = None;
    let mut selfcheck = false;
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("`{flag}` needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list" => {
                print_list();
                return Ok(None);
            }
            "--format" => match need(&mut it, "--format")?.as_str() {
                "json" => json = true,
                "human" => json = false,
                other => return Err(format!("unknown format `{other}`")),
            },
            "--top" => {
                top = need(&mut it, "--top")?
                    .parse()
                    .map_err(|_| "`--top` needs an integer".to_string())?
            }
            "--insts" => {
                insts = Some(
                    need(&mut it, "--insts")?
                        .parse::<u64>()
                        .map_err(|_| "`--insts` needs an integer".to_string())?
                        .max(1),
                )
            }
            "--warmup" => {
                warmup = need(&mut it, "--warmup")?
                    .parse()
                    .map_err(|_| "`--warmup` needs an integer".to_string())?
            }
            "--trace" => trace = Some(need(&mut it, "--trace")?),
            "--chrome" => chrome = Some(need(&mut it, "--chrome")?),
            "--metrics" => metrics = Some(need(&mut it, "--metrics")?),
            "--selfcheck" => selfcheck = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            p => positional.push(p.to_string()),
        }
    }
    let [design, workload] = positional.as_slice() else {
        return Err("expected exactly DESIGN and WORKLOAD (try --list)".into());
    };
    Ok(Some(Options {
        design: design.clone(),
        workload: workload.clone(),
        json,
        top,
        insts,
        warmup,
        trace,
        chrome,
        metrics,
        selfcheck,
    }))
}

/// One mispredicted-PC row: the PC, its total blame, and the nonzero
/// `(component label, count)` breakdown.
type PcRow = (u64, u64, Vec<(String, u64)>);

/// The top-`top` mispredicted PCs by total blame, each with its nonzero
/// per-row breakdown.
fn top_pcs(pc_blame: &PcBlame, labels: &[String], top: usize) -> Vec<PcRow> {
    let mut rows: Vec<PcRow> = pc_blame
        .iter()
        .map(|(&pc, counts)| {
            let total = counts.iter().sum();
            let by: Vec<(String, u64)> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (labels[i].clone(), c))
                .collect();
            (pc, total, by)
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(top);
    rows
}

/// End-of-run occupancy gauges, paired with the component labels the
/// SRAM rows belong to (dataflow order, no static row).
struct RunGauges {
    gauges: cobra_core::obs::interval::IntervalGauges,
    labels: Vec<String>,
}

fn render_gauges(g: &RunGauges) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\noccupancy: history file {} in flight, RAS depth {} (high-water {})",
        g.gauges.hf_occupancy, g.gauges.ras_depth, g.gauges.ras_high_water
    );
    let touched_any = g.gauges.sram_rows.iter().any(|&(_, total)| total > 0);
    if touched_any {
        let _ = writeln!(out, "SRAM rows touched since reset:");
        for (label, &(touched, total)) in g.labels.iter().zip(&g.gauges.sram_rows) {
            if total == 0 {
                let _ = writeln!(out, "  {label:<14} flop-only");
            } else {
                let _ = writeln!(
                    out,
                    "  {label:<14} {touched:>8} / {total:>8} rows ({:.1}%)",
                    touched as f64 * 100.0 / total as f64
                );
            }
        }
    }
    out
}

fn json_gauges(g: &RunGauges) -> String {
    let rows: Vec<String> = g
        .labels
        .iter()
        .zip(&g.gauges.sram_rows)
        .map(|(label, &(touched, total))| {
            format!(
                "{{\"label\":{},\"rows_touched\":{touched},\"rows_total\":{total}}}",
                jsonv::escape(label)
            )
        })
        .collect();
    format!(
        "{{\"hf_occupancy\":{},\"ras_depth\":{},\"ras_high_water\":{},\"sram\":[{}]}}",
        g.gauges.hf_occupancy,
        g.gauges.ras_depth,
        g.gauges.ras_high_water,
        rows.join(",")
    )
}

fn render_human(report: &PerfReport, pcs: &[PcRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let a = &report.attribution;
    let c = &report.counters;
    let _ = writeln!(out, "{report}");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "component", "queries", "provided", "overridden", "dir-miss", "tgt-miss", "blame"
    );
    for comp in &a.components {
        let k = &comp.counters;
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
            comp.label,
            k.queries,
            k.provided_final,
            k.overridden,
            k.direction_blame,
            k.target_blame,
            k.blame()
        );
    }
    let _ = writeln!(
        out,
        "\nblame total {} (= {} branch misses)  packets with prediction {}",
        a.total_blame(),
        c.branch_misses(),
        a.packets_with_prediction
    );
    let _ = writeln!(
        out,
        "history file high-water {} entries, {} ghist snapshot repairs, {} lhist repairs",
        a.hf_high_water, a.ghist_snapshot_repairs, a.lhist_repairs
    );
    if !a.overrides.is_empty() {
        let _ = writeln!(out, "\noverride chains (winner over loser):");
        let mut edges = a.overrides.clone();
        edges.sort_by_key(|e| std::cmp::Reverse(e.count));
        for e in &edges {
            let _ = writeln!(
                out,
                "  {:<14} over {:<14} {:>10}",
                e.winner, e.loser, e.count
            );
        }
    }
    if !pcs.is_empty() {
        let _ = writeln!(out, "\ntop mispredicted PCs (whole run):");
        for (pc, total, by) in pcs {
            let detail: Vec<String> = by.iter().map(|(l, n)| format!("{l}:{n}")).collect();
            let _ = writeln!(out, "  {pc:#010x} {total:>8}  {}", detail.join(" "));
        }
    }
    out
}

fn json_attribution(a: &AttributionReport) -> String {
    let comps: Vec<String> = a
        .components
        .iter()
        .map(|c| {
            let k = &c.counters;
            format!(
                "{{\"label\":{},\"queries\":{},\"fires\":{},\"mispredict_events\":{},\
                 \"repairs\":{},\"updates\":{},\"provided_final\":{},\"overridden\":{},\
                 \"direction_blame\":{},\"target_blame\":{}}}",
                jsonv::escape(&c.label),
                k.queries,
                k.fires,
                k.mispredict_events,
                k.repairs,
                k.updates,
                k.provided_final,
                k.overridden,
                k.direction_blame,
                k.target_blame
            )
        })
        .collect();
    let edges: Vec<String> = a
        .overrides
        .iter()
        .map(|e| {
            format!(
                "{{\"winner\":{},\"loser\":{},\"count\":{}}}",
                jsonv::escape(&e.winner),
                jsonv::escape(&e.loser),
                e.count
            )
        })
        .collect();
    format!(
        "{{\"packets_with_prediction\":{},\"hf_high_water\":{},\"ghist_snapshot_repairs\":{},\
         \"lhist_repairs\":{},\"components\":[{}],\"overrides\":[{}]}}",
        a.packets_with_prediction,
        a.hf_high_water,
        a.ghist_snapshot_repairs,
        a.lhist_repairs,
        comps.join(","),
        edges.join(",")
    )
}

fn render_json(report: &PerfReport, pcs: &[PcRow], gauges: &RunGauges) -> String {
    let c = &report.counters;
    let pc_rows: Vec<String> = pcs
        .iter()
        .map(|(pc, total, by)| {
            let pairs: Vec<String> = by
                .iter()
                .map(|(l, n)| format!("{}:{n}", jsonv::escape(l)))
                .collect();
            format!(
                "{{\"pc\":{},\"total\":{total},\"by\":{{{}}}}}",
                jsonv::escape(&format!("{pc:#x}")),
                pairs.join(",")
            )
        })
        .collect();
    format!(
        "{{\"design\":{},\"workload\":{},\"insts\":{},\"cycles\":{},\"ipc\":{:.4},\
         \"mpki\":{:.4},\"acc\":{:.4},\"branch_misses\":{},\"attribution\":{},\
         \"gauges\":{},\"top_pcs\":[{}]}}",
        jsonv::escape(&report.design),
        jsonv::escape(&report.workload),
        c.committed_insts,
        c.cycles,
        c.ipc(),
        c.mpki(),
        c.branch_accuracy(),
        c.branch_misses(),
        json_attribution(&report.attribution),
        json_gauges(gauges),
        pc_rows.join(",")
    )
}

/// `--selfcheck`: re-parse every JSON surface and enforce the
/// reconciliation invariants. Returns the violations found.
fn selfcheck(report: &PerfReport, json_report: &str, trace_path: Option<&str>) -> Vec<String> {
    let mut bad = Vec::new();
    let a = &report.attribution;
    let misses = report.counters.branch_misses();
    if a.total_blame() != misses {
        bad.push(format!(
            "blame does not reconcile: per-component blame sums to {} but the core counted {} branch misses",
            a.total_blame(),
            misses
        ));
    }
    if a.total_provided() != a.packets_with_prediction {
        bad.push(format!(
            "provided_final sums to {} but {} packets carried a prediction",
            a.total_provided(),
            a.packets_with_prediction
        ));
    }
    match jsonv::parse(json_report) {
        Err(e) => bad.push(format!("--format json report is not valid JSON: {e}")),
        Ok(v) => {
            // One SRAM utilization row per component (the static row has
            // no storage), each with touched <= total.
            let sram_rows = v
                .get("gauges")
                .and_then(|g| g.get("sram"))
                .and_then(jsonv::Json::as_arr);
            match sram_rows {
                None => bad.push("json report is missing gauges.sram".into()),
                Some(rows) => {
                    if rows.len() + 1 != a.components.len() {
                        bad.push(format!(
                            "gauges.sram has {} rows for {} components (+ static)",
                            rows.len(),
                            a.components.len()
                        ));
                    }
                    for r in rows {
                        let touched = r.get("rows_touched").and_then(jsonv::Json::as_u64);
                        let total = r.get("rows_total").and_then(jsonv::Json::as_u64);
                        match (touched, total) {
                            (Some(t), Some(n)) if t <= n => {}
                            _ => bad.push("gauges.sram row with touched > total".into()),
                        }
                    }
                }
            }
        }
    }
    if let Some(path) = trace_path {
        match std::fs::read_to_string(path) {
            Ok(body) => {
                for (i, line) in body.lines().enumerate() {
                    let v = match jsonv::parse(line) {
                        Ok(v) => v,
                        Err(e) => {
                            bad.push(format!("{path}:{}: invalid JSONL: {e}", i + 1));
                            break;
                        }
                    };
                    let ev_ok = v.get("ev").and_then(jsonv::Json::as_str).is_some_and(|ev| {
                        matches!(ev, "predict" | "fire" | "mispredict" | "repair" | "update")
                    });
                    if !ev_ok || v.get("cycle").and_then(jsonv::Json::as_u64).is_none() {
                        bad.push(format!(
                            "{path}:{}: event record missing a valid `ev`/`cycle`",
                            i + 1
                        ));
                        break;
                    }
                }
            }
            Err(e) => bad.push(format!("cannot read trace {path}: {e}")),
        }
    }
    bad
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cobra-trace: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let Some(design) = designs::by_name(&o.design) else {
        eprintln!("cobra-trace: unknown design `{}` (try --list)", o.design);
        return ExitCode::from(2);
    };
    let Some(spec) = workload_by_name(&o.workload) else {
        eprintln!(
            "cobra-trace: unknown workload `{}` (try --list)",
            o.workload
        );
        return ExitCode::from(2);
    };
    let measure = o.insts.unwrap_or_else(run_insts);

    let mut core = match Core::new(&design, CoreConfig::default(), spec.build()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cobra-trace: `{}` failed to compose: {e}", design.name);
            return ExitCode::FAILURE;
        }
    };
    core.bpu_mut().enable_pc_attribution();
    let node_labels: Vec<String> = {
        let sink = core.bpu().attribution();
        sink.labels()[..sink.num_components()].to_vec()
    };
    if let Some(path) = &o.trace {
        core.bpu_mut().attach_tracer(TraceSink::new(
            PathBuf::from(path),
            TraceFormat::Jsonl,
            node_labels.clone(),
        ));
    }
    if let Some(path) = &o.chrome {
        core.bpu_mut().attach_tracer(TraceSink::new(
            PathBuf::from(path),
            TraceFormat::Chrome,
            node_labels.clone(),
        ));
    }

    let started = Instant::now();
    let report = core.run_with_warmup(o.warmup, measure, &spec.name);
    let wall = started.elapsed();

    let blame_labels = core.bpu().attribution().labels().to_vec();
    let pcs = core
        .bpu()
        .pc_attribution()
        .map(|m| top_pcs(m, &blame_labels, o.top))
        .unwrap_or_default();
    let gauges = RunGauges {
        gauges: core.interval_gauges(),
        labels: node_labels.clone(),
    };

    // The JSON report is always rendered so --selfcheck covers it even in
    // human mode.
    let json_report = render_json(&report, &pcs, &gauges);
    if o.json {
        println!("{json_report}");
    } else {
        print!("{}", render_human(&report, &pcs));
        print!("{}", render_gauges(&gauges));
    }

    if let Some(path) = &o.metrics {
        let result = runner::JobResult {
            report: report.clone(),
            wall,
            trace: None,
            checkpoint: None,
            metrics: None,
            served: None,
            cache: None,
        };
        let line = runner::metrics_record("cobra-trace", &result);
        if let Err(e) = runner::write_metrics(path, std::slice::from_ref(&line)) {
            eprintln!("cobra-trace: warning: could not write --metrics {path:?}: {e}");
        }
    }

    if o.selfcheck {
        let violations = selfcheck(&report, &json_report, o.trace.as_deref());
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("cobra-trace: selfcheck: {v}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("cobra-trace: selfcheck passed");
    }
    ExitCode::SUCCESS
}
