//! Fig 7: pipeline diagrams of the three COBRA-generated predictors.

use cobra_core::composer::{BpuConfig, BranchPredictorUnit};
use cobra_core::designs;

fn main() {
    println!("FIG 7 — Pipeline diagrams of the COBRA-generated predictors");
    for design in designs::all() {
        let bpu = BranchPredictorUnit::build(&design, BpuConfig::default())
            .expect("stock design composes");
        println!();
        println!("{}:  {}", design.name, design.topology);
        for stage in bpu.describe_pipeline() {
            let responders = if stage.responders.is_empty() {
                "(pipelining)".to_string()
            } else {
                stage.responders.join(", ")
            };
            println!("  Fetch-{}: {}", stage.stage, responders);
        }
    }
}
