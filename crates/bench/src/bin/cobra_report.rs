//! `cobra-report` — decode `.cbm` interval telemetry into phase
//! timelines, phase-change events, and worst-interval tables.
//!
//! The interval engine (see `cobra_core::obs::interval`) streams one
//! record per `COBRA_INTERVAL` committed instructions into a `.cbm`
//! file; this tool is the consumer:
//!
//! ```text
//! cobra-report metrics/TAGE-L--gcc.cbm            # timeline + phases + worst intervals
//! cobra-report --top 5 metrics/*.cbm              # more worst-interval rows
//! cobra-report --format json m.cbm                # machine-readable report
//! cobra-report --similarity m.cbm                 # interval-similarity matrix
//! cobra-report --check metrics/*.cbm              # CI mode: decode + reconcile only
//! ```
//!
//! Phase analysis uses the per-interval phase signature (a hashed
//! branch-PC working-set histogram, BBV-style): consecutive intervals
//! whose cosine similarity drops below the `--phase-threshold` are
//! reported as phase changes, and the `--similarity` matrix shows the
//! full interval × interval structure (SimPoint-style, small enough to
//! eyeball).
//!
//! `--check` decodes each file (checksums, caps, shape) and verifies the
//! reconciliation invariant — summed over all records, the host and
//! per-component attribution deltas equal the embedded end-of-run
//! totals bit-exactly. Exit status: 0 on success, 1 when any file fails
//! to decode or reconcile, 2 on a usage error.

use cobra_bench::jsonv;
use cobra_core::obs::interval::cosine;
use cobra_uarch::{read_metrics, reconcile, CbmFile};
use std::process::ExitCode;

struct Options {
    paths: Vec<String>,
    top: usize,
    json: bool,
    check: bool,
    similarity: bool,
    phase_threshold: f64,
}

const USAGE: &str = "usage: cobra-report [OPTIONS] FILE.cbm [FILE.cbm ...]

Decodes .cbm interval-telemetry files into phase timelines, phase-change
events, and worst-interval tables.

Options:
  --format FMT          human (default) or json
  --top N               rows in the worst-interval tables [3]
  --phase-threshold X   cosine-similarity drop that counts as a phase
                        change, in (0, 1] [0.75]
  --similarity          also print the interval-similarity matrix
  --check               decode + verify reconciliation only (CI mode);
                        exit 1 on the first failure
  -h, --help            print this help";

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut o = Options {
        paths: Vec::new(),
        top: 3,
        json: false,
        check: false,
        similarity: false,
        phase_threshold: 0.75,
    };
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("`{flag}` needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--format" => match need(&mut it, "--format")?.as_str() {
                "json" => o.json = true,
                "human" => o.json = false,
                other => return Err(format!("unknown format `{other}`")),
            },
            "--top" => {
                o.top = need(&mut it, "--top")?
                    .parse()
                    .map_err(|_| "`--top` needs an integer".to_string())?
            }
            "--phase-threshold" => {
                o.phase_threshold = need(&mut it, "--phase-threshold")?
                    .parse()
                    .map_err(|_| "`--phase-threshold` needs a number".to_string())?;
                if !(o.phase_threshold > 0.0 && o.phase_threshold <= 1.0) {
                    return Err("`--phase-threshold` must be in (0, 1]".into());
                }
            }
            "--similarity" => o.similarity = true,
            "--check" => o.check = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            p => o.paths.push(p.to_string()),
        }
    }
    if o.paths.is_empty() {
        return Err("expected at least one FILE.cbm".into());
    }
    Ok(Some(o))
}

fn open(path: &str) -> Result<CbmFile, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let file = read_metrics(std::io::BufReader::new(f)).map_err(|e| format!("{path}: {e}"))?;
    reconcile(&file).map_err(|e| format!("{path}: does not reconcile: {e}"))?;
    Ok(file)
}

/// Interval indices where the phase signature breaks with the previous
/// interval (cosine similarity below `threshold`).
fn phase_changes(file: &CbmFile, threshold: f64) -> Vec<(usize, f64)> {
    file.records
        .windows(2)
        .enumerate()
        .filter_map(|(i, w)| {
            let sim = cosine(&w[0].sig, &w[1].sig);
            (sim < threshold).then_some((i + 1, sim))
        })
        .collect()
}

/// The `top` worst intervals for component row `row`, by blame
/// (direction + target), skipping blame-free intervals. Returns
/// `(record index, blame)` pairs, worst first.
fn worst_intervals(file: &CbmFile, row: usize, top: usize) -> Vec<(usize, u64)> {
    let mut rows: Vec<(usize, u64)> = file
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r.attr.components[row].counters.blame()))
        .filter(|&(_, b)| b > 0)
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(top);
    rows
}

fn render_human(path: &str, file: &CbmFile, o: &Options) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let m = &file.meta;
    let _ = writeln!(
        out,
        "{path}: {} on {} (topology {}), interval {} insts, {} intervals",
        m.design,
        m.workload,
        m.topology,
        m.interval_n,
        file.records.len()
    );
    let _ = writeln!(
        out,
        "totals: {} insts, MPKI {:.2}, IPC {:.3} — reconciles bit-exactly",
        file.totals_host.committed_insts,
        file.totals_host.mpki(),
        file.totals_host.ipc()
    );
    let _ = writeln!(
        out,
        "\n{:>4} {:>12} {:>8} {:>7} {:>7} {:>7} {:>8} {:>5}",
        "ivl", "start_inst", "insts", "mpki", "ipc", "hf_occ", "ras", "sim"
    );
    let mut prev_sig: Option<&Vec<u32>> = None;
    for (i, r) in file.records.iter().enumerate() {
        let sim = prev_sig
            .map(|p| format!("{:.2}", cosine(p, &r.sig)))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{i:>4} {:>12} {:>8} {:>7.2} {:>7.3} {:>7} {:>4}/{:<3} {sim:>5}",
            r.start_inst,
            r.host.committed_insts,
            r.host.mpki(),
            r.host.ipc(),
            r.gauges.hf_occupancy,
            r.gauges.ras_depth,
            r.gauges.ras_high_water,
        );
        prev_sig = Some(&r.sig);
    }
    let changes = phase_changes(file, o.phase_threshold);
    if changes.is_empty() {
        let _ = writeln!(
            out,
            "\nno phase changes (cosine similarity never dropped below {:.2})",
            o.phase_threshold
        );
    } else {
        let _ = writeln!(
            out,
            "\nphase changes (similarity < {:.2}):",
            o.phase_threshold
        );
        for (i, sim) in &changes {
            let _ = writeln!(
                out,
                "  interval {i} (at {} insts): similarity {sim:.3}",
                file.records[*i].start_inst
            );
        }
    }
    let _ = writeln!(out, "\nworst intervals per component (by blame):");
    for (row, label) in file.labels.iter().enumerate() {
        let worst = worst_intervals(file, row, o.top);
        if worst.is_empty() {
            continue;
        }
        let detail: Vec<String> = worst.iter().map(|(i, b)| format!("ivl{i}:{b}")).collect();
        let _ = writeln!(out, "  {label:<14} {}", detail.join(" "));
    }
    if o.similarity {
        let _ = writeln!(out, "\ninterval-similarity matrix (cosine × 100):");
        for a in &file.records {
            let row: Vec<String> = file
                .records
                .iter()
                .map(|b| format!("{:>3.0}", cosine(&a.sig, &b.sig) * 100.0))
                .collect();
            let _ = writeln!(out, "  {}", row.join(" "));
        }
    }
    out
}

fn render_json(path: &str, file: &CbmFile, o: &Options) -> String {
    let m = &file.meta;
    let records: Vec<String> = file
        .records
        .iter()
        .map(|r| {
            let blame: Vec<String> = file
                .labels
                .iter()
                .zip(&r.attr.components)
                .map(|(l, c)| format!("{}:{}", jsonv::escape(l), c.counters.blame()))
                .collect();
            format!(
                "{{\"start_inst\":{},\"insts\":{},\"mpki\":{:.4},\"ipc\":{:.4},\
                 \"hf_occupancy\":{},\"ras_depth\":{},\"blame\":{{{}}}}}",
                r.start_inst,
                r.host.committed_insts,
                r.host.mpki(),
                r.host.ipc(),
                r.gauges.hf_occupancy,
                r.gauges.ras_depth,
                blame.join(",")
            )
        })
        .collect();
    let changes: Vec<String> = phase_changes(file, o.phase_threshold)
        .iter()
        .map(|(i, sim)| format!("{{\"interval\":{i},\"similarity\":{sim:.6}}}"))
        .collect();
    format!(
        "{{\"file\":{},\"design\":{},\"workload\":{},\"topology\":{},\
         \"interval_n\":{},\"intervals\":{},\"total_insts\":{},\"total_mpki\":{:.4},\
         \"phase_changes\":[{}],\"records\":[{}]}}",
        jsonv::escape(path),
        jsonv::escape(&m.design),
        jsonv::escape(&m.workload),
        jsonv::escape(&m.topology),
        m.interval_n,
        file.records.len(),
        file.totals_host.committed_insts,
        file.totals_host.mpki(),
        changes.join(","),
        records.join(",")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cobra-report: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut failed = false;
    for path in &o.paths {
        match open(path) {
            Err(e) => {
                eprintln!("cobra-report: {e}");
                failed = true;
            }
            Ok(file) => {
                if o.check {
                    eprintln!(
                        "cobra-report: {path}: ok ({} intervals, reconciles)",
                        file.records.len()
                    );
                } else if o.json {
                    println!("{}", render_json(path, &file, &o));
                } else {
                    print!("{}", render_human(path, &file, &o));
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
