//! Section VI-A: the physical-design experiment — a 2-cycle TAGE (critical
//! path) versus the 3-cycle pipelined TAGE. The paper found no accuracy
//! impact and ≈1 % IPC degradation.

use cobra_bench::runner::{run_grid, Job};
use cobra_bench::{pct_delta, reference};
use cobra_core::designs;
use cobra_uarch::CoreConfig;
use cobra_workloads::{spec17, ProgramSpec};

const WORKLOADS: [&str; 5] = ["perlbench", "gcc", "x264", "leela", "xz"];

fn main() {
    println!("SECTION VI-A — TAGE arbitration latency: 2 vs 3 cycles");
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "bench", "IPC@2", "IPC@3", "dIPC", "acc@2", "acc@3", "dAcc"
    );
    let d2 = designs::tage_l_with_latency(2);
    let d3 = designs::tage_l_with_latency(3);
    let specs: Vec<ProgramSpec> = WORKLOADS.iter().map(|w| spec17::spec17(w)).collect();
    // Workload-major pairs: (2-cycle, 3-cycle) per benchmark.
    let jobs: Vec<Job<'_>> = specs
        .iter()
        .flat_map(|spec| {
            [
                Job::new(&d2, CoreConfig::boom_4wide(), spec),
                Job::new(&d3, CoreConfig::boom_4wide(), spec),
            ]
        })
        .collect();
    let grid = run_grid(&jobs);
    let mut ipc_deltas = Vec::new();
    for (i, w) in WORKLOADS.iter().enumerate() {
        let r2 = &grid[2 * i].report;
        let r3 = &grid[2 * i + 1].report;
        ipc_deltas.push(100.0 * (r3.counters.ipc() - r2.counters.ipc()) / r2.counters.ipc());
        println!(
            "{:<11} {:>9.3} {:>9.3} {:>9} {:>8.2}% {:>8.2}% {:>8.2}",
            w,
            r2.counters.ipc(),
            r3.counters.ipc(),
            pct_delta(r3.counters.ipc(), r2.counters.ipc()),
            r2.counters.branch_accuracy(),
            r3.counters.branch_accuracy(),
            r3.counters.branch_accuracy() - r2.counters.branch_accuracy(),
        );
    }
    let mean = ipc_deltas.iter().sum::<f64>() / ipc_deltas.len() as f64;
    println!();
    println!(
        "mean IPC delta of the 3-cycle TAGE: {mean:+.2}%   (paper: ≈ −{:.0}%, \
with no accuracy impact)",
        reference::sec6::TAGE_LATENCY_IPC_LOSS_PCT
    );
    println!("The COBRA interface lets the TAGE latency change in isolation: no");
    println!("composer or topology modifications were needed for this sweep.");
}
