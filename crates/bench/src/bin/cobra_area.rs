//! `cobra-area` — the static storage/area budget oracle (ROADMAP item 1).
//!
//! Rolls a design's per-component SRAM geometry, flop bits, and generated
//! management structures into one budget report, computed from the
//! elaborated design model alone — no pipeline is built and no packet is
//! simulated. The numbers are bit-exact with the runtime accounting used
//! by `table1_storage` and `fig8_area` (both assert this).
//!
//! ```text
//! cobra-area --all                          # every built-in design
//! cobra-area TAGE-L "GTAG3 > BTB2 > BIM2"   # by name or raw topology
//! cobra-area --all --budget 96              # enforce a storage cap (KB)
//! cobra-area --all --format json            # the autotuner's pruning input
//! ```
//!
//! Exit status: 0 when every design fits its budget (or none was given),
//! 1 when at least one exceeds it or fails to elaborate, 2 on a usage
//! error.

use cobra_area::ProcessModel;
use cobra_core::analysis::{AnalysisConfig, DesignModel, ResourceReport};
use cobra_core::designs;
use std::process::ExitCode;

struct Options {
    targets: Vec<String>,
    all: bool,
    json: bool,
    budget_kb: Option<f64>,
    width: u8,
    ghist_bits: u32,
    lhist_entries: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            targets: Vec::new(),
            all: false,
            json: false,
            budget_kb: None,
            width: 8,
            ghist_bits: 64,
            lhist_entries: 256,
        }
    }
}

const USAGE: &str = "usage: cobra-area [OPTIONS] [TARGET...]

Targets are built-in design names (e.g. TAGE-L) or raw topology strings.

Options:
  --all             report every built-in design
  --budget KB       fail (exit 1) when a design's total storage exceeds KB
  --format FMT      human (default) or json
  --width N         fetch width for raw topologies [8]
  --ghist N         global-history bits for raw topologies [64]
  --lhist N         local-history entries for raw topologies [256]
  -h, --help        print this help";

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("`{flag}` needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--all" => o.all = true,
            "--budget" => {
                o.budget_kb = Some(
                    need(&mut it, "--budget")?
                        .parse()
                        .map_err(|_| "`--budget` needs a number (KB)".to_string())?,
                )
            }
            "--format" => match need(&mut it, "--format")?.as_str() {
                "json" => o.json = true,
                "human" => o.json = false,
                other => return Err(format!("unknown format `{other}`")),
            },
            "--width" => {
                o.width = need(&mut it, "--width")?
                    .parse()
                    .map_err(|_| "`--width` needs an integer".to_string())?
            }
            "--ghist" => {
                o.ghist_bits = need(&mut it, "--ghist")?
                    .parse()
                    .map_err(|_| "`--ghist` needs an integer".to_string())?
            }
            "--lhist" => {
                o.lhist_entries = need(&mut it, "--lhist")?
                    .parse()
                    .map_err(|_| "`--lhist` needs an integer".to_string())?
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            target => o.targets.push(target.to_string()),
        }
    }
    if !o.all && o.targets.is_empty() {
        return Err("no targets; pass design names, topology strings, or --all".into());
    }
    Ok(Some(o))
}

fn report_for(target: &str, o: &Options) -> Result<ResourceReport, String> {
    let model = if let Some(d) = designs::by_name(target) {
        DesignModel::build(
            &d.name,
            &d.topology,
            &d.registry,
            o.width,
            d.ghist_bits,
            d.lhist_entries,
        )
    } else {
        let registry = designs::stock_registry();
        DesignModel::build(
            target,
            target,
            &registry,
            o.width,
            o.ghist_bits,
            o.lhist_entries,
        )
    }
    .map_err(|e| e.to_string())?;
    if let Some(d) = model
        .resolution
        .iter()
        .find(|d| d.severity == cobra_core::analysis::Severity::Error)
    {
        return Err(d.to_string());
    }
    let cfg = AnalysisConfig {
        width: o.width,
        ..AnalysisConfig::default()
    };
    let mut report = ResourceReport::from_model(&model, &cfg);
    if let Some(kb) = o.budget_kb {
        report = report.with_budget_kb(kb);
    }
    Ok(report)
}

fn print_human(report: &ResourceReport, process: &ProcessModel) {
    println!("{}: {}", report.design, report.topology);
    let mut area_um2 = 0.0;
    for (label, r) in &report.components {
        let a = process.report_area_um2(r);
        area_um2 += a;
        println!(
            "  {label:<12} {:>10.2} KB  {:>12.0} um^2  ({} SRAM(s), {} flop bits)",
            r.kilobytes(),
            a,
            r.srams.len(),
            r.flop_bits
        );
    }
    let meta_area = process.report_area_um2(&report.management);
    area_um2 += meta_area;
    println!(
        "  {:<12} {:>10.2} KB  {:>12.0} um^2",
        "Management",
        report.management.kilobytes(),
        meta_area
    );
    println!(
        "  {:<12} {:>10.2} KB  {:>12.2} mm^2",
        "Total",
        report.total_kb(),
        area_um2 / 1.0e6
    );
    match (report.budget_kb, report.over_budget_kb()) {
        (Some(kb), Some(over)) => {
            println!(
                "  OVER BUDGET: {:.2} KB > {kb:.2} KB (+{over:.2})",
                report.total_kb()
            )
        }
        (Some(kb), None) => println!("  within budget: {:.2} KB <= {kb:.2} KB", report.total_kb()),
        (None, _) => {}
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cobra-area: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut targets = o.targets.clone();
    if o.all {
        targets.extend(designs::catalog().into_iter().map(|d| d.name));
    }

    let process = ProcessModel::finfet_7nm();
    let mut failed = false;
    let mut json_reports = Vec::new();
    for target in &targets {
        match report_for(target, &o) {
            Ok(report) => {
                if report.over_budget_kb().is_some() {
                    failed = true;
                }
                if o.json {
                    json_reports.push(report.render_json());
                } else {
                    print_human(&report, &process);
                }
            }
            Err(msg) => {
                failed = true;
                if o.json {
                    json_reports.push(format!(
                        "{{\"design\":\"{}\",\"error\":\"{}\"}}",
                        target.replace('\\', "\\\\").replace('"', "\\\""),
                        msg.replace('\\', "\\\\").replace('"', "\\\"")
                    ));
                } else {
                    eprintln!("cobra-area: {target}: {msg}");
                }
            }
        }
    }
    if o.json {
        println!("[{}]", json_reports.join(","));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
