//! `cobra-serve` — a long-running evaluation daemon with a two-tier
//! warm-state cache, plus its load-generating client.
//!
//! ```text
//! cobra-serve                                  # daemon on tcp:127.0.0.1:7app
//! cobra-serve --listen unix:/tmp/cobra.sock    # daemon on a unix socket
//! cobra-serve --listen tcp:0.0.0.0:7040 --threads 8 --cache /var/cobra
//!
//! cobra-serve --bench-client --listen unix:/tmp/cobra.sock
//! #   drive the fig. 10 grid (all designs x SPECint17) through the
//! #   daemon from 2 pipelined connections; report lines on stdout
//! cobra-serve --bench-client --connections 4 --expect-cache hit
//! cobra-serve --bench-client --shutdown        # ... then drain the daemon
//!
//! cobra-serve --direct                         # same grid, no daemon: the
//! #   byte-identical baseline the CI smoke leg diffs served output against
//! ```
//!
//! The wire protocol is specified in `docs/SERVE_PROTOCOL.md`; the
//! environment knobs (`COBRA_SERVE_CACHE`, `COBRA_SERVE_QUEUE`,
//! `COBRA_SERVE_PROGRESS`, `COBRA_SERVE_INSTS_CAP`, and the shared
//! `COBRA_THREADS` / `COBRA_INSTS` / `COBRA_METRICS`) in
//! `docs/CONFIG.md`. CLI flags override the environment.
//!
//! On SIGTERM or SIGINT the daemon drains: it stops admitting, finishes
//! every queued job, flushes each connection, and exits.
//!
//! Exit status: 0 on success, 1 on a runtime failure (connection lost,
//! job rejected, `--expect-cache` mismatch), 2 on a usage error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use cobra_bench::jsonv::{self, Json};
use cobra_bench::serve::client::Client;
use cobra_bench::serve::exec::execute_job;
use cobra_bench::serve::protocol::{self, JobTarget};
use cobra_bench::serve::server::{Listen, ServeConfig, Server};
use cobra_bench::serve::{env_cache_dir, env_insts_cap, env_progress_stride, env_queue_cap};
use cobra_bench::{run_insts, runner, workload_by_name};
use cobra_core::designs;
use cobra_uarch::CoreConfig;
use cobra_workloads::SPEC17_NAMES;

const DEFAULT_LISTEN: &str = "tcp:127.0.0.1:7040";

const USAGE: &str = "usage: cobra-serve [OPTIONS]

Daemon mode (default): accept evaluation jobs over newline-delimited
JSON (docs/SERVE_PROTOCOL.md) and shard them across a worker pool,
caching warm state across jobs.

  --listen EP           tcp:HOST:PORT or unix:PATH [tcp:127.0.0.1:7040]
  --threads N           worker pool size [COBRA_THREADS]
  --queue N             admission-queue bound [COBRA_SERVE_QUEUE, 64]
  --cache DIR           warm-cache root; `off` disables
                        [COBRA_SERVE_CACHE, serve-cache]
  --insts-cap N         largest accepted per-job insts
                        [COBRA_SERVE_INSTS_CAP, 5000000]
  --progress N          progress-event stride in committed insts; 0
                        disables [COBRA_SERVE_PROGRESS, insts/4]

Client modes:
  --bench-client        drive the fig. 10 grid (all designs x SPECint17)
                        through the daemon; canonical report JSON lines
                        on stdout in grid order
  --connections C       client connections to spread the grid over [2]
  --insts N             measured insts per job [COBRA_INSTS, 500000]
  --expect-cache D      exit 1 unless every job reports disposition D
                        (hit, warm, or miss)
  --shutdown            after the sweep (or alone), ask the daemon to
                        drain and exit
  --direct              run the same grid in-process with no daemon and
                        print byte-identical report lines (CI baseline)

  -h, --help            print this help";

struct Options {
    listen: Listen,
    threads: usize,
    queue_cap: usize,
    cache_dir: Option<PathBuf>,
    insts_cap: u64,
    progress: Option<u64>,
    bench_client: bool,
    direct: bool,
    connections: usize,
    insts: u64,
    expect_cache: Option<String>,
    shutdown: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut o = Options {
        listen: Listen::parse(DEFAULT_LISTEN).expect("default listen endpoint parses"),
        threads: runner::threads(),
        queue_cap: env_queue_cap(),
        cache_dir: env_cache_dir(),
        insts_cap: env_insts_cap(),
        progress: env_progress_stride(),
        bench_client: false,
        direct: false,
        connections: 2,
        insts: run_insts(),
        expect_cache: None,
        shutdown: false,
    };
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("`{flag}` needs a value"))
    };
    let uint = |flag: &str, v: String| {
        v.parse::<u64>()
            .map_err(|_| format!("`{flag}` needs an unsigned integer, got `{v}`"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--listen" => o.listen = Listen::parse(&need(&mut it, "--listen")?)?,
            "--threads" => {
                o.threads = uint("--threads", need(&mut it, "--threads")?)?.max(1) as usize
            }
            "--queue" => o.queue_cap = uint("--queue", need(&mut it, "--queue")?)?.max(1) as usize,
            "--cache" => {
                let v = need(&mut it, "--cache")?;
                o.cache_dir = if v == "off" {
                    None
                } else {
                    Some(PathBuf::from(v))
                };
            }
            "--insts-cap" => o.insts_cap = uint("--insts-cap", need(&mut it, "--insts-cap")?)?,
            "--progress" => o.progress = Some(uint("--progress", need(&mut it, "--progress")?)?),
            "--bench-client" => o.bench_client = true,
            "--direct" => o.direct = true,
            "--connections" => {
                o.connections =
                    uint("--connections", need(&mut it, "--connections")?)?.max(1) as usize
            }
            "--insts" => o.insts = uint("--insts", need(&mut it, "--insts")?)?.max(1),
            "--expect-cache" => {
                let v = need(&mut it, "--expect-cache")?;
                match v.as_str() {
                    "hit" | "warm" | "miss" => o.expect_cache = Some(v),
                    other => {
                        return Err(format!(
                            "`--expect-cache` takes hit/warm/miss, got `{other}`"
                        ))
                    }
                }
            }
            "--shutdown" => o.shutdown = true,
            flag => return Err(format!("unknown option `{flag}`")),
        }
    }
    if o.direct && (o.bench_client || o.shutdown) {
        return Err("`--direct` runs without a daemon; drop `--bench-client`/`--shutdown`".into());
    }
    Ok(Some(o))
}

/// The fig. 10 grid in design-major order — the same cell order the
/// batch harness uses, so served and direct outputs line up row for row.
fn grid() -> Vec<(String, String)> {
    let mut cells = Vec::new();
    for d in designs::all() {
        for w in SPEC17_NAMES {
            cells.push((d.name.clone(), (*w).to_string()));
        }
    }
    cells
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cobra-serve: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = if o.direct {
        run_direct(&o)
    } else if o.bench_client || o.shutdown {
        run_client(&o)
    } else {
        run_daemon(o)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cobra-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

// --- daemon ---------------------------------------------------------------

/// Set by the signal handler; only async-signal-safe work happens there.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    // libc is already linked by std; declaring `signal` here avoids an
    // external dependency. Handler work is a single atomic store, which
    // is async-signal-safe; a watcher thread does the actual drain.
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn run_daemon(o: Options) -> Result<(), String> {
    let cfg = ServeConfig {
        listen: o.listen.clone(),
        threads: o.threads,
        queue_cap: o.queue_cap,
        cache_dir: o.cache_dir.clone(),
        insts_cap: o.insts_cap,
        progress_stride: o.progress,
    };
    let server = Server::bind(cfg).map_err(|e| format!("bind failed: {e}"))?;
    let listen_desc = match (&o.listen, server.local_addr()) {
        (Listen::Tcp(_), Some(addr)) => format!("tcp:{addr}"),
        #[cfg(unix)]
        (Listen::Unix(p), _) => format!("unix:{}", p.display()),
        _ => format!("{:?}", o.listen),
    };
    eprintln!(
        "[cobra-serve] listening on {listen_desc} ({} workers, queue {}, cache {})",
        o.threads,
        o.queue_cap,
        o.cache_dir
            .as_ref()
            .map_or("off".to_string(), |p| p.display().to_string())
    );
    install_signal_handlers();
    let drain = server.drain_handle();
    std::thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            eprintln!("[cobra-serve] signal received; draining");
            drain.drain();
            return;
        }
        std::thread::sleep(Duration::from_millis(100));
    });
    server.run();
    Ok(())
}

// --- bench client ---------------------------------------------------------

struct CellOutcome {
    cell: usize,
    report_bytes: String,
    report: cobra_uarch::PerfReport,
    cache: String,
    wall_s: f64,
}

/// Drives `cells` (indices into the grid) through one connection,
/// pipelining every submit before collecting results.
fn drive_connection(
    listen: &Listen,
    grid: &[(String, String)],
    cells: &[usize],
    insts: u64,
) -> Result<Vec<CellOutcome>, String> {
    let mut client = Client::connect(listen).map_err(|e| format!("connect: {e}"))?;
    for &cell in cells {
        let (design, workload) = &grid[cell];
        let line = protocol::submit_line(
            cell as u64,
            &JobTarget::Named(design.clone()),
            workload,
            insts,
        );
        client.send(&line).map_err(|e| format!("send: {e}"))?;
    }
    let mut outcomes = Vec::with_capacity(cells.len());
    while outcomes.len() < cells.len() {
        let Some((line, parsed)) = client
            .recv_until("result", |other_line, other| {
                if other.get("ev").and_then(Json::as_str) == Some("rejected") {
                    eprintln!("[serve-client] rejected: {other_line}");
                }
            })
            .map_err(|e| e.to_string())?
        else {
            return Err(format!(
                "server closed the connection after {} of {} results",
                outcomes.len(),
                cells.len()
            ));
        };
        let cell = parsed
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("result event without an id")? as usize;
        let cache = parsed
            .get("cache")
            .and_then(Json::as_str)
            .ok_or("result event without a cache disposition")?
            .to_string();
        let wall_s = parsed
            .get("wall_s")
            .and_then(Json::as_num)
            .ok_or("result event without wall_s")?;
        let bytes = protocol::report_bytes(&line)
            .ok_or("result event without a trailing report")?
            .to_string();
        let report = protocol::report_from_json(
            parsed
                .get("report")
                .ok_or("result event without a report")?,
        )?;
        outcomes.push(CellOutcome {
            cell,
            report_bytes: bytes,
            report,
            cache,
            wall_s,
        });
    }
    Ok(outcomes)
}

fn run_client(o: &Options) -> Result<(), String> {
    let listen_desc = match &o.listen {
        Listen::Tcp(a) => format!("tcp:{a}"),
        #[cfg(unix)]
        Listen::Unix(p) => format!("unix:{}", p.display()),
    };
    if o.bench_client {
        let grid = grid();
        // Round-robin the grid cells over the connections, then drive
        // every connection from its own thread so submits interleave at
        // the daemon the way real concurrent clients would.
        let assignments: Vec<Vec<usize>> = (0..o.connections)
            .map(|c| (c..grid.len()).step_by(o.connections).collect())
            .collect();
        let started = std::time::Instant::now();
        let outcomes: Vec<Result<Vec<CellOutcome>, String>> =
            runner::parallel_map_on(o.connections, &assignments, |_, cells| {
                drive_connection(&o.listen, &grid, cells, o.insts)
            });
        let wall = started.elapsed();
        let mut by_cell: Vec<Option<CellOutcome>> = (0..grid.len()).map(|_| None).collect();
        for conn in outcomes {
            for c in conn? {
                let slot = c.cell;
                by_cell[slot] = Some(c);
            }
        }
        let mut counts = std::collections::BTreeMap::new();
        let mut metrics_lines = Vec::new();
        let mut mismatched = 0usize;
        for (i, slot) in by_cell.iter().enumerate() {
            let c = slot
                .as_ref()
                .ok_or_else(|| format!("no result for grid cell {i} ({:?})", grid[i]))?;
            println!("{}", c.report_bytes);
            *counts.entry(c.cache.clone()).or_insert(0u64) += 1;
            let job = runner::JobResult {
                report: c.report.clone(),
                wall: Duration::from_secs_f64(c.wall_s),
                trace: None,
                checkpoint: None,
                metrics: None,
                served: Some(listen_desc.clone()),
                cache: Some(c.cache.clone()),
            };
            eprintln!(
                "[serve-client] {} {:<28} {:>7.2}s{}",
                runner::job_id(i),
                format!("{}/{}", grid[i].0, grid[i].1),
                c.wall_s,
                job.provenance_note()
            );
            metrics_lines.push(runner::metrics_record(&runner::job_id(i), &job));
            if o.expect_cache.as_deref().is_some_and(|e| e != c.cache) {
                eprintln!(
                    "[serve-client] {} expected cache={} but got {}",
                    runner::job_id(i),
                    o.expect_cache.as_deref().unwrap_or(""),
                    c.cache
                );
                mismatched += 1;
            }
        }
        let summary: Vec<String> = counts.iter().map(|(k, v)| format!("{k}={v}")).collect();
        eprintln!(
            "[serve-client] {} jobs via {} over {} connection(s) in {:.2}s ({})",
            grid.len(),
            listen_desc,
            o.connections,
            wall.as_secs_f64(),
            summary.join(" ")
        );
        if let Ok(path) = std::env::var("COBRA_METRICS") {
            runner::write_metrics(&path, &metrics_lines)
                .map_err(|e| format!("COBRA_METRICS {path}: {e}"))?;
        }
        if mismatched > 0 {
            return Err(format!(
                "{mismatched} job(s) missed the expected cache disposition"
            ));
        }
    }
    if o.shutdown {
        let mut client = Client::connect(&o.listen).map_err(|e| format!("connect: {e}"))?;
        client
            .send("{\"op\":\"shutdown\"}")
            .map_err(|e| format!("send: {e}"))?;
        // Read until bye or EOF so the daemon has acknowledged the drain.
        while let Some(line) = client.recv().map_err(|e| e.to_string())? {
            if jsonv::parse(&line)
                .ok()
                .and_then(|v| v.get("ev").and_then(Json::as_str).map(str::to_string))
                .as_deref()
                == Some("bye")
            {
                break;
            }
        }
        eprintln!("[serve-client] daemon draining");
    }
    Ok(())
}

// --- direct baseline ------------------------------------------------------

fn run_direct(o: &Options) -> Result<(), String> {
    let grid = grid();
    let lines = runner::parallel_map_on(o.threads, &grid, |_, (design, workload)| {
        let design = designs::by_name(design).expect("grid uses catalog names");
        let spec = workload_by_name(workload).expect("grid uses known workloads");
        let outcome = execute_job(
            &design,
            CoreConfig::boom_4wide(),
            &spec,
            o.insts,
            None,
            None,
        );
        protocol::report_json(&outcome.report)
    });
    for line in lines {
        println!("{line}");
    }
    eprintln!(
        "[serve-direct] {} jobs at {} insts (no daemon, no cache)",
        grid.len(),
        o.insts
    );
    Ok(())
}
