//! Predictor energy (the paper's Section VI-A future-work concern): run
//! each design on a workload and report per-component SRAM access energy.
//!
//! "Predictor energy consumption is expected to be an important concern,
//! as the energy cost of continuously reading predictor SRAMs is
//! significant."

use cobra_area::EnergyModel;
use cobra_bench::run_insts;
use cobra_core::designs;
use cobra_uarch::{Core, CoreConfig};
use cobra_workloads::spec17;

fn main() {
    let model = EnergyModel::finfet_7nm();
    let insts = run_insts();
    println!("PREDICTOR ENERGY — SRAM access energy on gcc ({insts} insts)");
    for design in designs::all() {
        let mut core = Core::new(
            &design,
            CoreConfig::boom_4wide(),
            spec17::spec17("gcc").build(),
        )
        .expect("stock design composes");
        let r = core.run(insts, "gcc");
        println!();
        println!("{}:", design.name);
        let mut total = 0.0;
        for (label, accesses) in core.bpu().accesses_by_component() {
            let nj: f64 = accesses
                .iter()
                .map(|a| model.report_energy_nj(a))
                .sum::<f64>()
                .max(0.0);
            let (reads, writes) = accesses
                .iter()
                .fold((0u64, 0u64), |(r, w), a| (r + a.reads, w + a.writes));
            total += nj;
            println!(
                "  {:<10} {:>12.1} nJ  ({} reads, {} writes)",
                label, nj, reads, writes
            );
        }
        println!(
            "  {:<10} {:>12.1} nJ  ({:.2} nJ/kinst)",
            "TOTAL",
            total,
            total * 1000.0 / r.counters.committed_insts as f64
        );
    }
    println!();
    println!("Observation to check: wide tagged reads (TAGE's seven tables, the");
    println!("BTB's four ways) dominate; every fetch packet reads them all.");
}
