//! Alternative-component designs from the extension library, evaluated
//! like Fig 10: the statistical corrector the paper's TAGE-L deliberately
//! omits ("no statistical corrector"), and a perceptron-based design
//! (Section III-G: perceptrons "may be implemented similarly").

use cobra_bench::runner::{run_grid, Job};
use cobra_core::designs;
use cobra_uarch::CoreConfig;
use cobra_workloads::{spec17, ProgramSpec};

const WORKLOADS: [&str; 5] = ["gcc", "deepsjeng", "leela", "x264", "xz"];

fn main() {
    println!("ABLATION — alternative predictor components (MPKI / IPC)");
    let alt = [
        designs::b2(),
        designs::perceptron(),
        designs::tage_l(),
        designs::tage_sc_l(),
    ];
    print!("{:<11}", "bench");
    for d in &alt {
        print!(" {:>18}", d.name);
    }
    println!();
    let specs: Vec<ProgramSpec> = WORKLOADS.iter().map(|w| spec17::spec17(w)).collect();
    // Workload-major grid: one row of designs per benchmark.
    let jobs: Vec<Job<'_>> = specs
        .iter()
        .flat_map(|spec| {
            alt.iter()
                .map(move |d| Job::new(d, CoreConfig::boom_4wide(), spec))
        })
        .collect();
    let grid = run_grid(&jobs);
    for (i, w) in WORKLOADS.iter().enumerate() {
        print!("{w:<11}");
        for d in 0..alt.len() {
            let r = &grid[i * alt.len() + d].report;
            print!(" {:>10.2}/{:>6.3}", r.counters.mpki(), r.counters.ipc());
        }
        println!();
    }
    println!();
    println!("Reading: the perceptron design (one global-history perceptron over");
    println!("a bimodal base) sits between B2 and TAGE-L; the statistical");
    println!("corrector trims TAGE-L's residual mispredictions on biased-branch");
    println!("workloads — the component the paper lists as the natural next");
    println!("addition to its TAGE-L design.");
}
