//! Section VI-C: the core-optimization experiment — decoding short-forwards
//! ("hammock") branches into set-flag / conditional-execute micro-ops. The
//! paper: CoreMark improves from 4.9 to 6.1 CoreMarks/MHz and branch
//! accuracy from 97 % to 99.1 % on the TAGE-L core.

use cobra_bench::{pct_delta, reference, run_one};
use cobra_core::designs;
use cobra_uarch::CoreConfig;
use cobra_workloads::kernels;

fn main() {
    println!("SECTION VI-C — short-forwards-branch predication (CoreMark kernel)");
    println!(
        "{:<12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "design", "IPC base", "IPC +SFB", "dIPC", "acc base", "acc +SFB", "MPKIbase"
    );
    for design in designs::all() {
        let base = run_one(&design, CoreConfig::boom_4wide(), &kernels::coremark(false));
        let sfb = run_one(&design, CoreConfig::boom_4wide(), &kernels::coremark(true));
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>9} {:>8.2}% {:>8.2}% {:>9.2}",
            design.name,
            base.counters.ipc(),
            sfb.counters.ipc(),
            pct_delta(sfb.counters.ipc(), base.counters.ipc()),
            base.counters.branch_accuracy(),
            sfb.counters.branch_accuracy(),
            base.counters.mpki(),
        );
    }
    let (a0, a1) = reference::sec6::SFB_ACCURACY;
    let (c0, c1) = reference::sec6::SFB_COREMARKS_PER_MHZ;
    println!();
    println!(
        "paper (TAGE-L): {c0} → {c1} CoreMarks/MHz ({}), accuracy {a0}% → {a1}%",
        cobra_bench::pct_delta(c1, c0)
    );
    println!("Both paper effects should reproduce: predicated hammocks can no");
    println!("longer mispredict, and the predictor stops spending entries on");
    println!("them — improving accuracy for every design.");
}
