//! Section VI-C: the core-optimization experiment — decoding short-forwards
//! ("hammock") branches into set-flag / conditional-execute micro-ops. The
//! paper: CoreMark improves from 4.9 to 6.1 CoreMarks/MHz and branch
//! accuracy from 97 % to 99.1 % on the TAGE-L core.

use cobra_bench::runner::{run_grid, Job};
use cobra_bench::{pct_delta, reference};
use cobra_core::designs;
use cobra_uarch::CoreConfig;
use cobra_workloads::kernels;

fn main() {
    println!("SECTION VI-C — short-forwards-branch predication (CoreMark kernel)");
    println!(
        "{:<12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "design", "IPC base", "IPC +SFB", "dIPC", "acc base", "acc +SFB", "MPKIbase"
    );
    let all_designs = designs::all();
    let base_spec = kernels::coremark(false);
    let sfb_spec = kernels::coremark(true);
    // Design-major pairs: (base, +SFB) per design.
    let jobs: Vec<Job<'_>> = all_designs
        .iter()
        .flat_map(|d| {
            [
                Job::new(d, CoreConfig::boom_4wide(), &base_spec),
                Job::new(d, CoreConfig::boom_4wide(), &sfb_spec),
            ]
        })
        .collect();
    let grid = run_grid(&jobs);
    for (i, design) in all_designs.iter().enumerate() {
        let base = &grid[2 * i].report;
        let sfb = &grid[2 * i + 1].report;
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>9} {:>8.2}% {:>8.2}% {:>9.2}",
            design.name,
            base.counters.ipc(),
            sfb.counters.ipc(),
            pct_delta(sfb.counters.ipc(), base.counters.ipc()),
            base.counters.branch_accuracy(),
            sfb.counters.branch_accuracy(),
            base.counters.mpki(),
        );
    }
    let (a0, a1) = reference::sec6::SFB_ACCURACY;
    let (c0, c1) = reference::sec6::SFB_COREMARKS_PER_MHZ;
    println!();
    println!(
        "paper (TAGE-L): {c0} → {c1} CoreMarks/MHz ({}), accuracy {a0}% → {a1}%",
        cobra_bench::pct_delta(c1, c0)
    );
    println!("Both paper effects should reproduce: predicated hammocks can no");
    println!("longer mispredict, and the predictor stops spending entries on");
    println!("them — improving accuracy for every design.");
}
