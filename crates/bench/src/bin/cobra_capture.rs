//! `cobra-capture` — record workloads to `.cbt` branch-trace files.
//!
//! Captures the synthetic SPECint17 profiles (or named kernels) into the
//! COBRA Binary Trace format (`docs/TRACE_FORMAT.md`), sized so that the
//! grid binaries can replay them via `COBRA_TRACE_DIR` with byte-identical
//! `PerfReport`s:
//!
//! ```text
//! cobra-capture gcc                        # capture one profile to ./traces
//! cobra-capture gcc xz --out /tmp/t        # several, to a chosen directory
//! cobra-capture --all                      # the whole SPECint17 suite
//! cobra-capture --all --insts 100000       # sized for a 100k-inst run
//! cobra-capture gcc --verify               # re-open, validate, and replay-
//! #                                          check each file after writing
//! cobra-capture --list                     # capturable workload names
//! ```
//!
//! Each trace records `capture_len(insts)` instructions — warm-up plus the
//! measured region plus fetch-ahead slack (see
//! [`cobra_bench::capture_len`]) — so a replayed run never starves the
//! frontend before the measured region completes. `--insts` defaults to
//! the `COBRA_INSTS` environment variable (500 000), matching what the
//! grid binaries will ask for at replay time.
//!
//! Exit status: 0 on success, 1 on a capture or verify failure, 2 on a
//! usage error.

use cobra_bench::{capture_len, capture_workload, run_insts, workload_by_name, KERNEL_NAMES};
use cobra_uarch::InstructionStream;
use cobra_workloads::{ProgramSpec, TraceProgram, SPEC17_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: cobra-capture [OPTIONS] WORKLOAD...

Captures each named workload to `<out>/<workload>.cbt`, sized for replay
of a measured run of `--insts` instructions (plus warm-up and slack).

Options:
  --all            capture every SPECint17 profile
  --out DIR        output directory [traces]
  --insts N        measured instructions to size for [COBRA_INSTS or 500000]
  --verify         re-open each file, run the full integrity pass, and
                   replay it against a fresh stream record-by-record
  --list           print capturable workload names and exit
  -h, --help       print this help";

struct Options {
    workloads: Vec<String>,
    out: PathBuf,
    insts: u64,
    verify: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut workloads: Vec<String> = Vec::new();
    let mut all = false;
    let mut out = PathBuf::from("traces");
    let mut insts = None;
    let mut verify = false;
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("`{flag}` needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => all = true,
            "--out" => out = PathBuf::from(need(&mut it, "--out")?),
            "--insts" => {
                let v = need(&mut it, "--insts")?;
                insts = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("`--insts {v}` is not a number"))?
                        .max(1),
                );
            }
            "--verify" => verify = true,
            "--list" => {
                println!("spec17: {}", SPEC17_NAMES.join(" "));
                println!("kernels: {}", KERNEL_NAMES.join(" "));
                return Ok(None);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => workloads.push(other.to_string()),
        }
    }
    if all {
        for n in SPEC17_NAMES {
            if !workloads.iter().any(|w| w.eq_ignore_ascii_case(n)) {
                workloads.push((*n).to_string());
            }
        }
    }
    if workloads.is_empty() {
        return Err("no workloads named (try `--all` or `--list`)".into());
    }
    Ok(Some(Options {
        workloads,
        out,
        insts: insts.unwrap_or_else(run_insts),
        verify,
    }))
}

/// Re-opens `path` (full integrity pass included) and checks the replayed
/// stream record-for-record against a freshly generated one.
fn verify_capture(spec: &ProgramSpec, path: &std::path::Path) -> Result<u64, String> {
    let mut replay = TraceProgram::open(path).map_err(|e| format!("re-open failed: {e}"))?;
    if replay.name() != spec.name {
        return Err(format!(
            "name mismatch: trace says {:?}, expected {:?}",
            replay.name(),
            spec.name
        ));
    }
    let mut direct = spec.build();
    let mut n = 0u64;
    while let Some(got) = replay.next_inst() {
        let want = direct.next_inst();
        if Some(got) != want {
            return Err(format!(
                "record {n} diverges: trace {got:?}, stream {want:?}"
            ));
        }
        n += 1;
    }
    Ok(n)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cobra-capture: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut specs = Vec::new();
    for name in &opts.workloads {
        match workload_by_name(name) {
            Some(s) => specs.push(s),
            None => {
                eprintln!("cobra-capture: unknown workload `{name}` (try `--list`)");
                return ExitCode::from(2);
            }
        }
    }

    let records_per_trace = capture_len(opts.insts);
    println!(
        "capturing {} workload(s) to {} ({} records each, sized for {}-inst runs)",
        specs.len(),
        opts.out.display(),
        records_per_trace,
        opts.insts
    );

    let mut failed = false;
    for spec in &specs {
        let t0 = Instant::now();
        match capture_workload(spec, opts.insts, &opts.out) {
            Ok((summary, path)) => {
                let wall = t0.elapsed().as_secs_f64();
                let mips = summary.records as f64 / wall / 1e6;
                println!(
                    "  {:<14} {:>9} records  {:>9} bytes  {:.2} B/inst  {:>6.2}s  {:>6.1} Minst/s  -> {}",
                    spec.name,
                    summary.records,
                    summary.bytes,
                    summary.bytes as f64 / summary.records.max(1) as f64,
                    wall,
                    mips,
                    path.display()
                );
                if opts.verify {
                    match verify_capture(spec, &path) {
                        Ok(n) => println!("  {:<14} verified: {n} records replay identically", ""),
                        Err(e) => {
                            eprintln!("cobra-capture: verify {}: {e}", path.display());
                            failed = true;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("cobra-capture: {}: {e}", spec.name);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
