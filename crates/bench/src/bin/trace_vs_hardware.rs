//! The paper's motivating claim (Sections I–II): trace-based software
//! simulators "cannot model microarchitectural behaviors like speculation
//! and superscalar execution" and show "substantial modelling error" for
//! branch prediction accuracy.
//!
//! This harness runs each design on each SPECint17 profile three ways —
//! through the idealized trace-driven evaluator ([`TraceSim`]) over the
//! live generator, through the same evaluator over a *captured and
//! replayed* `.cbt` file ([`TraceProgram`]), and through the full
//! speculating core — and reports the modelling error a trace methodology
//! would have made. The replay column doubles as an end-to-end fidelity
//! check of the CBT capture path: it must equal the direct trace column
//! exactly, because capture preserves the instruction stream bit-for-bit.

use cobra_bench::runner::parallel_map;
use cobra_bench::{capture_workload, run_insts, run_one};
use cobra_core::composer::Design;
use cobra_core::designs;
use cobra_uarch::{CoreConfig, TraceSim};
use cobra_workloads::{spec17, TraceProgram};

const WORKLOADS: [&str; 5] = ["perlbench", "gcc", "leela", "x264", "xz"];

fn main() {
    println!("TRACE-DRIVEN vs HARDWARE-IN-THE-LOOP accuracy (cond branches)");
    println!(
        "{:<11} {:<11} {:>10} {:>10} {:>10} {:>10}",
        "bench", "design", "trace %", "replay %", "core %", "error"
    );
    let insts = run_insts();
    let all_designs = designs::all();
    // Capture each workload once up front; every design's replay arm
    // re-reads the same file, exactly as a COBRA_TRACE_DIR grid would.
    let capture_dir = std::env::temp_dir().join(format!("cobra-tvh-{}", std::process::id()));
    for w in WORKLOADS {
        let spec = spec17::spec17(w);
        capture_workload(&spec, insts, &capture_dir)
            .unwrap_or_else(|e| panic!("capturing {w}: {e}"));
    }
    // Each cell needs a trace run *and* a core run; both are independent
    // per (bench, design) pair, so fan the pairs out together.
    let pairs: Vec<(&str, &Design)> = WORKLOADS
        .iter()
        .flat_map(|w| all_designs.iter().map(move |d| (*w, d)))
        .collect();
    let cells = parallel_map(&pairs, |_, &(w, design)| {
        let spec = spec17::spec17(w);
        // Trace-driven: perfect in-order history, no speculation.
        let mut trace = TraceSim::new(design).expect("composes");
        let mut stream = spec.build();
        // Same warm-up discipline as the core runs.
        trace.run(&mut stream, insts * 2 / 5);
        let mut sim = TraceSim::new(design).expect("composes");
        let warm = {
            // Re-warm a fresh simulator on the same prefix so the
            // measured region matches the hardware run.
            let mut s = spec.build();
            sim.run(&mut s, insts * 2 / 5);
            let before = *sim.stats();
            let after = sim.run(&mut s, insts);
            (before, after)
        };
        let trace_acc = {
            let (before, after) = warm;
            let cb = after.cond_branches - before.cond_branches;
            let cm = after.cond_mispredicts - before.cond_mispredicts;
            if cb == 0 {
                100.0
            } else {
                100.0 * (1.0 - cm as f64 / cb as f64)
            }
        };
        // Replayed-trace arm: the same evaluator, fed from the captured
        // `.cbt` file instead of the live generator.
        let replay_acc = {
            let path = capture_dir.join(format!("{w}.cbt"));
            let mut program =
                TraceProgram::open(&path).unwrap_or_else(|e| panic!("replaying {w}: {e}"));
            let mut sim = TraceSim::new(design).expect("composes");
            sim.run(&mut program, insts * 2 / 5);
            let before = *sim.stats();
            let after = sim.run(&mut program, insts);
            let cb = after.cond_branches - before.cond_branches;
            let cm = after.cond_mispredicts - before.cond_mispredicts;
            if cb == 0 {
                100.0
            } else {
                100.0 * (1.0 - cm as f64 / cb as f64)
            }
        };
        // Hardware-in-the-loop.
        let hw = run_one(design, CoreConfig::boom_4wide(), &spec);
        (trace_acc, replay_acc, hw.counters.branch_accuracy())
    });
    let mut worst: f64 = 0.0;
    let mut replay_diverged = false;
    for (&(w, design), &(trace_acc, replay_acc, hw_acc)) in pairs.iter().zip(&cells) {
        let err = trace_acc - hw_acc;
        worst = worst.max(err.abs());
        if replay_acc != trace_acc {
            replay_diverged = true;
        }
        println!(
            "{:<11} {:<11} {:>9.2}% {:>9.2}% {:>9.2}% {:>+9.2}",
            w, design.name, trace_acc, replay_acc, hw_acc, err
        );
    }
    let _ = std::fs::remove_dir_all(&capture_dir);
    if replay_diverged {
        println!();
        println!("WARNING: replayed-trace accuracy diverged from the direct trace");
        println!("run — the .cbt capture path is not stream-identical.");
    }
    println!();
    println!("Positive error = the trace model is optimistic (it misses wrong-path");
    println!("pollution, speculative-history noise, and repair effects). Worst");
    println!("absolute modelling error observed: {worst:.2} accuracy points —");
    println!("the gap COBRA's hardware-guided methodology exists to close.");
}
