//! The paper's motivating claim (Sections I–II): trace-based software
//! simulators "cannot model microarchitectural behaviors like speculation
//! and superscalar execution" and show "substantial modelling error" for
//! branch prediction accuracy.
//!
//! This harness runs each design on each SPECint17 profile twice — once
//! through the idealized trace-driven evaluator ([`TraceSim`]) and once
//! through the full speculating core — and reports the modelling error a
//! trace methodology would have made.

use cobra_bench::runner::parallel_map;
use cobra_bench::{run_insts, run_one};
use cobra_core::composer::Design;
use cobra_core::designs;
use cobra_uarch::{CoreConfig, TraceSim};
use cobra_workloads::spec17;

const WORKLOADS: [&str; 5] = ["perlbench", "gcc", "leela", "x264", "xz"];

fn main() {
    println!("TRACE-DRIVEN vs HARDWARE-IN-THE-LOOP accuracy (cond branches)");
    println!(
        "{:<11} {:<11} {:>10} {:>10} {:>10}",
        "bench", "design", "trace %", "core %", "error"
    );
    let insts = run_insts();
    let all_designs = designs::all();
    // Each cell needs a trace run *and* a core run; both are independent
    // per (bench, design) pair, so fan the pairs out together.
    let pairs: Vec<(&str, &Design)> = WORKLOADS
        .iter()
        .flat_map(|w| all_designs.iter().map(move |d| (*w, d)))
        .collect();
    let cells = parallel_map(&pairs, |_, &(w, design)| {
        let spec = spec17::spec17(w);
        // Trace-driven: perfect in-order history, no speculation.
        let mut trace = TraceSim::new(design).expect("composes");
        let mut stream = spec.build();
        // Same warm-up discipline as the core runs.
        trace.run(&mut stream, insts * 2 / 5);
        let mut sim = TraceSim::new(design).expect("composes");
        let warm = {
            // Re-warm a fresh simulator on the same prefix so the
            // measured region matches the hardware run.
            let mut s = spec.build();
            sim.run(&mut s, insts * 2 / 5);
            let before = *sim.stats();
            let after = sim.run(&mut s, insts);
            (before, after)
        };
        let trace_acc = {
            let (before, after) = warm;
            let cb = after.cond_branches - before.cond_branches;
            let cm = after.cond_mispredicts - before.cond_mispredicts;
            if cb == 0 {
                100.0
            } else {
                100.0 * (1.0 - cm as f64 / cb as f64)
            }
        };
        // Hardware-in-the-loop.
        let hw = run_one(design, CoreConfig::boom_4wide(), &spec);
        (trace_acc, hw.counters.branch_accuracy())
    });
    let mut worst: f64 = 0.0;
    for (&(w, design), &(trace_acc, hw_acc)) in pairs.iter().zip(&cells) {
        let err = trace_acc - hw_acc;
        worst = worst.max(err.abs());
        println!(
            "{:<11} {:<11} {:>9.2}% {:>9.2}% {:>+9.2}",
            w, design.name, trace_acc, hw_acc, err
        );
    }
    println!();
    println!("Positive error = the trace model is optimistic (it misses wrong-path");
    println!("pollution, speculative-history noise, and repair effects). Worst");
    println!("absolute modelling error observed: {worst:.2} accuracy points —");
    println!("the gap COBRA's hardware-guided methodology exists to close.");
}
