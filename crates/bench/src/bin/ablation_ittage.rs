//! Extension ablation: an ITTAGE indirect-target predictor on top of
//! TAGE-L. The stock designs predict indirect targets only through the
//! BTB's last-target entry; interpreter- and dispatch-heavy workloads
//! (perlbench, omnetpp) pay for that in target mispredictions.

use cobra_bench::pct_delta;
use cobra_bench::runner::{run_grid, Job};
use cobra_core::designs;
use cobra_uarch::CoreConfig;
use cobra_workloads::{spec17, ProgramSpec};

const WORKLOADS: [&str; 4] = ["perlbench", "omnetpp", "xalancbmk", "gcc"];

fn main() {
    println!("ABLATION — ITTAGE indirect-target prediction over TAGE-L");
    println!(
        "{:<11} {:>10} {:>10} {:>9} {:>11} {:>11}",
        "bench", "MPKI base", "MPKI +IT", "dMPKI", "tgtMiss/ki", "tgtMiss+IT"
    );
    let d_base = designs::tage_l();
    let d_it = designs::tage_l_it();
    let specs: Vec<ProgramSpec> = WORKLOADS.iter().map(|w| spec17::spec17(w)).collect();
    // Workload-major pairs: (base, +ITTAGE) per benchmark.
    let jobs: Vec<Job<'_>> = specs
        .iter()
        .flat_map(|spec| {
            [
                Job::new(&d_base, CoreConfig::boom_4wide(), spec),
                Job::new(&d_it, CoreConfig::boom_4wide(), spec),
            ]
        })
        .collect();
    let grid = run_grid(&jobs);
    for (i, w) in WORKLOADS.iter().enumerate() {
        let base = &grid[2 * i].report;
        let it = &grid[2 * i + 1].report;
        let tm = |r: &cobra_uarch::PerfReport| {
            r.counters.target_mispredicts as f64 * 1000.0 / r.counters.committed_insts as f64
        };
        println!(
            "{:<11} {:>10.2} {:>10.2} {:>9} {:>11.2} {:>11.2}",
            w,
            base.counters.mpki(),
            it.counters.mpki(),
            pct_delta(it.counters.mpki(), base.counters.mpki()),
            tm(base),
            tm(it),
        );
    }
    println!();
    println!("Expectation: indirect-heavy workloads lose a large share of their");
    println!("target misses; branch-direction accuracy is untouched.");
}
