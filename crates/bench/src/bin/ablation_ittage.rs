//! Extension ablation: an ITTAGE indirect-target predictor on top of
//! TAGE-L. The stock designs predict indirect targets only through the
//! BTB's last-target entry; interpreter- and dispatch-heavy workloads
//! (perlbench, omnetpp) pay for that in target mispredictions.

use cobra_bench::{pct_delta, run_one};
use cobra_core::designs;
use cobra_uarch::CoreConfig;
use cobra_workloads::spec17;

fn main() {
    println!("ABLATION — ITTAGE indirect-target prediction over TAGE-L");
    println!(
        "{:<11} {:>10} {:>10} {:>9} {:>11} {:>11}",
        "bench", "MPKI base", "MPKI +IT", "dMPKI", "tgtMiss/ki", "tgtMiss+IT"
    );
    for w in ["perlbench", "omnetpp", "xalancbmk", "gcc"] {
        let spec = spec17::spec17(w);
        let base = run_one(&designs::tage_l(), CoreConfig::boom_4wide(), &spec);
        let it = run_one(&designs::tage_l_it(), CoreConfig::boom_4wide(), &spec);
        let tm = |r: &cobra_uarch::PerfReport| {
            r.counters.target_mispredicts as f64 * 1000.0 / r.counters.committed_insts as f64
        };
        println!(
            "{:<11} {:>10.2} {:>10.2} {:>9} {:>11.2} {:>11.2}",
            w,
            base.counters.mpki(),
            it.counters.mpki(),
            pct_delta(it.counters.mpki(), base.counters.mpki()),
            tm(&base),
            tm(&it),
        );
    }
    println!();
    println!("Expectation: indirect-heavy workloads lose a large share of their");
    println!("target misses; branch-direction accuracy is untouched.");
}
