//! Section VI-B: speculative-execution experiment — repairing the global
//! history with versus without replaying the fetches formed from the
//! misspeculated history. The paper: replay improved mean IPC 15 % and cut
//! mispredicts 25 %, but cost 3 % IPC on Dhrystone.

use cobra_bench::runner::{run_grid, Job};
use cobra_bench::{pct_delta, reference};
use cobra_core::composer::GhistRepairMode;
use cobra_core::designs;
use cobra_uarch::CoreConfig;
use cobra_workloads::{kernels, spec17, ProgramSpec};

fn main() {
    println!("SECTION VI-B — global-history repair: SnapshotOnly vs ReplayFetch");
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "bench", "IPCsnap", "IPCreplay", "dIPC", "missSnap", "missReplay", "dMiss"
    );
    let design = designs::tage_l();
    let snap_cfg = CoreConfig::boom_4wide().with_repair_mode(GhistRepairMode::SnapshotOnly);
    let replay_cfg = CoreConfig::boom_4wide().with_repair_mode(GhistRepairMode::ReplayFetch);
    // SPEC benchmarks plus Dhrystone (the replay-cost case), each as a
    // (SnapshotOnly, ReplayFetch) pair.
    let mut specs: Vec<ProgramSpec> = spec17::SPEC17_NAMES
        .iter()
        .map(|w| spec17::spec17(w))
        .collect();
    specs.push(kernels::dhrystone());
    let jobs: Vec<Job<'_>> = specs
        .iter()
        .flat_map(|spec| {
            [
                Job::new(&design, snap_cfg, spec),
                Job::new(&design, replay_cfg, spec),
            ]
        })
        .collect();
    let grid = run_grid(&jobs);

    let mut ipc_gain = Vec::new();
    let mut miss_red = Vec::new();
    for (i, w) in spec17::SPEC17_NAMES.iter().enumerate() {
        let snap = &grid[2 * i].report;
        let replay = &grid[2 * i + 1].report;
        let (si, ri) = (snap.counters.ipc(), replay.counters.ipc());
        let (sm, rm) = (snap.counters.mpki(), replay.counters.mpki());
        ipc_gain.push(100.0 * (ri - si) / si);
        if sm > 0.0 {
            miss_red.push(100.0 * (sm - rm) / sm);
        }
        println!(
            "{:<11} {:>9.3} {:>9.3} {:>9} {:>10.2} {:>10.2} {:>9}",
            w,
            si,
            ri,
            pct_delta(ri, si),
            sm,
            rm,
            pct_delta(rm, sm),
        );
    }
    let mean_gain = ipc_gain.iter().sum::<f64>() / ipc_gain.len() as f64;
    let mean_red = miss_red.iter().sum::<f64>() / miss_red.len().max(1) as f64;

    // Dhrystone: the replay *cost* case (the grid's final pair).
    let snap = &grid[grid.len() - 2].report;
    let replay = &grid[grid.len() - 1].report;
    println!();
    println!(
        "mean IPC gain from replay: {mean_gain:+.1}%   (paper: +{:.0}%)",
        reference::sec6::REPLAY_IPC_GAIN_PCT
    );
    println!(
        "mean branch-miss reduction: {mean_red:+.1}%   (paper: −{:.0}% mispredict rate)",
        reference::sec6::REPLAY_MISPREDICT_REDUCTION_PCT
    );
    println!(
        "Dhrystone IPC with replay: {}   (paper: −{:.0}% — short-loop code pays \
the replay bubbles)",
        pct_delta(replay.counters.ipc(), snap.counters.ipc()),
        reference::sec6::REPLAY_DHRYSTONE_IPC_LOSS_PCT
    );
    println!(
        "Dhrystone replays/kinst: {:.2}",
        replay.counters.history_replays as f64 * 1000.0 / replay.counters.committed_insts as f64
    );
}
