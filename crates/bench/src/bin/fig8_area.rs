//! Fig 8: area utilization of the three predictor pipelines, broken down
//! across sub-components plus the "Meta" management structures.
//!
//! The per-component storage feeding the area model is the runtime
//! accounting; the `cobra-area` static resource model is asserted
//! bit-exact against it before anything is charged, so Fig 8 and the
//! budget oracle always agree.

use cobra_area::{AreaBreakdown, ProcessModel};
use cobra_bench::bar;
use cobra_core::analysis::{AnalysisConfig, DesignModel, ResourceReport};
use cobra_core::composer::{BpuConfig, BranchPredictorUnit};
use cobra_core::designs;

fn main() {
    let model = ProcessModel::finfet_7nm();
    println!("FIG 8 — Predictor area by sub-component (FinFET-class model)");
    let mut totals = Vec::new();
    for design in designs::all() {
        let bpu = BranchPredictorUnit::build(&design, BpuConfig::default())
            .expect("stock design composes");
        let comps = bpu.storage_by_component();
        let dm = DesignModel::build(
            &design.name,
            &design.topology,
            &design.registry,
            BpuConfig::default().fetch_width,
            design.ghist_bits,
            design.lhist_entries,
        )
        .expect("stock design elaborates");
        let resource = ResourceReport::from_model(&dm, &AnalysisConfig::default());
        assert_eq!(
            comps
                .iter()
                .map(|(l, r)| (l.clone(), r.total_bits()))
                .collect::<Vec<_>>(),
            resource
                .components
                .iter()
                .map(|(l, r)| (l.clone(), r.total_bits()))
                .collect::<Vec<_>>(),
            "{}: static resource model diverged from runtime storage",
            design.name
        );
        let mut breakdown =
            AreaBreakdown::from_reports(&model, comps.iter().map(|(l, r)| (l.clone(), r)));
        let meta = bpu.meta_storage();
        assert_eq!(
            meta.total_bits(),
            resource.management.total_bits(),
            "{}: static management storage diverged",
            design.name
        );
        breakdown.push("Meta", model.report_area_um2(&meta));
        let total = breakdown.total_um2();
        println!();
        println!("{} — total {:.3} mm²", design.name, breakdown.total_mm2());
        for item in &breakdown.items {
            println!(
                "  {:<10} {:>9.0} µm² {:>5.1}%  {}",
                item.label,
                item.area_um2,
                100.0 * item.area_um2 / total,
                bar(item.area_um2 / total, 40)
            );
        }
        totals.push((design.name.clone(), total));
    }
    println!();
    println!("Paper observations to check: tagged sub-components (TAGE tables,");
    println!("BTB) are relatively costly; management structures (Meta) incur a");
    println!("non-trivial share, largest for the Tournament design's local");
    println!("history provider; TAGE-L is the largest design overall.");
    for (name, t) in &totals {
        println!("  {:<12} {:>9.0} µm²", name, t);
    }
}
