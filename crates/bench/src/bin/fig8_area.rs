//! Fig 8: area utilization of the three predictor pipelines, broken down
//! across sub-components plus the "Meta" management structures.

use cobra_area::{AreaBreakdown, ProcessModel};
use cobra_bench::bar;
use cobra_core::composer::{BpuConfig, BranchPredictorUnit};
use cobra_core::designs;

fn main() {
    let model = ProcessModel::finfet_7nm();
    println!("FIG 8 — Predictor area by sub-component (FinFET-class model)");
    let mut totals = Vec::new();
    for design in designs::all() {
        let bpu = BranchPredictorUnit::build(&design, BpuConfig::default())
            .expect("stock design composes");
        let comps = bpu.storage_by_component();
        let mut breakdown =
            AreaBreakdown::from_reports(&model, comps.iter().map(|(l, r)| (l.clone(), r)));
        let meta = bpu.meta_storage();
        breakdown.push("Meta", model.report_area_um2(&meta));
        let total = breakdown.total_um2();
        println!();
        println!("{} — total {:.3} mm²", design.name, breakdown.total_mm2());
        for item in &breakdown.items {
            println!(
                "  {:<10} {:>9.0} µm² {:>5.1}%  {}",
                item.label,
                item.area_um2,
                100.0 * item.area_um2 / total,
                bar(item.area_um2 / total, 40)
            );
        }
        totals.push((design.name.clone(), total));
    }
    println!();
    println!("Paper observations to check: tagged sub-components (TAGE tables,");
    println!("BTB) are relatively costly; management structures (Meta) incur a");
    println!("non-trivial share, largest for the Tournament design's local");
    println!("history provider; TAGE-L is the largest design overall.");
    for (name, t) in &totals {
        println!("  {:<12} {:>9.0} µm²", name, t);
    }
}
