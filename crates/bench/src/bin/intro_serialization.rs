//! Section I claim: "serializing the fetch unit behind branch predictions
//! in a 4-wide fetch BOOM core decreased IPC by 15 % in the Dhrystone
//! synthetic benchmark".

use cobra_bench::{pct_delta, reference, run_one};
use cobra_core::designs;
use cobra_uarch::CoreConfig;
use cobra_workloads::kernels;

fn main() {
    println!("SECTION I — superscalar vs serialized branch prediction (Dhrystone)");
    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "design", "IPC (superscalar)", "IPC (serialized)", "delta"
    );
    for design in designs::all() {
        let spec = kernels::dhrystone();
        let base = run_one(&design, CoreConfig::boom_4wide(), &spec);
        let mut cfg = CoreConfig::boom_4wide();
        cfg.serialize_branches = true;
        let ser = run_one(&design, cfg, &spec);
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>10}",
            design.name,
            base.counters.ipc(),
            ser.counters.ipc(),
            pct_delta(ser.counters.ipc(), base.counters.ipc()),
        );
    }
    println!();
    println!(
        "paper: −{:.0}% IPC on Dhrystone for the 4-wide core",
        reference::sec6::SERIALIZATION_IPC_LOSS_PCT
    );
}
