//! `cobra-lint` — static analysis of predictor topologies.
//!
//! Runs the `cobra_core::analysis` passes over built-in designs or raw
//! topology strings, without simulating:
//!
//! ```text
//! cobra-lint --all                          # lint every built-in design
//! cobra-lint TAGE-L Tournament              # lint by design name
//! cobra-lint "UBTB1 > BIM2"                 # lint a raw topology
//! cobra-lint --all --format json            # machine-readable reports
//! cobra-lint --all --format sarif           # GitHub code-scanning output
//! cobra-lint --all --plan                   # + plan-soundness verifier
//! cobra-lint --all --deny warnings          # CI mode: warnings fail
//! cobra-lint --list-codes                   # the diagnostic code table
//! ```
//!
//! Raw topologies resolve against the stock component registry
//! ([`cobra_core::designs::stock_registry`]); built-in designs resolve
//! against their own registries and are cross-checked against the
//! storage reference figures in [`cobra_bench::reference`].
//!
//! `--plan` compiles each target's pipeline and cross-checks the lowered
//! execution plan against the elaborated design (the `P0101`–`P0501`
//! verifier), appending any finding to the report.
//!
//! Exit status: 0 when no denied diagnostic fired, 1 when at least one
//! did, 2 on a usage error.

use cobra_bench::reference;
use cobra_core::analysis::{self, AnalysisConfig, DiagCode, Severity};
use cobra_core::designs;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Options {
    targets: Vec<String>,
    all: bool,
    format: Format,
    plan: bool,
    deny_warnings: bool,
    deny: Vec<DiagCode>,
    allow: Vec<DiagCode>,
    width: u8,
    ghist_bits: u32,
    lhist_entries: u64,
    meta_budget_bits: u32,
}

impl Default for Options {
    fn default() -> Self {
        let base = AnalysisConfig::default();
        Self {
            targets: Vec::new(),
            all: false,
            format: Format::Human,
            plan: false,
            deny_warnings: false,
            deny: Vec::new(),
            allow: Vec::new(),
            width: base.width,
            ghist_bits: 64,
            lhist_entries: 256,
            meta_budget_bits: base.meta_budget_bits,
        }
    }
}

const USAGE: &str = "usage: cobra-lint [OPTIONS] [TARGET...]

Targets are built-in design names (e.g. TAGE-L) or raw topology strings
(e.g. \"LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1\").

Options:
  --all               lint every built-in design
  --format FMT        human (default), json, or sarif
  --plan              also run the plan-soundness verifier (P-codes)
  --deny warnings     treat warnings as errors (exit 1)
  --deny CODE         treat one code (e.g. C0501) as an error
  --allow CODE        demote one warning code to a note
  --width N           fetch width for raw topologies [8]
  --ghist N           global-history bits for raw topologies [64]
  --lhist N           local-history entries for raw topologies [256]
  --meta-budget N     history-file metadata budget in bits [256]
  --list-codes        print the diagnostic code table and exit
  -h, --help          print this help";

fn parse_code(s: &str) -> Result<DiagCode, String> {
    DiagCode::from_code(s).ok_or_else(|| format!("unknown diagnostic code `{s}`"))
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("`{flag}` needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list-codes" => {
                for c in DiagCode::all() {
                    println!(
                        "{}  {:7}  {}",
                        c.code(),
                        c.default_severity().name(),
                        c.summary()
                    );
                }
                return Ok(None);
            }
            "--all" => o.all = true,
            "--plan" => o.plan = true,
            "--format" => match need(&mut it, "--format")?.as_str() {
                "json" => o.format = Format::Json,
                "human" => o.format = Format::Human,
                "sarif" => o.format = Format::Sarif,
                other => return Err(format!("unknown format `{other}`")),
            },
            "--deny" => {
                let v = need(&mut it, "--deny")?;
                if v == "warnings" {
                    o.deny_warnings = true;
                } else {
                    o.deny.push(parse_code(&v)?);
                }
            }
            "--allow" => o.allow.push(parse_code(&need(&mut it, "--allow")?)?),
            "--width" => {
                o.width = need(&mut it, "--width")?
                    .parse()
                    .map_err(|_| "`--width` needs an integer".to_string())?
            }
            "--ghist" => {
                o.ghist_bits = need(&mut it, "--ghist")?
                    .parse()
                    .map_err(|_| "`--ghist` needs an integer".to_string())?
            }
            "--lhist" => {
                o.lhist_entries = need(&mut it, "--lhist")?
                    .parse()
                    .map_err(|_| "`--lhist` needs an integer".to_string())?
            }
            "--meta-budget" => {
                o.meta_budget_bits = need(&mut it, "--meta-budget")?
                    .parse()
                    .map_err(|_| "`--meta-budget` needs an integer".to_string())?
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            target => o.targets.push(target.to_string()),
        }
    }
    if !o.all && o.targets.is_empty() {
        return Err("no targets; pass design names, topology strings, or --all".into());
    }
    Ok(Some(o))
}

/// Applies deny/allow to a report's diagnostics in place.
fn adjust_severities(report: &mut analysis::AnalysisReport, o: &Options) {
    for d in &mut report.diagnostics {
        if o.allow.contains(&d.code) && d.severity == Severity::Warning {
            d.severity = Severity::Note;
        } else if d.severity == Severity::Warning && (o.deny_warnings || o.deny.contains(&d.code)) {
            d.severity = Severity::Error;
        }
    }
}

fn lint_one(target: &str, o: &Options) -> Result<analysis::AnalysisReport, String> {
    let cfg = |reference_kb, paper_kb| AnalysisConfig {
        width: o.width,
        meta_budget_bits: o.meta_budget_bits,
        reference_kb,
        paper_kb,
        ..AnalysisConfig::default()
    };
    let named = designs::by_name(target);
    let mut report = if let Some(design) = &named {
        let cfg = cfg(
            reference::measured_storage_kb(&design.name),
            reference::table1_storage_kb(&design.name),
        );
        analysis::analyze_design(design, &cfg)
    } else {
        let registry = designs::stock_registry();
        analysis::analyze_topology(
            target,
            target,
            &registry,
            o.ghist_bits,
            o.lhist_entries,
            &cfg(None, None),
        )
    }
    .map_err(|e| {
        // Parse failures never reach a report; render them in the same
        // caret style so the span is still visible.
        match e.span() {
            Some(span) => format!("{e}\n  {target}\n  {}", span.caret_line()),
            None => e.to_string(),
        }
    })?;
    if o.plan {
        // The verifier needs a compiled pipeline; a design whose pipeline
        // cannot compile already carries error diagnostics in the report,
        // so a compile failure here is not double-reported.
        let design = match named {
            Some(d) => d,
            None => designs::from_topology(target, o.ghist_bits, o.lhist_entries),
        };
        if let Ok(diags) = analysis::verify_design_plan(&design, o.width) {
            report.diagnostics.extend(diags);
        }
    }
    adjust_severities(&mut report, o);
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cobra-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut targets = o.targets.clone();
    if o.all {
        targets.extend(designs::catalog().into_iter().map(|d| d.name));
    }

    let mut failed = false;
    let mut json_reports = Vec::new();
    let mut sarif_results = Vec::new();
    for target in &targets {
        match lint_one(target, &o) {
            Ok(report) => {
                if !report.is_clean(Severity::Error) {
                    failed = true;
                }
                match o.format {
                    Format::Json => json_reports.push(report.render_json()),
                    Format::Sarif => sarif_results.extend(sarif_results_for(&report)),
                    Format::Human => print!("{}", report.render_human()),
                }
            }
            Err(msg) => {
                failed = true;
                match o.format {
                    Format::Json => json_reports.push(format!(
                        "{{\"design\":{},\"error\":{}}}",
                        json_str(target),
                        json_str(&msg)
                    )),
                    Format::Sarif => sarif_results.push(sarif_result(
                        "C0001",
                        "error",
                        &format!("{target}: {msg}"),
                        target,
                        None,
                    )),
                    Format::Human => eprintln!("cobra-lint: {target}: {msg}"),
                }
            }
        }
    }
    match o.format {
        Format::Json => println!("[{}]", json_reports.join(",")),
        Format::Sarif => println!("{}", sarif_document(&sarif_results)),
        Format::Human => {}
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// SARIF severity level for a diagnostic severity.
fn sarif_level(s: Severity) -> &'static str {
    match s {
        Severity::Note => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

/// One SARIF result object. `region` is a byte span into the topology
/// text, reported as single-line column coordinates.
fn sarif_result(
    rule: &str,
    level: &str,
    message: &str,
    artifact: &str,
    region: Option<(usize, usize)>,
) -> String {
    let region_json = match region {
        Some((start, end)) => format!(
            ",\"region\":{{\"startLine\":1,\"startColumn\":{},\"endColumn\":{}}}",
            start + 1,
            end.max(start + 1) + 1
        ),
        None => String::new(),
    };
    format!(
        "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\
         \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
         {{\"uri\":{}}}{region_json}}}}}]}}",
        json_str(rule),
        json_str(level),
        json_str(message),
        json_str(&format!("topologies/{}.cobra", sanitize(artifact))),
    )
}

/// All SARIF results for one report, in diagnostic order.
fn sarif_results_for(report: &analysis::AnalysisReport) -> Vec<String> {
    report
        .diagnostics
        .iter()
        .map(|d| {
            let mut text = format!("{}: {}", report.name, d.message);
            if let Some(c) = &d.component {
                text.push_str(&format!(" (component `{c}`)"));
            }
            if let Some(h) = &d.hint {
                text.push_str(&format!(" — hint: {h}"));
            }
            sarif_result(
                d.code.code(),
                sarif_level(d.severity),
                &text,
                &report.name,
                d.span.map(|s| (s.start, s.end)),
            )
        })
        .collect()
}

/// Wraps results in a complete SARIF 2.1.0 document with the full rule
/// table, suitable for GitHub code-scanning upload.
fn sarif_document(results: &[String]) -> String {
    let rules = DiagCode::all()
        .iter()
        .map(|c| {
            format!(
                "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
                 \"defaultConfiguration\":{{\"level\":{}}}}}",
                json_str(c.code()),
                json_str(c.summary()),
                json_str(sarif_level(c.default_severity())),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"cobra-lint\",\"rules\":[{rules}]}}}},\
         \"results\":[{}]}}]}}",
        results.join(",")
    )
}

/// Filesystem-safe artifact stem for a design name or raw topology.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Local JSON string escaping (mirrors the analyzer's serde-free output).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
