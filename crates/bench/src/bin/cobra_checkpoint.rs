//! `cobra-checkpoint` — capture warm-state `.cbs` checkpoints for
//! warmup-once/measure-many grid runs.
//!
//! For each (design × workload) pair, builds the composed core, runs it
//! to the warmup boundary, and serializes the complete machine state —
//! every predictor table, the history file, the caches, the RAS, and the
//! workload cursor — into the COBRA Binary Snapshot format
//! (`docs/CHECKPOINT_FORMAT.md`). Grid binaries restore these via
//! `COBRA_CKPT_DIR`, skipping warm-up entirely while producing
//! `PerfReport`s byte-identical to straight-through runs:
//!
//! ```text
//! cobra-checkpoint gcc                      # all designs, one profile
//! cobra-checkpoint --all --out /tmp/ck      # the whole SPECint17 suite
//! cobra-checkpoint --all --at 200000        # checkpoint at 200k insts
//! cobra-checkpoint gcc --designs TAGE-L,B2  # a design subset
//! cobra-checkpoint gcc --verify             # restore + re-save each file
//! #                                           and require identical bytes
//! cobra-checkpoint --list                   # design and workload names
//! ```
//!
//! `--at` defaults to the warmup boundary the grid binaries will expect
//! at restore time: 40 % of `COBRA_INSTS` (500 000 by default). A
//! checkpoint taken at any other boundary is rejected at restore with a
//! precise `WarmupMismatch` error rather than silently skewing the
//! measured region.
//!
//! Exit status: 0 on success, 1 on a capture or verify failure, 2 on a
//! usage error.

use cobra_bench::runner::parallel_map;
use cobra_bench::{ckpt_file_name, run_insts};
use cobra_core::composer::Design;
use cobra_core::designs;
use cobra_uarch::{read_meta, restore_checkpoint, save_checkpoint, CbsMeta, Core, CoreConfig};
use cobra_workloads::{kernels, spec17, ProgramSpec, SPEC17_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: cobra-checkpoint [OPTIONS] WORKLOAD...

Runs each (design x workload) pair to the warmup boundary and writes the
warm machine state to `<out>/<design>--<workload>.cbs`, for restore via
COBRA_CKPT_DIR.

Options:
  --all            checkpoint every SPECint17 profile
  --designs CSV    comma-separated design names [every stock design]
  --out DIR        output directory [checkpoints]
  --at N           warmup boundary in instructions [40% of COBRA_INSTS]
  --verify         re-open each file, restore it into a fresh core,
                   re-serialize, and require byte-identical state
  --list           print design and workload names and exit
  -h, --help       print this help";

const KERNEL_NAMES: &[&str] = &[
    "dhrystone",
    "coremark",
    "aliasing_stress",
    "loop_stress",
    "history_depth",
    "btb_stress",
    "ras_stress",
];

fn workload_by_name(name: &str) -> Option<ProgramSpec> {
    if SPEC17_NAMES.iter().any(|n| n.eq_ignore_ascii_case(name)) {
        return Some(spec17::spec17(&name.to_ascii_lowercase()));
    }
    match name.to_ascii_lowercase().as_str() {
        "dhrystone" => Some(kernels::dhrystone()),
        "coremark" => Some(kernels::coremark(false)),
        "aliasing_stress" => Some(kernels::aliasing_stress()),
        "loop_stress" => Some(kernels::loop_stress()),
        "history_depth" => Some(kernels::history_depth(32)),
        "btb_stress" => Some(kernels::btb_stress()),
        "ras_stress" => Some(kernels::ras_stress()),
        _ => None,
    }
}

struct Options {
    workloads: Vec<String>,
    designs: Option<Vec<String>>,
    out: PathBuf,
    at: u64,
    verify: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut workloads: Vec<String> = Vec::new();
    let mut design_names: Option<Vec<String>> = None;
    let mut all = false;
    let mut out = PathBuf::from("checkpoints");
    let mut at = None;
    let mut verify = false;
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("`{flag}` needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => all = true,
            "--designs" => {
                let v = need(&mut it, "--designs")?;
                design_names = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--out" => out = PathBuf::from(need(&mut it, "--out")?),
            "--at" => {
                let v = need(&mut it, "--at")?;
                at = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("`--at {v}` is not a number"))?
                        .max(1),
                );
            }
            "--verify" => verify = true,
            "--list" => {
                let names: Vec<String> = designs::all().iter().map(|d| d.name.clone()).collect();
                println!("designs: {}", names.join(" "));
                println!("spec17: {}", SPEC17_NAMES.join(" "));
                println!("kernels: {}", KERNEL_NAMES.join(" "));
                return Ok(None);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => workloads.push(other.to_string()),
        }
    }
    if all {
        for n in SPEC17_NAMES {
            if !workloads.iter().any(|w| w.eq_ignore_ascii_case(n)) {
                workloads.push((*n).to_string());
            }
        }
    }
    if workloads.is_empty() {
        return Err("no workloads named (try `--all` or `--list`)".into());
    }
    Ok(Some(Options {
        workloads,
        designs: design_names,
        out,
        at: at.unwrap_or_else(|| run_insts() * 2 / 5),
        verify,
    }))
}

/// Captures one (design, workload) checkpoint, returning the bytes
/// written.
fn capture_one(
    design: &Design,
    spec: &ProgramSpec,
    warmup: u64,
    path: &std::path::Path,
) -> Result<u64, String> {
    let cfg = CoreConfig::boom_4wide();
    let mut core =
        Core::new(design, cfg, spec.build()).map_err(|e| format!("compose failed: {e}"))?;
    core.run(warmup, &spec.name);
    let meta = CbsMeta::for_run(design, &cfg, &spec.name, warmup);
    let file = std::fs::File::create(path).map_err(|e| format!("create failed: {e}"))?;
    save_checkpoint(std::io::BufWriter::new(file), &meta, &core)
        .map_err(|e| format!("write failed: {e}"))
}

/// Re-opens `path`, restores it into a fresh core, re-serializes that
/// core, and requires the bytes to match the file exactly — a full
/// save/restore/save fixed-point check.
fn verify_one(
    design: &Design,
    spec: &ProgramSpec,
    warmup: u64,
    path: &std::path::Path,
) -> Result<(), String> {
    let cfg = CoreConfig::boom_4wide();
    let bytes = std::fs::read(path).map_err(|e| format!("re-open failed: {e}"))?;
    let meta = CbsMeta::for_run(design, &cfg, &spec.name, warmup);
    let stored = read_meta(&bytes[..]).map_err(|e| format!("header: {e}"))?;
    if stored != meta {
        return Err(format!("identity mismatch: file says {stored:?}"));
    }
    let mut core =
        Core::new(design, cfg, spec.build()).map_err(|e| format!("compose failed: {e}"))?;
    restore_checkpoint(&bytes[..], &meta, &mut core).map_err(|e| format!("restore: {e}"))?;
    let mut resaved = Vec::new();
    save_checkpoint(&mut resaved, &meta, &core).map_err(|e| format!("re-save: {e}"))?;
    if resaved != bytes {
        return Err("restore/re-save is not a byte-identical fixed point".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cobra-checkpoint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let all_designs = designs::all();
    let selected: Vec<&Design> = match &opts.designs {
        Some(names) => {
            let mut picked = Vec::new();
            for n in names {
                match all_designs.iter().find(|d| d.name.eq_ignore_ascii_case(n)) {
                    Some(d) => picked.push(d),
                    None => {
                        eprintln!("cobra-checkpoint: unknown design `{n}` (try `--list`)");
                        return ExitCode::from(2);
                    }
                }
            }
            picked
        }
        None => all_designs.iter().collect(),
    };

    let mut specs = Vec::new();
    for name in &opts.workloads {
        match workload_by_name(name) {
            Some(s) => specs.push(s),
            None => {
                eprintln!("cobra-checkpoint: unknown workload `{name}` (try `--list`)");
                return ExitCode::from(2);
            }
        }
    }

    if let Err(e) = std::fs::create_dir_all(&opts.out) {
        eprintln!(
            "cobra-checkpoint: cannot create {}: {e}",
            opts.out.display()
        );
        return ExitCode::FAILURE;
    }

    let pairs: Vec<(&Design, &ProgramSpec)> = selected
        .iter()
        .flat_map(|d| specs.iter().map(move |s| (*d, s)))
        .collect();
    println!(
        "checkpointing {} (design x workload) pair(s) to {} at {} warmup insts",
        pairs.len(),
        opts.out.display(),
        opts.at
    );

    let results = parallel_map(&pairs, |_, (design, spec)| {
        let path = opts.out.join(ckpt_file_name(&design.name, &spec.name));
        let t0 = Instant::now();
        let outcome = capture_one(design, spec, opts.at, &path).and_then(|bytes| {
            if opts.verify {
                verify_one(design, spec, opts.at, &path)?;
            }
            Ok(bytes)
        });
        (path, outcome, t0.elapsed().as_secs_f64())
    });

    let mut failed = false;
    for ((design, spec), (path, outcome, wall)) in pairs.iter().zip(&results) {
        match outcome {
            Ok(bytes) => {
                let verified = if opts.verify { "  verified" } else { "" };
                println!(
                    "  {:<12} {:<14} {:>9} bytes  {:>6.2}s{verified}  -> {}",
                    design.name,
                    spec.name,
                    bytes,
                    wall,
                    path.display()
                );
            }
            Err(e) => {
                eprintln!("cobra-checkpoint: {}/{}: {e}", design.name, spec.name);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
