//! Fig 9: area of the full 4-wide core with each of the three predictors.

use cobra_area::{core_blocks_um2, AreaBreakdown, ProcessModel};
use cobra_bench::bar;
use cobra_bench::runner::parallel_map;
use cobra_core::composer::{BpuConfig, BranchPredictorUnit};
use cobra_core::designs;
use std::fmt::Write as _;

fn main() {
    let model = ProcessModel::finfet_7nm();
    println!("FIG 9 — Core area with each evaluated predictor");
    let core_um2: f64 = core_blocks_um2().iter().map(|(_, a)| a).sum();
    // Composing a design and walking its storage is the expensive part;
    // fan it out and print the prebuilt blocks in design order.
    let all_designs = designs::all();
    let blocks = parallel_map(&all_designs, |_, design| {
        let bpu = BranchPredictorUnit::build(design, BpuConfig::default())
            .expect("stock design composes");
        let mut b = AreaBreakdown::default();
        b.push("predictor", model.report_area_um2(&bpu.total_storage()));
        for (label, area) in core_blocks_um2() {
            b.push(label, area);
        }
        let total = b.total_um2();
        let mut out = String::new();
        writeln!(out).unwrap();
        writeln!(
            out,
            "{} core — {:.3} mm² (predictor share {:.1}%)",
            design.name,
            b.total_mm2(),
            100.0 * b.items[0].area_um2 / total
        )
        .unwrap();
        for item in &b.items {
            writeln!(
                out,
                "  {:<14} {:>9.0} µm² {:>5.1}%  {}",
                item.label,
                item.area_um2,
                100.0 * item.area_um2 / total,
                bar(item.area_um2 / total, 40)
            )
            .unwrap();
        }
        out
    });
    for block in blocks {
        print!("{block}");
    }
    println!();
    println!(
        "Paper observation to check: \"the total area of even a large predictor \
design is only a small portion of the area of a large superscalar \
out-of-order core\" (rest-of-core here: {:.3} mm²).",
        core_um2 / 1e6
    );
}
