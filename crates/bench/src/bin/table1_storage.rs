//! Table I: parameters and storage of the evaluated COBRA designs.
//!
//! Storage figures come from the runtime accounting
//! ([`BranchPredictorUnit::storage_by_component`]); the `cobra-area`
//! static resource model is computed alongside and asserted bit-exact
//! against it, so the printed table and the autotuner's pruning oracle
//! can never drift apart.
//!
//! [`BranchPredictorUnit::storage_by_component`]: cobra_core::composer::BranchPredictorUnit::storage_by_component

use cobra_bench::reference::TABLE1_STORAGE_KB;
use cobra_core::analysis::{AnalysisConfig, DesignModel, ResourceReport};
use cobra_core::composer::{BpuConfig, BranchPredictorUnit};
use cobra_core::designs;

fn main() {
    println!("TABLE I — Parameters of evaluated COBRA-designed predictors");
    println!(
        "{:<12} {:<42} {:>12} {:>12}",
        "Design", "Topology", "paper (KB)", "ours (KB)"
    );
    for design in designs::all() {
        let bpu = BranchPredictorUnit::build(&design, BpuConfig::default())
            .expect("stock design composes");
        // The static resource model must agree with the runtime accounting
        // bit-for-bit on every design this table prints.
        let model = DesignModel::build(
            &design.name,
            &design.topology,
            &design.registry,
            BpuConfig::default().fetch_width,
            design.ghist_bits,
            design.lhist_entries,
        )
        .expect("stock design elaborates");
        let resource = ResourceReport::from_model(&model, &AnalysisConfig::default());
        for ((label, runtime), (s_label, s_report)) in
            bpu.storage_by_component().iter().zip(&resource.components)
        {
            assert_eq!(label, s_label, "component order diverged");
            assert_eq!(
                runtime.total_bits(),
                s_report.total_bits(),
                "{}: static resource model diverged from runtime storage for {label}",
                design.name
            );
        }
        assert_eq!(
            bpu.meta_storage().total_bits(),
            resource.management.total_bits(),
            "{}: static management storage diverged",
            design.name
        );
        let paper = TABLE1_STORAGE_KB
            .iter()
            .find(|(n, _)| *n == design.name)
            .map_or(f64::NAN, |(_, kb)| *kb);
        // Component storage only (the paper's budgets exclude management
        // structures, which Fig 8 charges separately as "Meta").
        let comp_kb: f64 = bpu
            .storage_by_component()
            .iter()
            .map(|(_, r)| r.kilobytes())
            .sum();
        println!(
            "{:<12} {:<42} {:>12.1} {:>12.1}",
            design.name, design.topology, paper, comp_kb
        );
        for (label, r) in bpu.storage_by_component() {
            println!(
                "{:<12}   {:<40} {:>12} {:>12.2}",
                "",
                label,
                "",
                r.kilobytes()
            );
        }
        println!(
            "{:<12}   {:<40} {:>12} {:>12.2}",
            "",
            "management (history file + providers)",
            "",
            bpu.meta_storage().kilobytes()
        );
        println!(
            "{:<12}   ghist {} bits, local histories: {}",
            "",
            design.ghist_bits,
            if design.lhist_entries > 0 {
                format!("{} entries", design.lhist_entries)
            } else {
                "none".into()
            }
        );
    }
}
