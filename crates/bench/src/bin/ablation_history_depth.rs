//! History-reach ablation: branches correlated with an outcome `d` ago are
//! learnable only by predictors whose effective history reaches `d`. The
//! sweep traces each design's accuracy as the correlation deepens —
//! B2's 16-bit GTAG falls off first, the Tournament's 14-bit GHT next,
//! TAGE's geometric tables (up to 64 bits) last.

use cobra_bench::run_one;
use cobra_core::designs;
use cobra_uarch::CoreConfig;
use cobra_workloads::kernels;

fn main() {
    println!("ABLATION — accuracy vs correlation depth");
    println!(
        "{:<7} {:>12} {:>12} {:>12}",
        "depth", "Tournament", "B2", "TAGE-L"
    );
    for depth in [1u32, 4, 8, 12, 16, 24, 32, 48] {
        let spec = kernels::history_depth(depth);
        let mut row = format!("{depth:<7}");
        for design in designs::all() {
            let r = run_one(&design, CoreConfig::boom_4wide(), &spec);
            row += &format!(" {:>11.2}%", r.counters.branch_accuracy());
        }
        println!("{row}");
    }
    println!();
    println!("Expected shape: every design near-perfect at shallow depths;");
    println!("accuracy decays as the correlation outruns each design's");
    println!("history reach, with TAGE-L degrading last.");
}
