//! History-reach ablation: branches correlated with an outcome `d` ago are
//! learnable only by predictors whose effective history reaches `d`. The
//! sweep traces each design's accuracy as the correlation deepens —
//! B2's 16-bit GTAG falls off first, the Tournament's 14-bit GHT next,
//! TAGE's geometric tables (up to 64 bits) last.

use cobra_bench::runner::{run_grid, Job};
use cobra_core::designs;
use cobra_uarch::CoreConfig;
use cobra_workloads::{kernels, ProgramSpec};

const DEPTHS: [u32; 8] = [1, 4, 8, 12, 16, 24, 32, 48];

fn main() {
    println!("ABLATION — accuracy vs correlation depth");
    println!(
        "{:<7} {:>12} {:>12} {:>12}",
        "depth", "Tournament", "B2", "TAGE-L"
    );
    let all_designs = designs::all();
    let specs: Vec<ProgramSpec> = DEPTHS.iter().map(|&d| kernels::history_depth(d)).collect();
    // Depth-major grid: one row of designs per depth.
    let jobs: Vec<Job<'_>> = specs
        .iter()
        .flat_map(|spec| {
            all_designs
                .iter()
                .map(move |d| Job::new(d, CoreConfig::boom_4wide(), spec))
        })
        .collect();
    let grid = run_grid(&jobs);
    for (i, depth) in DEPTHS.iter().enumerate() {
        let mut row = format!("{depth:<7}");
        for d in 0..all_designs.len() {
            let r = &grid[i * all_designs.len() + d].report;
            row += &format!(" {:>11.2}%", r.counters.branch_accuracy());
        }
        println!("{row}");
    }
    println!();
    println!("Expected shape: every design near-perfect at shallow depths;");
    println!("accuracy decays as the correlation outruns each design's");
    println!("history reach, with TAGE-L degrading last.");
}
