//! Table II: configuration of the evaluated BOOM core.

use cobra_uarch::CoreConfig;

fn main() {
    let c = CoreConfig::boom_4wide();
    println!("TABLE II — Evaluated BOOM configuration (paper / this model)");
    let rows: Vec<(&str, String)> = vec![
        (
            "Frontend",
            format!(
                "{}-byte wide fetch, {}-wide decode/rename/commit",
                c.fetch_bytes, c.decode_width
            ),
        ),
        (
            "Execute",
            format!(
                "{}-entry ROB, {} pipelines ({} ALU, {} MEM, {} FP), {}-entry issue window",
                c.rob_entries,
                c.alu_ports + c.mem_ports + c.fp_ports,
                c.alu_ports,
                c.mem_ports,
                c.fp_ports,
                c.issue_window
            ),
        ),
        (
            "L1 caches",
            format!(
                "{}-way {} KB ICache and DCache, next-line prefetcher: {}",
                c.l1i.ways,
                c.l1i.size_bytes / 1024,
                c.nlp_prefetch
            ),
        ),
        (
            "L2 cache",
            format!("{}-way {} KB", c.l2.ways, c.l2.size_bytes / 1024),
        ),
        (
            "L3 cache",
            format!(
                "{} MB (flat-latency LLC model, {} cycles)",
                c.l3.size_bytes / (1024 * 1024),
                c.l3.hit_latency
            ),
        ),
        (
            "Memory",
            format!("flat DRAM timing model, {} cycles", c.dram_latency),
        ),
        (
            "Predictor mgmt",
            format!(
                "{}-entry history file, repair width {}, mode {:?}",
                c.bpu.history_file_entries, c.bpu.repair_width, c.bpu.repair_mode
            ),
        ),
    ];
    for (k, v) in rows {
        println!("{k:<16} {v}");
    }
    println!();
    println!("Substitutions vs the paper: FASED LLC/DDR3 timing model replaced by");
    println!("flat-latency levels; TLBs not modelled (no virtual memory in the");
    println!("synthetic workloads); FP pipelines modelled as a latency class.");
}
