//! Ablation for Section III-C (superscalar prediction): a counter table
//! that reads one entry per *packet* aliases adjacent branches within the
//! packet; the superscalar (banked, per-slot) table does not.
//!
//! The paper's example: "two adjacent conditional branches that are
//! frequently in the same fetch packet … would alias onto the same entry"
//! of a non-superscalar table.

use cobra_bench::pct_delta;
use cobra_bench::runner::{run_grid, Job};
use cobra_core::components::{Btb, BtbConfig, Hbim, HbimConfig};
use cobra_core::composer::{ComponentRegistry, Design};
use cobra_uarch::CoreConfig;
use cobra_workloads::{kernels, spec17, ProgramSpec};

/// A bare bimodal design: the table under test provides every direction
/// prediction, so intra-packet aliasing is not masked by a backing
/// predictor.
fn bim_design(superscalar: bool) -> Design {
    let mut registry = ComponentRegistry::new();
    registry.register("BTB2", |w| Box::new(Btb::new(BtbConfig::large(w))));
    registry.register("BIM2", move |w| {
        Box::new(Hbim::new(HbimConfig {
            superscalar,
            ..HbimConfig::bim(16384, w)
        }))
    });
    Design {
        name: if superscalar {
            "bim/superscalar".into()
        } else {
            "bim/per-packet".into()
        },
        topology: "BTB2 > BIM2".into(),
        registry,
        ghist_bits: 16,
        lhist_entries: 0,
    }
}

fn main() {
    println!("ABLATION §III-C — superscalar vs per-packet counter table (bare bimodal)");
    println!(
        "{:<11} {:>12} {:>12} {:>9} {:>10} {:>10}",
        "bench", "MPKI ss", "MPKI packet", "dMPKI", "acc ss", "acc packet"
    );
    let dense = ProgramSpec {
        name: "branch-dense".into(),
        body_len: (0, 2),
        ..kernels::aliasing_stress()
    };
    let specs = [
        ("branch-dense", dense),
        ("gcc", spec17::spec17("gcc")),
        ("deepsjeng", spec17::spec17("deepsjeng")),
    ];
    let d_ss = bim_design(true);
    let d_pk = bim_design(false);
    // Workload-major pairs: (superscalar, per-packet) per benchmark.
    let jobs: Vec<Job<'_>> = specs
        .iter()
        .flat_map(|(_, spec)| {
            [
                Job::new(&d_ss, CoreConfig::boom_4wide(), spec),
                Job::new(&d_pk, CoreConfig::boom_4wide(), spec),
            ]
        })
        .collect();
    let grid = run_grid(&jobs);
    for (i, (w, _)) in specs.iter().enumerate() {
        let ss = &grid[2 * i].report;
        let pk = &grid[2 * i + 1].report;
        println!(
            "{:<11} {:>12.2} {:>12.2} {:>9} {:>9.2}% {:>9.2}%",
            w,
            ss.counters.mpki(),
            pk.counters.mpki(),
            pct_delta(pk.counters.mpki(), ss.counters.mpki()),
            ss.counters.branch_accuracy(),
            pk.counters.branch_accuracy(),
        );
    }
    println!();
    println!("Expectation per the paper: the per-packet table aliases adjacent");
    println!("branches in branch-dense packets, raising MPKI; the superscalar");
    println!("table gives each slot its own counter.");
}
