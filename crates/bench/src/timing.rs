//! A minimal wall-clock benchmarking harness.
//!
//! The build environment has no access to crates.io, so the `cargo bench`
//! targets use this self-contained harness instead of `criterion`: each
//! benchmark is warmed up, the iteration count is calibrated to a target
//! sample duration, and the median of several samples is reported (median
//! is robust to scheduler noise, which is all we need to compare the
//! hot-path before/after), alongside the minimum and the median absolute
//! deviation so a delta within run-to-run noise reads as such.

use std::time::{Duration, Instant};

/// Samples taken per benchmark; the median is reported.
const SAMPLES: usize = 7;
/// Target wall-clock time per sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(120);

/// A named group of benchmarks, reported as `group/name`.
pub struct Harness {
    group: String,
}

impl Harness {
    /// Creates a harness for `group`.
    pub fn new(group: &str) -> Self {
        println!("benchmark group: {group}");
        Self {
            group: group.to_string(),
        }
    }

    /// Runs `f` repeatedly and reports the median time per call.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        // Warm-up and calibration: find an iteration count that fills the
        // target sample duration.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE / 4 || iters >= 1 << 30 {
                let per_iter = elapsed.as_nanos().max(1) as u64 / iters;
                iters = (TARGET_SAMPLE.as_nanos() as u64 / per_iter.max(1)).max(1);
                break;
            }
            iters *= 8;
        }
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[SAMPLES / 2];
        let (lo, hi) = (samples[0], samples[SAMPLES - 1]);
        let spread = mad(&samples, median);
        println!(
            "{:<40} {:>12.0} ns/iter  ±{:<8.0} (min {:.0}, max {:.0}, {} x {} iters)",
            format!("{}/{}", self.group, name),
            median,
            spread,
            lo,
            hi,
            SAMPLES,
            iters
        );
    }
}

/// Median absolute deviation around `median` — the spread figure printed
/// next to each benchmark so a before/after delta smaller than the spread
/// is visibly within noise.
fn mad(samples: &[f64], median: f64) -> f64 {
    let mut devs: Vec<f64> = samples.iter().map(|s| (s - median).abs()).collect();
    devs.sort_by(|a, b| a.total_cmp(b));
    devs[devs.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut h = Harness::new("selftest");
        let mut acc = 0u64;
        h.bench("noop-ish", || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert!(acc > 0);
    }

    #[test]
    fn mad_ignores_outliers() {
        let s = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(mad(&s, 3.0), 1.0);
    }
}
