//! The two-tier warm-state cache behind `cobra-serve`.
//!
//! Tier 1 is a persistent *result* cache: `.cbr` files keyed on the full
//! evaluation identity `(config_hash, workload, insts, warmup)`. An
//! exact hit skips simulation entirely. Tier 2 is a *checkpoint* cache:
//! `.cbs` files keyed on `(config_hash, workload, warmup_boundary)`; a
//! job that misses tier 1 but finds a checkpoint for the same design and
//! workload at an equal-or-earlier boundary restores it and simulates
//! only the remainder. Both tiers lean entirely on the containers'
//! golden-gate discipline — checksums, identity headers, size caps — so
//! a damaged or foreign entry degrades to a miss, never to a wrong
//! answer.
//!
//! Stores are atomic (write to a `.tmp` sibling, then rename), so a
//! concurrent reader can never observe a half-written entry even when
//! several worker threads share the directory.

use std::fs;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use cobra_uarch::{
    read_result, save_result, CbrMeta, CbsMeta, Core, InstructionStream, PerfReport,
};

/// Monotonic counters describing cache behaviour since the server
/// started; snapshot into the `stats` event and the drain summary.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Tier-1 exact result hits.
    pub hits: AtomicU64,
    /// Tier-2 checkpoint restores (partial simulation).
    pub warm: AtomicU64,
    /// Full cold simulations.
    pub miss: AtomicU64,
    /// Entries written (results and checkpoints).
    pub stores: AtomicU64,
    /// Entries that existed but failed validation and were ignored.
    pub rejected: AtomicU64,
}

impl CacheStats {
    /// Renders the counters as a JSON object fragment.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"warm\":{},\"miss\":{},\"stores\":{},\"rejected\":{}}}",
            self.hits.load(Ordering::Relaxed),
            self.warm.load(Ordering::Relaxed),
            self.miss.load(Ordering::Relaxed),
            self.stores.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed)
        )
    }
}

/// A warm-state cache rooted at one directory, holding `results/*.cbr`
/// and `ckpt/*.cbs`. Cheap to share behind an `Arc`; all methods take
/// `&self`.
#[derive(Debug)]
pub struct WarmCache {
    results: PathBuf,
    ckpt: PathBuf,
    /// Behaviour counters, updated by lookups and stores.
    pub stats: CacheStats,
}

impl WarmCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: &Path) -> std::io::Result<Self> {
        let results = root.join("results");
        let ckpt = root.join("ckpt");
        fs::create_dir_all(&results)?;
        fs::create_dir_all(&ckpt)?;
        Ok(WarmCache {
            results,
            ckpt,
            stats: CacheStats::default(),
        })
    }

    /// The checkpoint subdirectory, for
    /// [`cobra_uarch::best_resume_checkpoint`] scans.
    pub fn ckpt_dir(&self) -> &Path {
        &self.ckpt
    }

    fn result_path(&self, meta: &CbrMeta) -> PathBuf {
        self.results.join(format!(
            "{:016x}--{}--i{}.cbr",
            meta.config_hash, meta.workload, meta.insts
        ))
    }

    fn ckpt_path(&self, meta: &CbsMeta) -> PathBuf {
        self.ckpt.join(format!(
            "{:016x}--{}--w{}.cbs",
            meta.config_hash, meta.workload, meta.warmup_insts
        ))
    }

    /// Tier-1 lookup: returns the cached report iff an entry exists for
    /// exactly this identity and passes every container check. A
    /// damaged, truncated, or identity-mismatched entry is counted in
    /// `stats.rejected` and treated as absent.
    pub fn lookup_result(&self, meta: &CbrMeta) -> Option<PerfReport> {
        let path = self.result_path(meta);
        let f = fs::File::open(&path).ok()?;
        match read_result(BufReader::new(f), meta) {
            Ok(report) => Some(report),
            Err(e) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "[cobra-serve] ignoring invalid result cache entry {}: {e}",
                    path.display()
                );
                None
            }
        }
    }

    /// Stores a report under its identity, atomically. Failures are
    /// logged and swallowed — the cache is an accelerator, never a
    /// correctness dependency.
    pub fn store_result(&self, meta: &CbrMeta, report: &PerfReport) {
        let path = self.result_path(meta);
        let tmp = path.with_extension("cbr.tmp");
        let outcome = (|| -> std::io::Result<()> {
            let f = fs::File::create(&tmp)?;
            save_result(std::io::BufWriter::new(f), meta, report)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            fs::rename(&tmp, &path)
        })();
        match outcome {
            Ok(()) => {
                self.stats.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                eprintln!(
                    "[cobra-serve] failed to store result cache entry {}: {e}",
                    path.display()
                );
            }
        }
    }

    /// `true` iff a checkpoint for exactly this boundary already exists.
    pub fn has_checkpoint(&self, meta: &CbsMeta) -> bool {
        self.ckpt_path(meta).exists()
    }

    /// Stores a warmup-boundary checkpoint of `core`, atomically.
    /// Failures are logged and swallowed, like [`Self::store_result`].
    pub fn store_checkpoint<S: InstructionStream>(&self, meta: &CbsMeta, core: &Core<S>) {
        let path = self.ckpt_path(meta);
        let tmp = path.with_extension("cbs.tmp");
        let outcome = (|| -> std::io::Result<()> {
            let f = fs::File::create(&tmp)?;
            cobra_uarch::save_checkpoint(std::io::BufWriter::new(f), meta, core)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            fs::rename(&tmp, &path)
        })();
        match outcome {
            Ok(()) => {
                self.stats.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                eprintln!(
                    "[cobra-serve] failed to store checkpoint {}: {e}",
                    path.display()
                );
            }
        }
    }
}
