//! The `cobra-serve` daemon proper: listener, admission, fair
//! scheduling, and the sharded worker pool.
//!
//! Threading model, all std:
//!
//! - one *acceptor* loop ([`Server::run`]) polls a nonblocking listener;
//! - per connection, a *reader* thread parses and admits requests and a
//!   *writer* thread drains that connection's event channel (admission
//!   and workers never block on a slow client);
//! - `threads` *worker* threads pull jobs from the shared queue, run
//!   them through [`super::exec::execute_job`], and post `result`
//!   events back onto the owning connection's channel.
//!
//! Admission performs every cheap validation — request shape, workload
//! name, design/topology lint via the static analyzer — on the reader
//! thread, so malformed jobs answer with a precise reject code
//! (`E_PARSE`, `E_WORKLOAD`, `E_TOPOLOGY` with C-code diagnostics,
//! `E_INSTS`) instead of a worker panic. The queue is bounded; once it
//! fills, submits are rejected with `E_QUEUE_FULL` and a `retry_after_ms`
//! hint derived from an EMA of recent job wall times. Scheduling is
//! round-robin across connections, so one client pipelining the whole
//! fig. 10 grid cannot starve another's single job.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use cobra_core::analysis::gate_topology;
use cobra_core::designs;
use cobra_core::ComposeError;
use cobra_uarch::CoreConfig;

use super::cache::WarmCache;
use super::exec::{execute_job, CacheDisposition};
use super::protocol::{
    self, JobTarget, Request, SubmitReq, E_DRAINING, E_INSTS, E_PARSE, E_QUEUE_FULL, E_TOPOLOGY,
    E_WORKLOAD,
};
use crate::workload_by_name;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP endpoint, `host:port` (port 0 picks an ephemeral port).
    Tcp(String),
    /// A Unix-domain socket path (removed on bind and on shutdown).
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Listen {
    /// Parses `tcp:HOST:PORT` or `unix:PATH`.
    ///
    /// # Errors
    ///
    /// A usage message naming the accepted forms.
    pub fn parse(s: &str) -> Result<Listen, String> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.rsplit_once(':').is_none() {
                return Err(format!("tcp endpoint {addr:?} is not HOST:PORT"));
            }
            return Ok(Listen::Tcp(addr.to_string()));
        }
        #[cfg(unix)]
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint needs a path".into());
            }
            return Ok(Listen::Unix(PathBuf::from(path)));
        }
        Err(format!(
            "listen endpoint {s:?} must be tcp:HOST:PORT or unix:PATH"
        ))
    }
}

/// Daemon configuration, fully resolved (CLI over environment over
/// defaults) before [`Server::bind`].
#[derive(Debug)]
pub struct ServeConfig {
    /// Listen endpoint.
    pub listen: Listen,
    /// Worker pool size (the sharding width).
    pub threads: usize,
    /// Bounded admission-queue capacity, across all connections.
    pub queue_cap: usize,
    /// Warm-cache root; `None` disables both tiers.
    pub cache_dir: Option<PathBuf>,
    /// Largest accepted `insts` per job.
    pub insts_cap: u64,
    /// Progress-event stride in committed instructions; `None` derives
    /// `insts / 4` per job, `Some(0)` disables progress events.
    pub progress_stride: Option<u64>,
}

/// One admitted job, queued for a worker. Only owned data — the worker
/// materializes the `Design` and workload stream itself.
struct QueuedJob {
    conn: u64,
    id: u64,
    target: JobTarget,
    workload: String,
    insts: u64,
    out: mpsc::Sender<String>,
}

/// Round-robin scheduler state: per-connection FIFO queues and a cursor.
#[derive(Default)]
struct SchedState {
    per_conn: BTreeMap<u64, VecDeque<QueuedJob>>,
    cursor: u64,
    total: usize,
}

impl SchedState {
    fn push(&mut self, job: QueuedJob) {
        self.per_conn.entry(job.conn).or_default().push_back(job);
        self.total += 1;
    }

    /// Pops the next job, strictly round-robin by connection id: the
    /// first nonempty queue with id greater than the cursor, wrapping.
    fn take_next(&mut self) -> Option<QueuedJob> {
        let pick = self
            .per_conn
            .range(self.cursor + 1..)
            .chain(self.per_conn.range(..=self.cursor))
            .find(|(_, q)| !q.is_empty())
            .map(|(&id, _)| id)?;
        let q = self.per_conn.get_mut(&pick).expect("picked key exists");
        let job = q.pop_front().expect("picked queue is nonempty");
        if q.is_empty() {
            self.per_conn.remove(&pick);
        }
        self.cursor = pick;
        self.total -= 1;
        Some(job)
    }

    /// Drops all pending jobs for a disconnected client.
    fn drop_conn(&mut self, conn: u64) {
        if let Some(q) = self.per_conn.remove(&conn) {
            self.total -= q.len();
        }
    }
}

/// State shared between the acceptor, readers, and workers.
struct Shared {
    queue: Mutex<SchedState>,
    cv: Condvar,
    draining: AtomicBool,
    jobs_done: AtomicU64,
    jobs_running: AtomicUsize,
    /// EMA of job wall time in milliseconds, seeding `retry_after_ms`.
    ema_wall_ms: AtomicU64,
    cache: Option<WarmCache>,
    queue_cap: usize,
    insts_cap: u64,
    threads: usize,
    progress_stride: Option<u64>,
}

impl Shared {
    fn stats_json(&self) -> String {
        let q = self.queue.lock().expect("queue mutex");
        let cache = match &self.cache {
            Some(c) => c.stats.to_json(),
            None => "null".to_string(),
        };
        format!(
            "{{\"ev\":\"stats\",\"queued\":{},\"running\":{},\"done\":{},\
             \"threads\":{},\"cache\":{cache}}}",
            q.total,
            self.jobs_running.load(Ordering::Relaxed),
            self.jobs_done.load(Ordering::Relaxed),
            self.threads
        )
    }
}

/// A handle that asks a running [`Server`] to drain: stop admitting,
/// finish queued jobs, close connections, return from `run`.
#[derive(Clone)]
pub struct DrainHandle {
    shared: Arc<Shared>,
}

impl DrainHandle {
    /// Initiates the drain. Idempotent.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn split(&self) -> std::io::Result<(Conn, Conn)> {
        match self {
            Conn::Tcp(s) => Ok((Conn::Tcp(s.try_clone()?), Conn::Tcp(s.try_clone()?))),
            #[cfg(unix)]
            Conn::Unix(s) => Ok((Conn::Unix(s.try_clone()?), Conn::Unix(s.try_clone()?))),
        }
    }
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen endpoint and opens the cache (if configured).
    ///
    /// # Errors
    ///
    /// Bind or cache-directory failures.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let cache = match &cfg.cache_dir {
            Some(dir) => Some(WarmCache::open(dir)?),
            None => None,
        };
        let listener = match &cfg.listen {
            Listen::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Listener::Tcp(l)
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                // A stale socket file from a previous run blocks bind.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Listener::Unix(l, path.clone())
            }
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                queue: Mutex::new(SchedState::default()),
                cv: Condvar::new(),
                draining: AtomicBool::new(false),
                jobs_done: AtomicU64::new(0),
                jobs_running: AtomicUsize::new(0),
                ema_wall_ms: AtomicU64::new(0),
                cache,
                queue_cap: cfg.queue_cap.max(1),
                insts_cap: cfg.insts_cap.max(1),
                threads: cfg.threads.max(1),
                progress_stride: cfg.progress_stride,
            }),
        })
    }

    /// The bound TCP address (for `tcp:…:0` ephemeral-port tests).
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(..) => None,
        }
    }

    /// A handle that can drain this server from another thread (or a
    /// signal watcher).
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the daemon until drained. Blocks the calling thread.
    pub fn run(self) {
        let shared = self.shared;
        let workers: Vec<_> = (0..shared.threads)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cobra-serve-w{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn worker")
            })
            .collect();

        let mut next_conn: u64 = 0;
        loop {
            if shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let accepted = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    s.set_nodelay(true).ok();
                    Conn::Tcp(s)
                }),
                #[cfg(unix)]
                Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match accepted {
                Ok(conn) => {
                    next_conn += 1;
                    let conn_id = next_conn;
                    let sh = Arc::clone(&shared);
                    match conn.split() {
                        Ok((r, w)) => {
                            std::thread::Builder::new()
                                .name(format!("cobra-serve-c{conn_id}"))
                                .spawn(move || connection_loop(&sh, conn_id, r, w))
                                .expect("spawn connection thread");
                        }
                        Err(e) => eprintln!("[cobra-serve] dropping connection: {e}"),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => {
                    eprintln!("[cobra-serve] accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }

        // Drain: workers exit once the queue is empty and draining is
        // set; reader threads exit on client EOF (detached).
        shared.cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        #[cfg(unix)]
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        eprintln!(
            "[cobra-serve] drained after {} jobs",
            shared.jobs_done.load(Ordering::Relaxed)
        );
    }
}

/// Reader side of one connection: parse, validate, admit.
fn connection_loop(shared: &Arc<Shared>, conn_id: u64, reader: Conn, mut writer: Conn) {
    let (tx, rx) = mpsc::channel::<String>();
    // Writer thread: the single owner of the socket's write half. It
    // exits when every sender (admission + any queued/running jobs on
    // this connection) has dropped.
    let writer_thread = std::thread::Builder::new()
        .name(format!("cobra-serve-wr{conn_id}"))
        .spawn(move || {
            while let Ok(line) = rx.recv() {
                if writer.write_all(line.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
                    break;
                }
                let _ = writer.flush();
            }
            let _ = writer.flush();
        })
        .expect("spawn writer thread");

    let send = |line: String| {
        let _ = tx.send(line);
    };
    send(protocol::ev_hello(
        shared.threads,
        shared.queue_cap,
        shared.insts_cap,
    ));

    let mut lines = BufReader::new(reader).lines();
    let mut said_bye = false;
    while let Some(Ok(line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match protocol::parse_request(line) {
            Err(msg) => send(protocol::ev_rejected(None, E_PARSE, &msg, None, None)),
            Ok(Request::Hello) => send(protocol::ev_hello(
                shared.threads,
                shared.queue_cap,
                shared.insts_cap,
            )),
            Ok(Request::Ping) => send(protocol::ev_pong()),
            Ok(Request::Stats) => send(shared.stats_json()),
            Ok(Request::Shutdown) => {
                send(protocol::ev_bye());
                said_bye = true;
                shared.draining.store(true, Ordering::SeqCst);
                shared.cv.notify_all();
                break;
            }
            Ok(Request::Submit(req)) => admit(shared, conn_id, req, &tx),
        }
    }
    if !said_bye && shared.draining.load(Ordering::SeqCst) {
        send(protocol::ev_bye());
    }
    // Client hung up (or we are draining): discard its pending jobs so
    // workers don't burn time on results nobody will read. Running jobs
    // finish; their sends fail silently into the closed channel.
    shared.queue.lock().expect("queue mutex").drop_conn(conn_id);
    drop(tx);
    let _ = writer_thread.join();
}

/// Validates one submit and either queues it or answers with the precise
/// reject code.
fn admit(shared: &Arc<Shared>, conn_id: u64, req: SubmitReq, tx: &mpsc::Sender<String>) {
    let send = |line: String| {
        let _ = tx.send(line);
    };
    let id = req.id;
    if shared.draining.load(Ordering::SeqCst) {
        send(protocol::ev_rejected(
            Some(id),
            E_DRAINING,
            "server is draining",
            None,
            None,
        ));
        return;
    }
    let insts = req.insts.unwrap_or(crate::run_insts());
    if insts == 0 || insts > shared.insts_cap {
        send(protocol::ev_rejected(
            Some(id),
            E_INSTS,
            &format!("insts {} outside 1..={}", insts, shared.insts_cap),
            None,
            None,
        ));
        return;
    }
    if workload_by_name(&req.workload).is_none() {
        send(protocol::ev_rejected(
            Some(id),
            E_WORKLOAD,
            &format!("unknown workload {:?}", req.workload),
            None,
            None,
        ));
        return;
    }
    // Lint the target on the reader thread: a bad topology answers with
    // C-code diagnostics here, never a worker panic later.
    match &req.target {
        JobTarget::Named(name) => {
            if designs::by_name(name).is_none() {
                send(protocol::ev_rejected(
                    Some(id),
                    E_TOPOLOGY,
                    &format!("unknown design {name:?}; see `cobra-bench --list`"),
                    None,
                    None,
                ));
                return;
            }
        }
        JobTarget::Topology {
            topology,
            ghist_bits,
            lhist_entries,
        } => {
            let design = designs::from_topology(topology, *ghist_bits, *lhist_entries);
            let width = CoreConfig::boom_4wide().fetch_slots();
            match gate_topology(
                &design.name,
                topology,
                &design.registry,
                *ghist_bits,
                *lhist_entries,
                width,
            ) {
                Ok(_) => {}
                Err(ComposeError::Parse { reason, span }) => {
                    send(protocol::ev_rejected(
                        Some(id),
                        E_TOPOLOGY,
                        &format!("parse error at {}..{}: {reason}", span.start, span.end),
                        None,
                        None,
                    ));
                    return;
                }
                Err(ComposeError::Analysis { diagnostics }) => {
                    let rendered: Vec<String> = diagnostics.iter().map(|d| d.to_json()).collect();
                    send(protocol::ev_rejected(
                        Some(id),
                        E_TOPOLOGY,
                        &format!("{} lint error(s)", rendered.len()),
                        None,
                        Some(&format!("[{}]", rendered.join(","))),
                    ));
                    return;
                }
                Err(e) => {
                    send(protocol::ev_rejected(
                        Some(id),
                        E_TOPOLOGY,
                        &e.to_string(),
                        None,
                        None,
                    ));
                    return;
                }
            }
        }
    }
    let mut q = shared.queue.lock().expect("queue mutex");
    if q.total >= shared.queue_cap {
        let retry = shared.ema_wall_ms.load(Ordering::Relaxed).max(50);
        drop(q);
        send(protocol::ev_rejected(
            Some(id),
            E_QUEUE_FULL,
            "admission queue is full",
            Some(retry),
            None,
        ));
        return;
    }
    let depth = q.total;
    q.push(QueuedJob {
        conn: conn_id,
        id,
        target: req.target,
        workload: req.workload,
        insts,
        out: tx.clone(),
    });
    drop(q);
    shared.cv.notify_one();
    send(protocol::ev_accepted(id, depth));
}

/// One worker: pull, materialize, execute, post the result.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue mutex");
            loop {
                if let Some(job) = q.take_next() {
                    break Some(job);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(q, Duration::from_millis(200))
                    .expect("queue mutex");
                q = guard;
            }
        };
        let Some(job) = job else { return };
        shared.jobs_running.fetch_add(1, Ordering::Relaxed);
        let design = match &job.target {
            JobTarget::Named(name) => designs::by_name(name).expect("admission checked the name"),
            JobTarget::Topology {
                topology,
                ghist_bits,
                lhist_entries,
            } => designs::from_topology(topology, *ghist_bits, *lhist_entries),
        };
        let spec = workload_by_name(&job.workload).expect("admission checked the workload");
        let target_insts = super::exec::warmup_for(job.insts) + job.insts;
        let stride = match shared.progress_stride {
            Some(s) => s,
            None => (job.insts / 4).max(1),
        };
        let progress: Option<(u64, super::exec::ProgressFn)> = if stride == 0 {
            None
        } else {
            let out = job.out.clone();
            let id = job.id;
            Some((
                stride,
                Box::new(move |insts, _cycles| {
                    let _ = out.send(protocol::ev_progress(id, insts, target_insts));
                }),
            ))
        };
        let outcome = execute_job(
            &design,
            CoreConfig::boom_4wide(),
            &spec,
            job.insts,
            shared.cache.as_ref(),
            progress,
        );
        if shared.cache.is_none() {
            debug_assert_eq!(outcome.cache, CacheDisposition::Miss);
        }
        let wall_ms = (outcome.wall_s * 1000.0) as u64;
        // EMA with alpha 1/4, seeding retry_after_ms hints.
        let prev = shared.ema_wall_ms.load(Ordering::Relaxed);
        let next = if prev == 0 {
            wall_ms
        } else {
            (3 * prev + wall_ms) / 4
        };
        shared.ema_wall_ms.store(next.max(1), Ordering::Relaxed);
        // Count the job done *before* emitting the result, so a client
        // that reacts to its result with a `stats` request observes it.
        shared.jobs_running.fetch_sub(1, Ordering::Relaxed);
        shared.jobs_done.fetch_add(1, Ordering::Relaxed);
        let _ = job.out.send(protocol::ev_result(
            job.id,
            outcome.cache.as_str(),
            outcome.wall_s,
            &outcome.report,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(conn: u64, id: u64) -> QueuedJob {
        let (tx, _rx) = mpsc::channel();
        QueuedJob {
            conn,
            id,
            target: JobTarget::Named("B2".into()),
            workload: "gcc".into(),
            insts: 1,
            out: tx,
        }
    }

    #[test]
    fn scheduling_is_round_robin_across_connections() {
        let mut s = SchedState::default();
        // Connection 1 pipelines four jobs before connection 2 submits
        // its two; service must still alternate.
        for id in 0..4 {
            s.push(job(1, id));
        }
        s.push(job(2, 10));
        s.push(job(2, 11));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| s.take_next())
            .map(|j| (j.conn, j.id))
            .collect();
        assert_eq!(
            order,
            vec![(1, 0), (2, 10), (1, 1), (2, 11), (1, 2), (1, 3)]
        );
        assert_eq!(s.total, 0);
        assert!(s.take_next().is_none());
    }

    #[test]
    fn drop_conn_discards_pending_jobs() {
        let mut s = SchedState::default();
        s.push(job(1, 0));
        s.push(job(2, 1));
        s.push(job(1, 2));
        s.drop_conn(1);
        assert_eq!(s.total, 1);
        let j = s.take_next().unwrap();
        assert_eq!((j.conn, j.id), (2, 1));
        assert!(s.take_next().is_none());
    }

    #[test]
    fn listen_parse_accepts_both_schemes() {
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:0").unwrap(),
            Listen::Tcp("127.0.0.1:0".into())
        );
        #[cfg(unix)]
        assert_eq!(
            Listen::parse("unix:/tmp/x.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert!(Listen::parse("udp:1.2.3.4:5").is_err());
        assert!(Listen::parse("tcp:nohostport").is_err());
        #[cfg(unix)]
        assert!(Listen::parse("unix:").is_err());
    }
}
