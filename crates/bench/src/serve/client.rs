//! A small line-oriented client for the `cobra-serve` protocol, used by
//! the `--bench-client` load generator and the end-to-end tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

use super::server::Listen;
use crate::jsonv::{self, Json};

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

/// One protocol connection: a buffered reader over the receive half and
/// an unbuffered writer over the send half.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

impl Client {
    /// Connects to a daemon at `listen`.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(listen: &Listen) -> std::io::Result<Client> {
        let (reader, writer) = match listen {
            Listen::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true)?;
                (Stream::Tcp(s.try_clone()?), Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                let s = UnixStream::connect(path)?;
                (Stream::Unix(s.try_clone()?), Stream::Unix(s))
            }
        };
        Ok(Client {
            reader: BufReader::new(reader),
            writer,
        })
    }

    /// Sends one request line (newline appended).
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one event line; `Ok(None)` on server EOF.
    ///
    /// # Errors
    ///
    /// Read failures.
    pub fn recv(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Ok(Some(trimmed.to_string()));
            }
        }
    }

    /// Receives events until one matches `ev`; intervening events are
    /// handed to `on_other`. `Ok(None)` on EOF before a match.
    ///
    /// # Errors
    ///
    /// Read failures, or an unparsable event line.
    pub fn recv_until(
        &mut self,
        ev: &str,
        mut on_other: impl FnMut(&str, &Json),
    ) -> std::io::Result<Option<(String, Json)>> {
        while let Some(line) = self.recv()? {
            let parsed = jsonv::parse(&line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unparsable event {line:?}: {e}"),
                )
            })?;
            let kind = parsed
                .get("ev")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            if kind == ev {
                return Ok(Some((line, parsed)));
            }
            on_other(&line, &parsed);
        }
        Ok(None)
    }
}
