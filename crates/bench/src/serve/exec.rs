//! Job execution for `cobra-serve`: one function that takes a job
//! identity and produces a [`PerfReport`], consulting the warm cache at
//! both tiers and repopulating it on the way out.
//!
//! The correctness invariant is byte-identity: whatever path a job takes
//! — tier-1 hit, tier-2 partial restore, or a cold run — the report it
//! returns is exactly the report a direct `Core::run_with_warmup` would
//! produce for the same `(design, config, workload, insts)`. Tier 1
//! stores the direct run's report verbatim; tier 2 holds because the
//! machine is deterministic to the committed-instruction boundary (see
//! `resume_from_earlier_boundary_is_byte_identical` in
//! `cobra_uarch::checkpoint`).

use std::io::BufReader;
use std::time::Instant;

use cobra_core::composer::Design;
use cobra_uarch::{
    best_resume_checkpoint, config_hash, restore_checkpoint_resume, CbrMeta, CbsMeta, Core,
    CoreConfig, PerfReport,
};
use cobra_workloads::ProgramSpec;

use super::cache::WarmCache;
use std::sync::atomic::Ordering;

/// Which cache path served a job; rendered into the `result` event and
/// the runner provenance line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Tier-1 exact result hit — no simulation.
    Hit,
    /// Tier-2 checkpoint restore — simulated only past the boundary.
    Warm,
    /// Cold run (including cache-disabled operation).
    Miss,
}

impl CacheDisposition {
    /// The wire spelling used in events and provenance lines.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Warm => "warm",
            CacheDisposition::Miss => "miss",
        }
    }
}

/// What [`execute_job`] hands back.
#[derive(Debug)]
pub struct ExecOutcome {
    /// The performance report — byte-identical to a direct run's.
    pub report: PerfReport,
    /// Which cache path produced it.
    pub cache: CacheDisposition,
    /// Wall-clock seconds spent inside [`execute_job`].
    pub wall_s: f64,
}

/// A committed-instruction progress callback: `(insts_done, target)`.
pub type ProgressFn = Box<dyn FnMut(u64, u64) + Send>;

/// The warmup bound for a measured region, matching the convention used
/// everywhere else in the bench crate (`run_one_sourced`, golden tests).
pub fn warmup_for(measure: u64) -> u64 {
    measure * 2 / 5
}

/// Evaluates `(design, cfg, spec)` for `insts` measured instructions,
/// consulting `cache` (when present) at both tiers and repopulating it.
///
/// `progress` installs a committed-instruction callback with the given
/// stride on any path that actually simulates (tier-1 hits produce no
/// progress events — there is nothing to report progress *on*).
pub fn execute_job(
    design: &Design,
    cfg: CoreConfig,
    spec: &ProgramSpec,
    insts: u64,
    cache: Option<&WarmCache>,
    progress: Option<(u64, ProgressFn)>,
) -> ExecOutcome {
    let started = Instant::now();
    let measure = insts;
    let warmup = warmup_for(measure);
    let workload = spec.name.as_str();
    let result_meta = CbrMeta {
        design: design.name.clone(),
        topology: design.topology.clone(),
        config_hash: config_hash(design, &cfg),
        workload: workload.to_string(),
        insts: measure,
        warmup_insts: warmup,
    };

    // Tier 1: an exact result for this identity skips simulation.
    if let Some(c) = cache {
        if let Some(report) = c.lookup_result(&result_meta) {
            c.stats.hits.fetch_add(1, Ordering::Relaxed);
            return ExecOutcome {
                report,
                cache: CacheDisposition::Hit,
                wall_s: started.elapsed().as_secs_f64(),
            };
        }
    }

    let mut core =
        Core::new(design, cfg, spec.build()).expect("admission gated the topology already");
    let boundary_meta = CbsMeta::for_run(design, &cfg, workload, warmup);

    // Tier 2: restore the latest checkpoint at or before our warmup
    // boundary. A failed restore may leave the core partially
    // overwritten, so rebuild it fresh and fall through to a cold run.
    let mut disposition = CacheDisposition::Miss;
    if let Some(c) = cache {
        if let Some((path, _meta)) = best_resume_checkpoint(c.ckpt_dir(), &boundary_meta) {
            let restored = std::fs::File::open(&path)
                .map_err(cobra_uarch::CbsError::from)
                .and_then(|f| {
                    restore_checkpoint_resume(BufReader::new(f), &boundary_meta, &mut core)
                });
            match restored {
                Ok(_stored_boundary) => {
                    disposition = CacheDisposition::Warm;
                    c.stats.warm.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    c.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "[cobra-serve] ignoring unusable checkpoint {}: {e}",
                        path.display()
                    );
                    core = Core::new(design, cfg, spec.build())
                        .expect("admission gated the topology already");
                }
            }
        }
    }
    if disposition == CacheDisposition::Miss {
        if let Some(c) = cache {
            c.stats.miss.fetch_add(1, Ordering::Relaxed);
        }
    }

    if let Some((every, cb)) = progress {
        core.set_progress(every, cb);
    }

    // Drive to the warmup boundary (a partial re-run from a tier-2
    // restore, or the full warmup when cold — `Core::run` takes an
    // absolute committed-instruction bound, so both are one call), and
    // checkpoint the boundary for future jobs before measuring.
    core.run(warmup, workload);
    if let Some(c) = cache {
        if !c.has_checkpoint(&boundary_meta) {
            c.store_checkpoint(&boundary_meta, &core);
        }
    }

    // The internal warmup loop in run_with_warmup is a no-op: the core
    // already stands at the boundary. This is the same call a direct run
    // makes, so the measurement is byte-identical by construction.
    let report = core.run_with_warmup(warmup, measure, workload);
    if let Some(c) = cache {
        c.store_result(&result_meta, &report);
    }
    ExecOutcome {
        report,
        cache: disposition,
        wall_s: started.elapsed().as_secs_f64(),
    }
}
