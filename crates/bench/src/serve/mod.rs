//! `cobra-serve`: a long-running, sharded evaluation daemon with a
//! two-tier warm-state cache.
//!
//! Interactive topology exploration — the paper's fig. 10 loop of "tweak
//! the composition, re-measure the grid" — pays the full cold-start cost
//! on every invocation when driven through `cobra-bench`: process
//! startup, warm-up simulation, measurement, teardown, for every cell.
//! `cobra-serve` amortizes all of it. The daemon stays resident,
//! accepting `(topology, workload, insts)` jobs over a Unix or TCP
//! socket as newline-delimited JSON, sharding them across the same
//! `COBRA_THREADS`-sized worker pool the batch runner uses, and
//! streaming per-job progress and final reports back to each client.
//!
//! The cache has two tiers, both keyed on the FNV-1a configuration hash
//! that `.cbs` checkpoints carry in their identity header
//! ([`cobra_uarch::config_hash`]):
//!
//! - **tier 1 — results**: an exact `(config hash, workload, insts)`
//!   match returns the stored [`cobra_uarch::PerfReport`] without
//!   simulating at all;
//! - **tier 2 — checkpoints**: a job that misses tier 1 but matches a
//!   stored warm-up checkpoint at an equal-or-earlier boundary restores
//!   it and simulates only the remainder.
//!
//! Both tiers are validated by the binary containers' golden-gate
//! discipline (checksums, identity headers, size caps), so cache
//! corruption degrades to a cold run, never a wrong answer; served
//! reports are byte-identical to direct runs on every path.
//!
//! Module map: [`protocol`] defines the wire format (the normative spec
//! is `docs/SERVE_PROTOCOL.md`), [`cache`] the warm store, [`exec`] the
//! cache-aware execution path, [`server`] the daemon (admission, fair
//! scheduling, worker pool), and [`client`] the line client used by the
//! `--bench-client` load generator and the tests.
//!
//! Environment knobs (all overridable by `cobra-serve` flags; the full
//! table is `docs/CONFIG.md`): `COBRA_SERVE_CACHE` (cache root, `off`
//! disables), `COBRA_SERVE_QUEUE` (admission-queue bound),
//! `COBRA_SERVE_PROGRESS` (progress stride), `COBRA_SERVE_INSTS_CAP`
//! (per-job instruction ceiling).

pub mod cache;
pub mod client;
pub mod exec;
pub mod protocol;
pub mod server;

use std::path::PathBuf;

/// Default admission-queue capacity.
pub const DEFAULT_QUEUE_CAP: usize = 64;
/// Default per-job instruction ceiling.
pub const DEFAULT_INSTS_CAP: u64 = 5_000_000;
/// Default cache root, relative to the daemon's working directory.
pub const DEFAULT_CACHE_DIR: &str = "serve-cache";

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("[cobra-serve] ignoring unparsable {name}={raw:?}");
            None
        }
    }
}

/// The cache root from `COBRA_SERVE_CACHE`: unset → the default
/// `serve-cache/`; `off`, `0`, or empty → disabled (`None`).
pub fn env_cache_dir() -> Option<PathBuf> {
    match std::env::var("COBRA_SERVE_CACHE") {
        Err(_) => Some(PathBuf::from(DEFAULT_CACHE_DIR)),
        Ok(v) => {
            let v = v.trim().to_string();
            if v.is_empty() || v == "off" || v == "0" {
                None
            } else {
                Some(PathBuf::from(v))
            }
        }
    }
}

/// The admission-queue bound from `COBRA_SERVE_QUEUE` (default
/// [`DEFAULT_QUEUE_CAP`], clamped to at least 1).
pub fn env_queue_cap() -> usize {
    env_u64("COBRA_SERVE_QUEUE").map_or(DEFAULT_QUEUE_CAP, |v| (v as usize).max(1))
}

/// The per-job instruction ceiling from `COBRA_SERVE_INSTS_CAP`
/// (default [`DEFAULT_INSTS_CAP`], clamped to at least 1).
pub fn env_insts_cap() -> u64 {
    env_u64("COBRA_SERVE_INSTS_CAP").map_or(DEFAULT_INSTS_CAP, |v| v.max(1))
}

/// The progress stride from `COBRA_SERVE_PROGRESS`: unset → `None`
/// (derive `insts / 4` per job); `0` → `Some(0)` (progress disabled).
pub fn env_progress_stride() -> Option<u64> {
    env_u64("COBRA_SERVE_PROGRESS")
}
