//! The `cobra-serve` wire protocol: newline-delimited JSON, one message
//! per line in both directions.
//!
//! Client→server lines are *requests* keyed by `"op"`; server→client
//! lines are *events* keyed by `"ev"`. The normative specification —
//! every line type, error code, the backpressure contract, and a worked
//! session transcript — is `docs/SERVE_PROTOCOL.md`; this module is the
//! reference implementation. Rendering is canonical (fixed field order,
//! no whitespace), so a served report is byte-identical to the same
//! report rendered directly by [`report_json`] — the property the CI
//! smoke leg diffs.

use crate::jsonv::{self, Json};
use cobra_core::obs::{AttributionReport, ComponentAttribution, ComponentCounters, OverrideEdge};
use cobra_uarch::{PerfCounters, PerfReport};

/// Protocol version, announced in the `hello` event. Bumped on any
/// incompatible wire change.
pub const PROTO_VERSION: u32 = 1;

/// Reject code: the request line is not valid JSON or not a known `op`.
pub const E_PARSE: &str = "E_PARSE";
/// Reject code: the design/topology failed admission (unknown name,
/// parse error, or error-level lint diagnostics — carried in the event).
pub const E_TOPOLOGY: &str = "E_TOPOLOGY";
/// Reject code: the workload name is not a SPECint17 profile or named
/// kernel.
pub const E_WORKLOAD: &str = "E_WORKLOAD";
/// Reject code: the instruction bound is zero or above the server's cap.
pub const E_INSTS: &str = "E_INSTS";
/// Reject code: the admission queue is full; retry after `retry_after_ms`.
pub const E_QUEUE_FULL: &str = "E_QUEUE_FULL";
/// Reject code: the server is draining and accepts no new jobs.
pub const E_DRAINING: &str = "E_DRAINING";

/// What a `submit` request asks to evaluate: a catalog design by name, or
/// a raw topology string resolved against the stock registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobTarget {
    /// A built-in design, resolved via `cobra_core::designs::by_name`.
    Named(String),
    /// A raw topology in the paper's notation, linted at admission.
    Topology {
        /// The topology text, e.g. `"TAGE3 > BTB2 > BIM2"`.
        topology: String,
        /// Global-history bits for the ad-hoc design.
        ghist_bits: u32,
        /// Local-history table entries for the ad-hoc design.
        lhist_entries: u64,
    },
}

impl JobTarget {
    /// The display label of the target (design name or topology text).
    pub fn label(&self) -> &str {
        match self {
            JobTarget::Named(n) => n,
            JobTarget::Topology { topology, .. } => topology,
        }
    }
}

/// A parsed and well-formed `submit` request (identity not yet checked —
/// admission validates the workload and target separately, so it can
/// answer with the precise reject code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReq {
    /// Client-chosen job id, echoed on every event about this job.
    pub id: u64,
    /// What to evaluate.
    pub target: JobTarget,
    /// Workload name.
    pub workload: String,
    /// Measured instruction bound; `None` means the server default.
    pub insts: Option<u64>,
}

/// A parsed client request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake: asks the server to (re-)send its `hello` event.
    Hello,
    /// Liveness probe; answered with `pong`.
    Ping,
    /// Asks for the `stats` event (queue depths, cache counters).
    Stats,
    /// Asks the server to drain: finish queued jobs, then exit.
    Shutdown,
    /// Submits one evaluation job.
    Submit(SubmitReq),
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message for the `E_PARSE` reject event.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = jsonv::parse(line).map_err(|e| e.to_string())?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field `op`")?;
    match op {
        "hello" => Ok(Request::Hello),
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "submit" => {
            let id = v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("submit requires an unsigned integer `id`")?;
            let workload = v
                .get("workload")
                .and_then(Json::as_str)
                .ok_or("submit requires a string `workload`")?
                .to_string();
            let insts = match v.get("insts") {
                None => None,
                Some(j) => Some(j.as_u64().ok_or("`insts` must be an unsigned integer")?),
            };
            let target = match (v.get("design"), v.get("topology")) {
                (Some(d), None) => {
                    JobTarget::Named(d.as_str().ok_or("`design` must be a string")?.to_string())
                }
                (None, Some(t)) => JobTarget::Topology {
                    topology: t.as_str().ok_or("`topology` must be a string")?.to_string(),
                    ghist_bits: match v.get("ghist_bits") {
                        None => 32,
                        Some(g) => u32::try_from(
                            g.as_u64()
                                .ok_or("`ghist_bits` must be an unsigned integer")?,
                        )
                        .map_err(|_| "`ghist_bits` out of range")?,
                    },
                    lhist_entries: match v.get("lhist_entries") {
                        None => 0,
                        Some(l) => l
                            .as_u64()
                            .ok_or("`lhist_entries` must be an unsigned integer")?,
                    },
                },
                (Some(_), Some(_)) => {
                    return Err("submit takes `design` or `topology`, not both".into())
                }
                (None, None) => return Err("submit requires `design` or `topology`".into()),
            };
            Ok(Request::Submit(SubmitReq {
                id,
                target,
                workload,
                insts,
            }))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Renders a `submit` request line — the client-side inverse of
/// [`parse_request`].
pub fn submit_line(id: u64, target: &JobTarget, workload: &str, insts: u64) -> String {
    match target {
        JobTarget::Named(name) => format!(
            "{{\"op\":\"submit\",\"id\":{id},\"design\":{},\"workload\":{},\"insts\":{insts}}}",
            jsonv::escape(name),
            jsonv::escape(workload)
        ),
        JobTarget::Topology {
            topology,
            ghist_bits,
            lhist_entries,
        } => format!(
            "{{\"op\":\"submit\",\"id\":{id},\"topology\":{},\"ghist_bits\":{ghist_bits},\
             \"lhist_entries\":{lhist_entries},\"workload\":{},\"insts\":{insts}}}",
            jsonv::escape(topology),
            jsonv::escape(workload)
        ),
    }
}

/// The `hello` event, sent once on connect (and again on a `hello` op).
pub fn ev_hello(threads: usize, queue_cap: usize, insts_cap: u64) -> String {
    format!(
        "{{\"ev\":\"hello\",\"proto\":{PROTO_VERSION},\"threads\":{threads},\
         \"queue_cap\":{queue_cap},\"insts_cap\":{insts_cap}}}"
    )
}

/// The `accepted` event: the job passed admission and is queued at depth
/// `queued` (jobs ahead of it across all connections).
pub fn ev_accepted(id: u64, queued: usize) -> String {
    format!("{{\"ev\":\"accepted\",\"id\":{id},\"queued\":{queued}}}")
}

/// The `rejected` event. `id` is absent for lines that failed before an
/// id could be parsed; `retry_after_ms` is present only for
/// [`E_QUEUE_FULL`]; `diagnostics` is a pre-rendered JSON array of
/// C-code diagnostic objects, present only for [`E_TOPOLOGY`] lint
/// failures.
pub fn ev_rejected(
    id: Option<u64>,
    code: &str,
    msg: &str,
    retry_after_ms: Option<u64>,
    diagnostics: Option<&str>,
) -> String {
    let mut out = String::from("{\"ev\":\"rejected\"");
    if let Some(id) = id {
        out.push_str(&format!(",\"id\":{id}"));
    }
    out.push_str(&format!(
        ",\"code\":{},\"msg\":{}",
        jsonv::escape(code),
        jsonv::escape(msg)
    ));
    if let Some(ms) = retry_after_ms {
        out.push_str(&format!(",\"retry_after_ms\":{ms}"));
    }
    if let Some(d) = diagnostics {
        out.push_str(&format!(",\"diagnostics\":{d}"));
    }
    out.push('}');
    out
}

/// The `progress` event: the job has committed `insts` of `target`
/// instructions (warm-up plus measured region).
pub fn ev_progress(id: u64, insts: u64, target: u64) -> String {
    format!("{{\"ev\":\"progress\",\"id\":{id},\"insts\":{insts},\"target\":{target}}}")
}

/// The `result` event. `report` is rendered by [`report_json`] and is
/// deliberately the *last* field, so a client can recover the report's
/// exact bytes as the substring after `"report":` minus the final `}` —
/// no re-serialization, no byte drift.
pub fn ev_result(id: u64, cache: &str, wall_s: f64, report: &PerfReport) -> String {
    format!(
        "{{\"ev\":\"result\",\"id\":{id},\"cache\":{},\"wall_s\":{wall_s:.6},\"report\":{}}}",
        jsonv::escape(cache),
        report_json(report)
    )
}

/// The `pong` event.
pub fn ev_pong() -> String {
    "{\"ev\":\"pong\"}".to_string()
}

/// The `bye` event, the last line before the server closes a draining
/// connection.
pub fn ev_bye() -> String {
    "{\"ev\":\"bye\"}".to_string()
}

/// The canonical JSON rendering of a [`PerfReport`] — fixed field order,
/// no whitespace, every counter and the full attribution (component rows
/// in dataflow order, override edges in histogram order). This is the
/// byte-identity unit: a served report and a direct run's report render
/// to identical bytes exactly when the reports are equal.
pub fn report_json(r: &PerfReport) -> String {
    let c = &r.counters;
    let mut out = format!(
        "{{\"design\":{},\"workload\":{},\"counters\":{{\"cycles\":{},\
         \"committed_insts\":{},\"cond_branches\":{},\"cfis\":{},\
         \"cond_mispredicts\":{},\"target_mispredicts\":{},\
         \"override_redirects\":{},\"history_replays\":{},\"fetch_bubbles\":{},\
         \"icache_stall_cycles\":{},\"rob_stall_cycles\":{}}}",
        jsonv::escape(&r.design),
        jsonv::escape(&r.workload),
        c.cycles,
        c.committed_insts,
        c.cond_branches,
        c.cfis,
        c.cond_mispredicts,
        c.target_mispredicts,
        c.override_redirects,
        c.history_replays,
        c.fetch_bubbles,
        c.icache_stall_cycles,
        c.rob_stall_cycles
    );
    let a = &r.attribution;
    out.push_str(",\"attribution\":{\"components\":[");
    for (i, comp) in a.components.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let d = &comp.counters;
        out.push_str(&format!(
            "{{\"label\":{},\"queries\":{},\"fires\":{},\"mispredict_events\":{},\
             \"repairs\":{},\"updates\":{},\"provided_final\":{},\"overridden\":{},\
             \"direction_blame\":{},\"target_blame\":{}}}",
            jsonv::escape(&comp.label),
            d.queries,
            d.fires,
            d.mispredict_events,
            d.repairs,
            d.updates,
            d.provided_final,
            d.overridden,
            d.direction_blame,
            d.target_blame
        ));
    }
    out.push_str(&format!(
        "],\"packets_with_prediction\":{},\"hf_high_water\":{},\
         \"ghist_snapshot_repairs\":{},\"lhist_repairs\":{},\"overrides\":[",
        a.packets_with_prediction, a.hf_high_water, a.ghist_snapshot_repairs, a.lhist_repairs
    ));
    for (i, e) in a.overrides.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"winner\":{},\"loser\":{},\"count\":{}}}",
            jsonv::escape(&e.winner),
            jsonv::escape(&e.loser),
            e.count
        ));
    }
    out.push_str("]}}");
    out
}

/// Recovers the exact bytes of the `report` field from a `result` event
/// line — the substring after `"report":` minus the event's closing `}`.
/// Valid because [`ev_result`] renders the report last.
pub fn report_bytes(result_line: &str) -> Option<&str> {
    let start = result_line.find("\"report\":")? + "\"report\":".len();
    let end = result_line.len().checked_sub(1)?;
    (end > start && result_line.ends_with('}')).then(|| &result_line[start..end])
}

/// Decodes a [`report_json`] rendering (or any JSON value matching its
/// schema) back into a [`PerfReport`].
///
/// # Errors
///
/// Names the first missing or ill-typed field.
pub fn report_from_json(v: &Json) -> Result<PerfReport, String> {
    let design = v
        .get("design")
        .and_then(Json::as_str)
        .ok_or("missing `design`")?
        .to_string();
    let workload = v
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("missing `workload`")?
        .to_string();
    let cv = v.get("counters").ok_or("missing `counters`")?;
    let cf = |k: &str| -> Result<u64, String> {
        cv.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing counter `{k}`"))
    };
    let counters = PerfCounters {
        cycles: cf("cycles")?,
        committed_insts: cf("committed_insts")?,
        cond_branches: cf("cond_branches")?,
        cfis: cf("cfis")?,
        cond_mispredicts: cf("cond_mispredicts")?,
        target_mispredicts: cf("target_mispredicts")?,
        override_redirects: cf("override_redirects")?,
        history_replays: cf("history_replays")?,
        fetch_bubbles: cf("fetch_bubbles")?,
        icache_stall_cycles: cf("icache_stall_cycles")?,
        rob_stall_cycles: cf("rob_stall_cycles")?,
    };
    let av = v.get("attribution").ok_or("missing `attribution`")?;
    let af = |k: &str| -> Result<u64, String> {
        av.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing attribution field `{k}`"))
    };
    let mut components = Vec::new();
    for comp in av
        .get("components")
        .and_then(Json::as_arr)
        .ok_or("missing `components`")?
    {
        let label = comp
            .get("label")
            .and_then(Json::as_str)
            .ok_or("component missing `label`")?
            .to_string();
        let g = |k: &str| -> Result<u64, String> {
            comp.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("component missing `{k}`"))
        };
        components.push(ComponentAttribution {
            label,
            counters: ComponentCounters {
                queries: g("queries")?,
                fires: g("fires")?,
                mispredict_events: g("mispredict_events")?,
                repairs: g("repairs")?,
                updates: g("updates")?,
                provided_final: g("provided_final")?,
                overridden: g("overridden")?,
                direction_blame: g("direction_blame")?,
                target_blame: g("target_blame")?,
            },
        });
    }
    let mut overrides = Vec::new();
    for e in av
        .get("overrides")
        .and_then(Json::as_arr)
        .ok_or("missing `overrides`")?
    {
        overrides.push(OverrideEdge {
            winner: e
                .get("winner")
                .and_then(Json::as_str)
                .ok_or("override missing `winner`")?
                .to_string(),
            loser: e
                .get("loser")
                .and_then(Json::as_str)
                .ok_or("override missing `loser`")?
                .to_string(),
            count: e
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("override missing `count`")?,
        });
    }
    Ok(PerfReport {
        workload,
        design,
        counters,
        attribution: AttributionReport {
            components,
            packets_with_prediction: af("packets_with_prediction")?,
            hf_high_water: af("hf_high_water")?,
            ghist_snapshot_repairs: af("ghist_snapshot_repairs")?,
            lhist_repairs: af("lhist_repairs")?,
            overrides,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfReport {
        PerfReport {
            workload: "gcc".into(),
            design: "B2".into(),
            counters: PerfCounters {
                cycles: 100,
                committed_insts: 200,
                cond_branches: 30,
                cfis: 40,
                cond_mispredicts: 5,
                target_mispredicts: 1,
                override_redirects: 2,
                history_replays: 3,
                fetch_bubbles: 9,
                icache_stall_cycles: 4,
                rob_stall_cycles: 6,
            },
            attribution: AttributionReport {
                components: vec![ComponentAttribution {
                    label: "GBIM2".into(),
                    counters: ComponentCounters {
                        queries: 7,
                        ..Default::default()
                    },
                }],
                packets_with_prediction: 11,
                hf_high_water: 12,
                ghist_snapshot_repairs: 13,
                lhist_repairs: 14,
                overrides: vec![OverrideEdge {
                    winner: "GBIM2".into(),
                    loser: "BIM1".into(),
                    count: 15,
                }],
            },
        }
    }

    #[test]
    fn submit_round_trips() {
        let line = submit_line(7, &JobTarget::Named("TAGE-L".into()), "gcc", 20_000);
        match parse_request(&line).unwrap() {
            Request::Submit(s) => {
                assert_eq!(s.id, 7);
                assert_eq!(s.target, JobTarget::Named("TAGE-L".into()));
                assert_eq!(s.workload, "gcc");
                assert_eq!(s.insts, Some(20_000));
            }
            other => panic!("parsed {other:?}"),
        }
        let line = submit_line(
            8,
            &JobTarget::Topology {
                topology: "TAGE3 > BIM2".into(),
                ghist_bits: 64,
                lhist_entries: 128,
            },
            "xz",
            9,
        );
        match parse_request(&line).unwrap() {
            Request::Submit(s) => {
                assert_eq!(
                    s.target,
                    JobTarget::Topology {
                        topology: "TAGE3 > BIM2".into(),
                        ghist_bits: 64,
                        lhist_entries: 128,
                    }
                );
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parse_rejections_are_precise() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"warp\"}").is_err());
        assert!(
            parse_request("{\"op\":\"submit\",\"id\":1,\"workload\":\"gcc\"}")
                .unwrap_err()
                .contains("design")
        );
        assert!(parse_request(
            "{\"op\":\"submit\",\"id\":1,\"design\":\"B2\",\"topology\":\"X\",\"workload\":\"gcc\"}"
        )
        .unwrap_err()
        .contains("not both"));
        assert!(
            parse_request("{\"op\":\"submit\",\"design\":\"B2\",\"workload\":\"gcc\"}").is_err()
        );
    }

    #[test]
    fn report_json_round_trips_and_is_recoverable() {
        let r = sample();
        let rendered = report_json(&r);
        let parsed = jsonv::parse(&rendered).unwrap();
        assert_eq!(report_from_json(&parsed).unwrap(), r);
        // The result event carries the report as its last field, so the
        // raw bytes are recoverable without re-serialization.
        let line = ev_result(3, "miss", 1.25, &r);
        assert_eq!(report_bytes(&line), Some(rendered.as_str()));
        let parsed_line = jsonv::parse(&line).unwrap();
        assert_eq!(
            parsed_line.get("cache").and_then(Json::as_str),
            Some("miss")
        );
        assert_eq!(parsed_line.get("id").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn events_are_valid_json() {
        for line in [
            ev_hello(8, 64, 5_000_000),
            ev_accepted(1, 3),
            ev_rejected(Some(2), E_QUEUE_FULL, "queue full", Some(120), None),
            ev_rejected(None, E_PARSE, "bad line", None, None),
            ev_rejected(
                Some(4),
                E_TOPOLOGY,
                "lint failed",
                None,
                Some("[{\"code\":\"C0201\"}]"),
            ),
            ev_progress(1, 5_000, 28_000),
            ev_pong(),
            ev_bye(),
        ] {
            jsonv::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }
}
