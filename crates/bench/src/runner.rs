//! The parallel experiment runner.
//!
//! Every harness binary that reproduces a paper table or figure runs a
//! (design × workload) grid of independent simulations — embarrassingly
//! parallel work the paper itself distributes across FireSim FPGA
//! instances (Section V). This module fans the grid out across OS threads:
//!
//! * [`parallel_map`] — deterministic-order parallel map over a slice,
//!   using [`std::thread::scope`] plus an atomic work-queue index (no
//!   external dependencies);
//! * [`run_grid`] — the simulation-shaped convenience: a slice of
//!   [`Job`]s in, a [`JobResult`] per job out (same order), each with the
//!   [`PerfReport`], its wall-clock time, and simulated MIPS.
//!
//! Thread count comes from the `COBRA_THREADS` environment variable
//! (default: available hardware parallelism). Results are returned in job
//! order regardless of completion order, and each job is a fully
//! independent seeded simulation, so the printed report rows are
//! byte-identical whatever the thread count — the determinism test in
//! `tests/` enforces exactly that.
//!
//! Per-job progress and the end-of-grid throughput summary go to stderr,
//! keeping stdout (the tables the binaries exist to print) stable for
//! diffing against `results/`. Each stderr progress line carries the
//! job's stable grid id (`job07`), which is also the tag substituted into
//! any `COBRA_TRACE` template so concurrent jobs trace to distinct files.
//! Setting `COBRA_METRICS=<path>` additionally appends one JSONL record
//! per job (same id, in job order) once the grid completes.

use crate::{jsonv, run_one_sourced};
use cobra_core::composer::Design;
use cobra_uarch::{CoreConfig, PerfReport};
use cobra_workloads::ProgramSpec;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Worker threads to use: `COBRA_THREADS` if set (clamped to ≥ 1), else
/// the machine's available parallelism.
pub fn threads() -> usize {
    match std::env::var("COBRA_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                eprintln!(
                    "[runner] warning: COBRA_THREADS={v:?} is not a number; \
                     using available parallelism"
                );
                default_threads()
            }
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` across `threads` OS threads,
/// returning the results in item order regardless of completion order.
///
/// Work is distributed through a shared atomic index (a lock-free work
/// queue), so long and short jobs interleave without static partitioning
/// imbalance. With `threads <= 1` the map runs inline on the calling
/// thread — bit-identical results either way, as long as `f` itself is
/// deterministic per item.
///
/// # Panics
///
/// Propagates a panic from any worker once all threads have joined.
pub fn parallel_map_on<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed and completed")
        })
        .collect()
}

/// [`parallel_map_on`] with the [`threads`] default.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_on(threads(), items, f)
}

/// One cell of an experiment grid: a design, a core configuration, and a
/// workload.
pub struct Job<'a> {
    /// The predictor design to compose.
    pub design: &'a Design,
    /// Host-core configuration.
    pub cfg: CoreConfig,
    /// The workload to run.
    pub spec: &'a ProgramSpec,
}

impl<'a> Job<'a> {
    /// A job with the stock 4-wide BOOM configuration.
    pub fn new(design: &'a Design, cfg: CoreConfig, spec: &'a ProgramSpec) -> Self {
        Self { design, cfg, spec }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.design.name, self.spec.name)
    }
}

/// The outcome of one grid job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The measured-region performance report.
    pub report: PerfReport,
    /// Wall-clock time of the whole job (warm-up + measured region).
    pub wall: Duration,
    /// The `.cbt` file replayed when the job ran trace-driven
    /// (`COBRA_TRACE_DIR`); `None` for execution-driven jobs. Carried so
    /// both the stderr progress line and the `COBRA_METRICS` record can
    /// say which jobs replayed a trace.
    pub trace: Option<std::path::PathBuf>,
    /// The `.cbs` file restored when the job skipped its warm-up via a
    /// warm-state checkpoint (`COBRA_CKPT_DIR`); `None` for jobs that
    /// warmed up from scratch. Carried for the same reporting surfaces
    /// as `trace`.
    pub checkpoint: Option<std::path::PathBuf>,
    /// The `.cbm` interval-telemetry file the job wrote when
    /// `COBRA_INTERVAL` armed the engine (`None` otherwise). Carried for
    /// the same reporting surfaces as `trace`.
    pub metrics: Option<std::path::PathBuf>,
    /// The `cobra-serve` endpoint that produced this report when the job
    /// was served rather than simulated in-process (`None` for direct
    /// runs). Carried so cobra-report can attribute wall-time wins to
    /// the daemon.
    pub served: Option<String>,
    /// How the serving daemon satisfied the job: `"hit"` (tier-1 result
    /// cache), `"warm"` (tier-2 checkpoint restore), or `"miss"` (full
    /// simulation). `None` for direct runs.
    pub cache: Option<String>,
}

impl JobResult {
    /// Simulated millions of instructions per wall-clock second, counting
    /// the measured region's committed instructions against the whole
    /// job's wall time (warm-up included) — a conservative throughput
    /// figure for capacity planning.
    pub fn mips(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.report.counters.committed_insts as f64 / secs / 1e6
    }

    /// The provenance suffix of a stderr progress line (` trace=…`,
    /// ` ckpt=…`, ` cbm=…`, ` served=…`, ` cache=…`); empty for a plain
    /// execution-driven job. Shared between [`run_grid_on`] and the
    /// `cobra-serve` bench client so served and direct logs read alike.
    pub fn provenance_note(&self) -> String {
        let mut note = String::new();
        if let Some(p) = &self.trace {
            note.push_str(&format!(" trace={}", p.display()));
        }
        if let Some(p) = &self.checkpoint {
            note.push_str(&format!(" ckpt={}", p.display()));
        }
        if let Some(p) = &self.metrics {
            note.push_str(&format!(" cbm={}", p.display()));
        }
        if let Some(s) = &self.served {
            note.push_str(&format!(" served={s}"));
        }
        if let Some(c) = &self.cache {
            note.push_str(&format!(" cache={c}"));
        }
        note
    }
}

/// Runs `jobs` on `threads` worker threads. Results come back in job
/// order; each row is bit-identical to what a serial loop over
/// [`run_one`](crate::run_one) would produce.
pub fn run_grid_on(threads: usize, jobs: &[Job<'_>]) -> Vec<JobResult> {
    let total = jobs.len();
    let started = Instant::now();
    let done = AtomicUsize::new(0);
    let results = parallel_map_on(threads, jobs, |i, job| {
        let tag = job_id(i);
        let t = Instant::now();
        let outcome = run_one_sourced(
            job.design,
            job.cfg,
            job.spec,
            Some(&format!("{tag}-{}-{}", job.design.name, job.spec.name)),
        );
        let r = JobResult {
            report: outcome.report,
            wall: t.elapsed(),
            trace: outcome.trace,
            checkpoint: outcome.checkpoint,
            metrics: outcome.metrics,
            served: None,
            cache: None,
        };
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        // Replayed / restored / served jobs carry their provenance so
        // trace-driven and warmup-skipping grid runs are distinguishable
        // from plain execution-driven ones in the logs.
        let note = r.provenance_note();
        eprintln!(
            "[runner] {n}/{total} {tag} {:<28} {:>7.2}s {:>7.2} MIPS{note}",
            job.label(),
            r.wall.as_secs_f64(),
            r.mips()
        );
        r
    });
    if let Ok(path) = std::env::var("COBRA_METRICS") {
        if !path.trim().is_empty() {
            let lines: Vec<String> = results
                .iter()
                .enumerate()
                .map(|(i, r)| metrics_record(&job_id(i), r))
                .collect();
            if let Err(e) = write_metrics(path.trim(), &lines) {
                eprintln!("[runner] warning: could not write COBRA_METRICS={path:?}: {e}");
            }
        }
    }
    let wall = started.elapsed().as_secs_f64();
    let insts: u64 = results
        .iter()
        .map(|r| r.report.counters.committed_insts)
        .sum();
    // Summed per-job wall clock, not CPU time: when threads oversubscribe
    // the cores, a job's wall includes time spent descheduled.
    let job_secs: f64 = results.iter().map(|r| r.wall.as_secs_f64()).sum();
    eprintln!(
        "[runner] grid done: {total} jobs on {} thread(s), {wall:.2}s wall \
         ({job_secs:.2} job-seconds, {:.2} aggregate MIPS)",
        threads.clamp(1, total.max(1)),
        if wall > 0.0 {
            insts as f64 / wall / 1e6
        } else {
            0.0
        }
    );
    results
}

/// [`run_grid_on`] with the [`threads`] default — what the harness
/// binaries call.
pub fn run_grid(jobs: &[Job<'_>]) -> Vec<JobResult> {
    run_grid_on(threads(), jobs)
}

/// The stable id of grid position `i` (`job00`, `job01`, …) — the tag on
/// the stderr progress line, the `COBRA_TRACE` file-name context, and the
/// `job` field of each metrics record.
pub fn job_id(i: usize) -> String {
    format!("job{i:02}")
}

/// The packet-path mode the next composed pipeline will use, as a stable
/// string for machine-readable output: `"plan"` (compiled execution plan)
/// or `"interpreter"` (`COBRA_PLAN=off`).
pub fn packet_path_mode() -> &'static str {
    if cobra_core::composer::plan_env_enabled() {
        "plan"
    } else {
        "interpreter"
    }
}

/// A machine-readable summary of a finished grid: total wall clock,
/// aggregate MIPS, packet-path mode, thread count, and one record per
/// job. What the fig10 harness writes to `results/bench_fig10.json`.
pub fn grid_summary_json(results: &[JobResult], threads: usize, wall: Duration) -> String {
    let insts: u64 = results
        .iter()
        .map(|r| r.report.counters.committed_insts)
        .sum();
    let wall_s = wall.as_secs_f64();
    let mips = if wall_s > 0.0 {
        insts as f64 / wall_s / 1e6
    } else {
        0.0
    };
    let jobs: Vec<String> = results
        .iter()
        .enumerate()
        .map(|(i, r)| format!("  {}", metrics_record(&job_id(i), r)))
        .collect();
    format!(
        "{{\n\"mode\":{},\n\"threads\":{threads},\n\"jobs_n\":{},\n\"wall_s\":{wall_s:.6},\n\
         \"aggregate_mips\":{mips:.3},\n\"insts\":{insts},\n\"jobs\":[\n{}\n]\n}}",
        jsonv::escape(packet_path_mode()),
        results.len(),
        jobs.join(",\n")
    )
}

/// Writes [`grid_summary_json`] to `path`, creating parent directories as
/// needed. Failures are reported to stderr but never fail the run — the
/// tables on stdout are the primary artifact.
pub fn write_grid_summary(path: &str, results: &[JobResult], threads: usize, wall: Duration) {
    let json = grid_summary_json(results, threads, wall);
    let write = || -> std::io::Result<()> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, json.as_bytes())?;
        Ok(())
    };
    match write() {
        Ok(()) => eprintln!("[runner] grid summary written to {path}"),
        Err(e) => eprintln!("[runner] warning: could not write {path}: {e}"),
    }
}

/// One JSONL metrics record for a finished job — also what `cobra-trace
/// --metrics` emits, so both surfaces share one schema.
pub fn metrics_record(job_id: &str, r: &JobResult) -> String {
    let c = &r.report.counters;
    // Replayed / restored jobs record their provenance paths so
    // trace-driven and checkpoint-restored runs are distinguishable when
    // mining the metrics stream.
    let mut trace_field = match &r.trace {
        Some(p) => format!(",\"trace\":{}", jsonv::escape(&p.display().to_string())),
        None => String::new(),
    };
    if let Some(p) = &r.checkpoint {
        trace_field.push_str(&format!(
            ",\"checkpoint\":{}",
            jsonv::escape(&p.display().to_string())
        ));
    }
    if let Some(p) = &r.metrics {
        trace_field.push_str(&format!(
            ",\"metrics\":{}",
            jsonv::escape(&p.display().to_string())
        ));
    }
    if let Some(s) = &r.served {
        trace_field.push_str(&format!(",\"served\":{}", jsonv::escape(s)));
    }
    if let Some(c) = &r.cache {
        trace_field.push_str(&format!(",\"cache\":{}", jsonv::escape(c)));
    }
    format!(
        "{{\"job\":{},\"design\":{},\"workload\":{},\"wall_s\":{:.6},\"mips\":{:.3},\
         \"ipc\":{:.4},\"mpki\":{:.4},\"acc\":{:.4},\"insts\":{},\"cycles\":{},\
         \"branch_misses\":{}{trace_field}}}",
        jsonv::escape(job_id),
        jsonv::escape(&r.report.design),
        jsonv::escape(&r.report.workload),
        r.wall.as_secs_f64(),
        r.mips(),
        c.ipc(),
        c.mpki(),
        c.branch_accuracy(),
        c.committed_insts,
        c.cycles,
        c.branch_misses()
    )
}

/// Appends `lines` (one JSONL record each) to `path`, creating parent
/// directories and the file as needed.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be created or
/// written.
pub fn write_metrics(path: &str, lines: &[String]) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for line in lines {
        writeln!(f, "{line}")?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map_on(4, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_inline() {
        let items = vec![1, 2, 3];
        let out = parallel_map_on(1, &items, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn parallel_map_empty() {
        let items: Vec<u32> = vec![];
        let out = parallel_map_on(8, &items, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let items: Vec<u64> = (0..64).collect();
        let serial = parallel_map_on(1, &items, |i, &x| x.wrapping_mul(i as u64 + 7));
        let parallel = parallel_map_on(8, &items, |i, &x| x.wrapping_mul(i as u64 + 7));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn metrics_record_is_valid_json() {
        let r = JobResult {
            report: PerfReport {
                workload: "gcc \"ref\"".into(),
                design: "TAGE-L".into(),
                counters: Default::default(),
                attribution: Default::default(),
            },
            wall: Duration::from_millis(1234),
            trace: None,
            checkpoint: None,
            metrics: None,
            served: None,
            cache: None,
        };
        let line = metrics_record(&job_id(3), &r);
        let v = jsonv::parse(&line).expect("record parses");
        assert_eq!(v.get("job").and_then(jsonv::Json::as_str), Some("job03"));
        assert_eq!(
            v.get("workload").and_then(jsonv::Json::as_str),
            Some("gcc \"ref\"")
        );
        assert_eq!(
            v.get("branch_misses").and_then(jsonv::Json::as_u64),
            Some(0)
        );
        // Execution-driven records have no trace field at all …
        assert!(v.get("trace").is_none());
        // … replayed jobs carry the trace path.
        let replayed = JobResult {
            trace: Some(std::path::PathBuf::from("/tmp/traces/gcc.cbt")),
            ..r
        };
        let line = metrics_record(&job_id(3), &replayed);
        let v = jsonv::parse(&line).expect("record parses");
        assert_eq!(
            v.get("trace").and_then(jsonv::Json::as_str),
            Some("/tmp/traces/gcc.cbt")
        );
        // … and served jobs carry the endpoint plus cache disposition.
        let served = JobResult {
            served: Some("unix:/tmp/cobra-serve.sock".into()),
            cache: Some("hit".into()),
            ..replayed
        };
        let line = metrics_record(&job_id(3), &served);
        let v = jsonv::parse(&line).expect("record parses");
        assert_eq!(
            v.get("served").and_then(jsonv::Json::as_str),
            Some("unix:/tmp/cobra-serve.sock")
        );
        assert_eq!(v.get("cache").and_then(jsonv::Json::as_str), Some("hit"));
    }

    #[test]
    fn thread_env_parsing_clamps() {
        // Cannot mutate the environment safely in parallel tests; exercise
        // only the default path.
        assert!(threads() >= 1);
    }
}
