//! Published reference values from the paper, printed beside measured
//! results so every harness shows paper-vs-measured in one table.

/// Table I storage budgets, in kilobytes.
pub const TABLE1_STORAGE_KB: [(&str, f64); 3] =
    [("Tournament", 6.8), ("B2", 6.5), ("TAGE-L", 28.0)];

/// Component-storage accounting of this reproduction's stock designs, in
/// kilobytes — the drift baseline for `cobra-lint`'s C0401 check.
///
/// These are *measured* from the component models, not the paper's Table I
/// figures (this reproduction sizes a few structures differently, e.g. the
/// 2K-entry BTB's payload); the paper numbers stay in
/// [`TABLE1_STORAGE_KB`] and are reported as an informational delta
/// (C0402). Update these values deliberately when a component's tables are
/// resized.
pub const MEASURED_STORAGE_KB: [(&str, f64); 3] =
    [("Tournament", 14.0), ("B2", 20.8), ("TAGE-L", 28.1)];

/// The measured baseline for `design`, when one is recorded.
pub fn measured_storage_kb(design: &str) -> Option<f64> {
    MEASURED_STORAGE_KB
        .iter()
        .find(|(n, _)| *n == design)
        .map(|&(_, kb)| kb)
}

/// The paper's Table I figure for `design`, when one is recorded.
pub fn table1_storage_kb(design: &str) -> Option<f64> {
    TABLE1_STORAGE_KB
        .iter()
        .find(|(n, _)| *n == design)
        .map(|&(_, kb)| kb)
}

/// Fig 10 reference series: approximate branch-MPKI read off the paper's
/// figure for the three COBRA-BOOM variants, per benchmark
/// (perlbench, gcc, mcf, omnetpp, xalancbmk, x264, deepsjeng, leela,
/// exchange2, xz).
pub const FIG10_MPKI_TAGE_L: [f64; 10] = [2.0, 5.0, 12.0, 5.0, 2.0, 1.0, 6.5, 12.5, 1.5, 6.0];
/// B2 reference MPKI series (see [`FIG10_MPKI_TAGE_L`]).
pub const FIG10_MPKI_B2: [f64; 10] = [4.5, 9.0, 16.0, 8.0, 4.0, 2.5, 10.0, 17.0, 3.5, 8.0];
/// Tournament reference MPKI series (see [`FIG10_MPKI_TAGE_L`]).
pub const FIG10_MPKI_TOURNAMENT: [f64; 10] = [6.0, 11.0, 16.5, 9.0, 5.5, 3.0, 11.0, 18.0, 4.0, 8.5];

/// Fig 10 commercial-core reference points (approximate): MPKI and IPC for
/// Intel Skylake and AWS Graviton on the same suite. The paper notes the
/// comparison "is approximate due to different ISAs".
pub const FIG10_SKYLAKE: [(f64, f64); 10] = [
    (1.0, 1.9),
    (3.5, 1.2),
    (9.0, 0.5),
    (3.0, 0.6),
    (1.0, 1.3),
    (0.8, 2.2),
    (4.5, 1.6),
    (9.5, 1.4),
    (1.0, 2.3),
    (4.0, 1.1),
];
/// Graviton reference points (see [`FIG10_SKYLAKE`]).
pub const FIG10_GRAVITON: [(f64, f64); 10] = [
    (1.8, 1.1),
    (5.0, 0.8),
    (11.0, 0.35),
    (4.5, 0.4),
    (1.8, 0.9),
    (1.2, 1.4),
    (6.0, 1.0),
    (12.0, 0.9),
    (1.8, 1.5),
    (5.5, 0.7),
];

/// Section VI headline numbers.
pub mod sec6 {
    /// §VI-A: IPC degradation from the 3-cycle (vs 2-cycle) TAGE.
    pub const TAGE_LATENCY_IPC_LOSS_PCT: f64 = 1.0;
    /// §VI-B: mean IPC gain from replaying fetch on history repair.
    pub const REPLAY_IPC_GAIN_PCT: f64 = 15.0;
    /// §VI-B: mispredict-rate reduction from replaying.
    pub const REPLAY_MISPREDICT_REDUCTION_PCT: f64 = 25.0;
    /// §VI-B: Dhrystone IPC cost of replaying.
    pub const REPLAY_DHRYSTONE_IPC_LOSS_PCT: f64 = 3.0;
    /// §VI-C: CoreMark accuracy without / with SFB predication.
    pub const SFB_ACCURACY: (f64, f64) = (97.0, 99.1);
    /// §VI-C: CoreMarks/MHz without / with SFB predication.
    pub const SFB_COREMARKS_PER_MHZ: (f64, f64) = (4.9, 6.1);
    /// §I: IPC loss from serializing fetch behind branches (Dhrystone).
    pub const SERIALIZATION_IPC_LOSS_PCT: f64 = 15.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_series_cover_all_benchmarks() {
        assert_eq!(FIG10_MPKI_TAGE_L.len(), 10);
        assert_eq!(FIG10_SKYLAKE.len(), 10);
        // The paper's ordering: TAGE-L is the most accurate design on
        // every benchmark.
        for i in 0..10 {
            assert!(FIG10_MPKI_TAGE_L[i] <= FIG10_MPKI_B2[i]);
            assert!(FIG10_MPKI_B2[i] <= FIG10_MPKI_TOURNAMENT[i]);
        }
    }
}
