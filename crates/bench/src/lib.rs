//! # cobra-bench
//!
//! The experiment harness: one binary per table and figure of the paper,
//! each printing the same rows/series the paper reports, next to the
//! paper's published values where they exist.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1_storage` | Table I — predictor storage budgets |
//! | `table2_config` | Table II — core configuration |
//! | `table3_systems` | Table III — evaluated systems |
//! | `fig7_pipelines` | Fig 7 — pipeline diagrams of the three designs |
//! | `fig8_area` | Fig 8 — predictor area breakdowns |
//! | `fig9_core_area` | Fig 9 — core area with each predictor |
//! | `fig10_spec` | Fig 10 — SPECint17 MPKI and IPC |
//! | `intro_serialization` | §I — serialized-fetch IPC loss on Dhrystone |
//! | `sec6a_tage_latency` | §VI-A — 2-cycle vs 3-cycle TAGE |
//! | `sec6b_ghist_repair` | §VI-B — history repair-with-replay sweep |
//! | `sec6c_sfb` | §VI-C — short-forwards-branch predication |
//! | `trace_vs_hardware` | §II-B — trace-model error vs the speculating core |
//! | `ablation_superscalar` | §III-C — superscalar vs per-packet counter tables |
//! | `ablation_ittage` | extension — ITTAGE indirect-target prediction |
//! | `ablation_history_depth` | extension — accuracy vs correlation depth |
//! | `energy_report` | §VI-A future work — predictor SRAM energy |
//! | `ablation_alternatives` | extension — statistical-corrector and perceptron designs |
//! | `cobra-trace` | observability — per-component blame tables and event traces |
//!
//! Run lengths scale with the `COBRA_INSTS` environment variable
//! (instructions per measured run, default 500 000; warm-up is 40 % of it).
//! Setting `COBRA_TRACE=<path>` streams structured prediction events from
//! every simulated BPU (see `cobra_core::obs::trace`), and
//! `COBRA_METRICS=<path>` makes [`runner::run_grid`] append one JSONL
//! record per job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jsonv;
pub mod reference;
pub mod runner;
pub mod timing;

use cobra_core::composer::Design;
use cobra_uarch::{Core, CoreConfig, PerfReport};
use cobra_workloads::ProgramSpec;

/// Instructions per measured run (the `COBRA_INSTS` environment variable,
/// default 500 000).
///
/// An unparsable value falls back to the default with a one-time warning
/// on stderr (it used to be swallowed silently); `0` is clamped to 1 so
/// the warm-up fraction math cannot go degenerate.
pub fn run_insts() -> u64 {
    static WARNED: std::sync::Once = std::sync::Once::new();
    let n = match std::env::var("COBRA_INSTS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: COBRA_INSTS={v:?} is not a number; \
                         using the default of 500000"
                    );
                });
                500_000
            }
        },
        Err(_) => 500_000,
    };
    n.max(1)
}

/// Builds a core for `design` and `spec`, runs warm-up plus a measured
/// region, and returns the measured report.
///
/// # Panics
///
/// Panics if the design fails to compose — harness binaries treat that as
/// a fatal configuration error.
pub fn run_one(design: &Design, cfg: CoreConfig, spec: &ProgramSpec) -> PerfReport {
    run_one_tagged(design, cfg, spec, None)
}

/// [`run_one`] with a job tag substituted into any `COBRA_TRACE`-attached
/// tracer's output path, so concurrent grid jobs write to distinct,
/// deterministic files (the tag encodes the grid index, not the thread).
///
/// # Panics
///
/// Panics if the design fails to compose — harness binaries treat that as
/// a fatal configuration error.
pub fn run_one_tagged(
    design: &Design,
    cfg: CoreConfig,
    spec: &ProgramSpec,
    tag: Option<&str>,
) -> PerfReport {
    let measure = run_insts();
    let warmup = measure * 2 / 5;
    let mut core = Core::new(design, cfg, spec.build()).expect("stock designs always compose");
    if let Some(tag) = tag {
        core.bpu_mut().retarget_env_tracer(tag);
    }
    core.run_with_warmup(warmup, measure, &spec.name)
}

/// Prints a horizontal bar scaled to `frac` of `width` characters.
pub fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    "█".repeat(n)
}

/// Formats a percentage delta between `new` and `base`.
pub fn pct_delta(new: f64, base: f64) -> String {
    if base == 0.0 {
        return "n/a".into();
    }
    format!("{:+.1}%", 100.0 * (new - base) / base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.0, 10), "");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(0.5, 4).chars().count(), 2);
    }

    #[test]
    fn pct_delta_formats() {
        assert_eq!(pct_delta(1.15, 1.0), "+15.0%");
        assert_eq!(pct_delta(0.97, 1.0), "-3.0%");
        assert_eq!(pct_delta(1.0, 0.0), "n/a");
    }

    #[test]
    fn run_insts_defaults() {
        // Do not set the env var here (tests run in parallel); just check
        // the default path parses.
        assert!(run_insts() >= 1000);
    }
}
