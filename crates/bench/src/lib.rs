//! # cobra-bench
//!
//! The experiment harness: one binary per table and figure of the paper,
//! each printing the same rows/series the paper reports, next to the
//! paper's published values where they exist.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1_storage` | Table I — predictor storage budgets |
//! | `table2_config` | Table II — core configuration |
//! | `table3_systems` | Table III — evaluated systems |
//! | `fig7_pipelines` | Fig 7 — pipeline diagrams of the three designs |
//! | `fig8_area` | Fig 8 — predictor area breakdowns |
//! | `fig9_core_area` | Fig 9 — core area with each predictor |
//! | `fig10_spec` | Fig 10 — SPECint17 MPKI and IPC |
//! | `intro_serialization` | §I — serialized-fetch IPC loss on Dhrystone |
//! | `sec6a_tage_latency` | §VI-A — 2-cycle vs 3-cycle TAGE |
//! | `sec6b_ghist_repair` | §VI-B — history repair-with-replay sweep |
//! | `sec6c_sfb` | §VI-C — short-forwards-branch predication |
//! | `trace_vs_hardware` | §II-B — trace-model error vs the speculating core |
//! | `ablation_superscalar` | §III-C — superscalar vs per-packet counter tables |
//! | `ablation_ittage` | extension — ITTAGE indirect-target prediction |
//! | `ablation_history_depth` | extension — accuracy vs correlation depth |
//! | `energy_report` | §VI-A future work — predictor SRAM energy |
//! | `ablation_alternatives` | extension — statistical-corrector and perceptron designs |
//! | `cobra-trace` | observability — per-component blame tables and event traces |
//! | `cobra-capture` | workloads — capture any workload to a `.cbt` branch trace |
//! | `cobra-checkpoint` | warm state — capture `.cbs` warm-state checkpoints for warmup-once grids |
//! | `cobra-serve` | service — long-running evaluation daemon with a warm-state cache (see [`serve`]) |
//!
//! Run lengths scale with the `COBRA_INSTS` environment variable
//! (instructions per measured run, default 500 000; warm-up is 40 % of it).
//! Setting `COBRA_TRACE=<path>` streams structured prediction events from
//! every simulated BPU (see `cobra_core::obs::trace`), and
//! `COBRA_METRICS=<path>` makes [`runner::run_grid`] append one JSONL
//! record per job. Setting `COBRA_TRACE_DIR=<dir>` switches any grid
//! binary to *trace-driven* execution: each job whose workload has a
//! captured `<dir>/<workload>.cbt` replays that trace instead of
//! generating the stream — byte-identical `PerfReport`s, so stdout does
//! not change (see [`run_one_sourced`]). Setting `COBRA_CKPT_DIR=<dir>`
//! makes every grid binary restore jobs from warm-state checkpoints: a
//! job whose `<dir>/<design>--<workload>.cbs` exists (written by
//! `cobra-checkpoint`) skips its warm-up entirely by restoring the
//! checkpointed machine state at the warmup boundary — again with a
//! byte-identical `PerfReport`, enforced by the checkpoint's identity
//! header. Checkpoints compose with `COBRA_TRACE_DIR`: the restored
//! workload cursor fast-forwards whichever stream source the job uses.
//!
//! Setting `COBRA_INTERVAL=<n>` arms interval telemetry on every run:
//! each job additionally writes a `.cbm` metrics file (one record per
//! `n` committed instructions — see `cobra_uarch::metrics` and
//! `docs/METRICS_FORMAT.md`) to `$COBRA_INTERVAL_DIR` (default
//! `metrics/`), named `<design>--<workload>.cbm`. `COBRA_PROGRESS=<n>`
//! makes each job print a heartbeat line to stderr every `n` committed
//! instructions (instructions done, MIPS, ETA). Both are stderr/side-file
//! only: stdout stays byte-identical with telemetry on or off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jsonv;
pub mod reference;
pub mod runner;
pub mod serve;
pub mod timing;

use cobra_core::composer::Design;
use cobra_uarch::{restore_checkpoint, CbsMeta, Core, CoreConfig, InstructionStream, PerfReport};
use cobra_workloads::{ProgramSpec, TraceProgram};
use std::path::PathBuf;

/// Instructions per measured run (the `COBRA_INSTS` environment variable,
/// default 500 000).
///
/// An unparsable value falls back to the default with a one-time warning
/// on stderr (it used to be swallowed silently); `0` is clamped to 1 so
/// the warm-up fraction math cannot go degenerate.
pub fn run_insts() -> u64 {
    static WARNED: std::sync::Once = std::sync::Once::new();
    let n = match std::env::var("COBRA_INSTS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: COBRA_INSTS={v:?} is not a number; \
                         using the default of 500000"
                    );
                });
                500_000
            }
        },
        Err(_) => 500_000,
    };
    n.max(1)
}

/// The named synthetic kernels [`workload_by_name`] resolves besides the
/// SPECint17 profiles — what `cobra-capture --list` prints and
/// `cobra-serve` accepts.
pub const KERNEL_NAMES: &[&str] = &[
    "dhrystone",
    "coremark",
    "aliasing_stress",
    "loop_stress",
    "history_depth",
    "btb_stress",
    "ras_stress",
];

/// Resolves a workload name (case-insensitively) to its [`ProgramSpec`]:
/// any SPECint17 profile (`cobra_workloads::SPEC17_NAMES`) or any named
/// kernel in [`KERNEL_NAMES`]. The single resolver behind
/// `cobra-capture` and `cobra-serve` admission, so the two tools accept
/// exactly the same names.
pub fn workload_by_name(name: &str) -> Option<ProgramSpec> {
    use cobra_workloads::{kernels, spec17, SPEC17_NAMES};
    if SPEC17_NAMES.iter().any(|n| n.eq_ignore_ascii_case(name)) {
        return Some(spec17(&name.to_ascii_lowercase()));
    }
    match name.to_ascii_lowercase().as_str() {
        "dhrystone" => Some(kernels::dhrystone()),
        "coremark" => Some(kernels::coremark(false)),
        "aliasing_stress" => Some(kernels::aliasing_stress()),
        "loop_stress" => Some(kernels::loop_stress()),
        "history_depth" => Some(kernels::history_depth(32)),
        "btb_stress" => Some(kernels::btb_stress()),
        "ras_stress" => Some(kernels::ras_stress()),
        _ => None,
    }
}

/// Builds a core for `design` and `spec`, runs warm-up plus a measured
/// region, and returns the measured report.
///
/// # Panics
///
/// Panics if the design fails to compose — harness binaries treat that as
/// a fatal configuration error.
pub fn run_one(design: &Design, cfg: CoreConfig, spec: &ProgramSpec) -> PerfReport {
    run_one_tagged(design, cfg, spec, None)
}

/// [`run_one`] with a job tag substituted into any `COBRA_TRACE`-attached
/// tracer's output path, so concurrent grid jobs write to distinct,
/// deterministic files (the tag encodes the grid index, not the thread).
///
/// # Panics
///
/// Panics if the design fails to compose — harness binaries treat that as
/// a fatal configuration error.
pub fn run_one_tagged(
    design: &Design,
    cfg: CoreConfig,
    spec: &ProgramSpec,
    tag: Option<&str>,
) -> PerfReport {
    run_one_sourced(design, cfg, spec, tag).report
}

/// The outcome of one simulation, with its workload provenance.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The measured-region performance report.
    pub report: PerfReport,
    /// The `.cbt` file replayed, when the run was trace-driven
    /// (`COBRA_TRACE_DIR`); `None` for execution-driven runs.
    pub trace: Option<PathBuf>,
    /// The `.cbs` file restored, when the run skipped its warm-up via a
    /// warm-state checkpoint (`COBRA_CKPT_DIR`); `None` for runs that
    /// warmed up from scratch.
    pub checkpoint: Option<PathBuf>,
    /// The `.cbm` interval-telemetry file written, when `COBRA_INTERVAL`
    /// armed the engine; `None` for untelemetered runs.
    pub metrics: Option<PathBuf>,
}

/// The directory named by `COBRA_TRACE_DIR`, if set and non-empty.
///
/// A set-but-missing directory warns once on stderr (a typo'd path would
/// otherwise silently run every job execution-driven) and is then treated
/// as unset.
pub fn trace_dir() -> Option<PathBuf> {
    static WARNED: std::sync::Once = std::sync::Once::new();
    let dir = std::env::var("COBRA_TRACE_DIR").ok()?;
    let dir = dir.trim();
    if dir.is_empty() {
        return None;
    }
    let path = PathBuf::from(dir);
    if !path.is_dir() {
        WARNED.call_once(|| {
            eprintln!(
                "warning: COBRA_TRACE_DIR={dir:?} is not a directory; \
                 running execution-driven"
            );
        });
        return None;
    }
    Some(path)
}

/// The `.cbt` file a replayed run of `workload` would use
/// (`$COBRA_TRACE_DIR/<workload>.cbt`), if `COBRA_TRACE_DIR` is set and
/// the file exists.
pub fn trace_path_for(workload: &str) -> Option<PathBuf> {
    let path = trace_dir()?.join(format!("{workload}.cbt"));
    path.is_file().then_some(path)
}

/// The directory named by `COBRA_CKPT_DIR`, if set and non-empty.
///
/// A set-but-missing directory warns once on stderr (a typo'd path would
/// otherwise silently warm every job up from scratch) and is then treated
/// as unset.
pub fn ckpt_dir() -> Option<PathBuf> {
    static WARNED: std::sync::Once = std::sync::Once::new();
    let dir = std::env::var("COBRA_CKPT_DIR").ok()?;
    let dir = dir.trim();
    if dir.is_empty() {
        return None;
    }
    let path = PathBuf::from(dir);
    if !path.is_dir() {
        WARNED.call_once(|| {
            eprintln!(
                "warning: COBRA_CKPT_DIR={dir:?} is not a directory; \
                 warming up from scratch"
            );
        });
        return None;
    }
    Some(path)
}

/// The directory interval-telemetry `.cbm` files are written to:
/// `COBRA_INTERVAL_DIR` if set and non-empty, else `metrics/` under the
/// current directory. Created on first write, not here.
pub fn interval_dir() -> PathBuf {
    match std::env::var("COBRA_INTERVAL_DIR") {
        Ok(d) if !d.trim().is_empty() => PathBuf::from(d.trim()),
        _ => PathBuf::from("metrics"),
    }
}

/// The file name an interval-telemetry stream of `design` on `workload`
/// uses: `<design>--<workload>.cbm` (same double-dash convention as
/// [`ckpt_file_name`]).
pub fn metrics_file_name(design: &str, workload: &str) -> String {
    format!("{design}--{workload}.cbm")
}

/// The `COBRA_PROGRESS` heartbeat period in committed instructions, if
/// set and positive. An unparsable value warns once on stderr and
/// disables the heartbeat.
pub fn progress_every() -> Option<u64> {
    static WARNED: std::sync::Once = std::sync::Once::new();
    let v = std::env::var("COBRA_PROGRESS").ok()?;
    let v = v.trim();
    if v.is_empty() {
        return None;
    }
    match v.replace('_', "").parse::<u64>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            WARNED.call_once(|| {
                eprintln!(
                    "warning: COBRA_PROGRESS={v:?} is not a positive integer; \
                     heartbeat off"
                );
            });
            None
        }
    }
}

/// The file name a checkpoint of `design` on `workload` uses:
/// `<design>--<workload>.cbs` (the double dash keeps design names with
/// single dashes, like `TAGE-L`, unambiguous).
pub fn ckpt_file_name(design: &str, workload: &str) -> String {
    format!("{design}--{workload}.cbs")
}

/// The `.cbs` file a restored run of `design` on `workload` would use
/// (`$COBRA_CKPT_DIR/<design>--<workload>.cbs`), if `COBRA_CKPT_DIR` is
/// set and the file exists.
pub fn ckpt_path_for(design: &str, workload: &str) -> Option<PathBuf> {
    let path = ckpt_dir()?.join(ckpt_file_name(design, workload));
    path.is_file().then_some(path)
}

/// Like [`run_one_tagged`], but reporting whether the run replayed a
/// captured trace: with `COBRA_TRACE_DIR` set and a `<workload>.cbt`
/// present, the core consumes the replayed [`TraceProgram`] instead of a
/// freshly generated stream. Capture preserves both halves of the
/// workload interface (dynamic records and the static-decode image), so
/// the resulting [`PerfReport`] is byte-identical either way — workloads
/// without a captured trace quietly stay execution-driven, which keeps
/// partially-captured grids runnable and stdout stable.
///
/// # Panics
///
/// Panics if the design fails to compose, or if the trace file exists but
/// is corrupt or truncated (a fatal configuration error, reported with
/// the precise [`CbtError`](cobra_workloads::CbtError)).
pub fn run_one_sourced(
    design: &Design,
    cfg: CoreConfig,
    spec: &ProgramSpec,
    tag: Option<&str>,
) -> RunOutcome {
    let measure = run_insts();
    let warmup = measure * 2 / 5;
    match trace_path_for(&spec.name) {
        Some(path) => {
            let program = TraceProgram::open(&path)
                .unwrap_or_else(|e| panic!("COBRA_TRACE_DIR replay of {}: {e}", path.display()));
            if program.name() != spec.name {
                eprintln!(
                    "warning: {} was captured from workload {:?}, replaying as {:?}",
                    path.display(),
                    program.name(),
                    spec.name
                );
            }
            let mut core = Core::new(design, cfg, program).expect("stock designs always compose");
            if let Some(tag) = tag {
                core.bpu_mut().retarget_env_tracer(tag);
            }
            let checkpoint = restore_into(design, &cfg, &spec.name, warmup, &mut core);
            install_progress(&mut core, tag, warmup + measure);
            let report = core.run_with_warmup(warmup, measure, &spec.name);
            let metrics =
                write_interval_metrics(design, &cfg, &spec.name, warmup, &mut core, &report);
            RunOutcome {
                report,
                trace: Some(path),
                checkpoint,
                metrics,
            }
        }
        None => {
            let mut core =
                Core::new(design, cfg, spec.build()).expect("stock designs always compose");
            if let Some(tag) = tag {
                core.bpu_mut().retarget_env_tracer(tag);
            }
            let checkpoint = restore_into(design, &cfg, &spec.name, warmup, &mut core);
            install_progress(&mut core, tag, warmup + measure);
            let report = core.run_with_warmup(warmup, measure, &spec.name);
            let metrics =
                write_interval_metrics(design, &cfg, &spec.name, warmup, &mut core, &report);
            RunOutcome {
                report,
                trace: None,
                checkpoint,
                metrics,
            }
        }
    }
}

/// Installs the `COBRA_PROGRESS` heartbeat on a freshly-built core:
/// every `COBRA_PROGRESS` committed instructions, one stderr line with
/// instructions done, simulated MIPS, and the wall-clock ETA to
/// `target_insts` (warm-up plus measured region). Stderr only — stdout
/// stays stable for diffing.
fn install_progress<S: InstructionStream>(
    core: &mut Core<S>,
    tag: Option<&str>,
    target_insts: u64,
) {
    let Some(every) = progress_every() else {
        return;
    };
    let label = tag.unwrap_or("run").to_string();
    let started = std::time::Instant::now();
    core.set_progress(
        every,
        Box::new(move |insts, cycles| {
            let secs = started.elapsed().as_secs_f64();
            let mips = if secs > 0.0 {
                insts as f64 / secs / 1e6
            } else {
                0.0
            };
            let eta = if insts > 0 && target_insts > insts {
                secs * (target_insts - insts) as f64 / insts as f64
            } else {
                0.0
            };
            eprintln!(
                "[runner] progress {label}: {insts}/{target_insts} insts \
                 ({:.1}%), {cycles} cycles, {mips:.2} MIPS, ETA {eta:.1}s",
                insts as f64 * 100.0 / target_insts.max(1) as f64
            );
        }),
    );
}

/// Drains the interval series a measured run collected (if
/// `COBRA_INTERVAL` armed the engine) and writes it as a `.cbm` file to
/// [`interval_dir`], bound to the run's identity and carrying the
/// measured-region totals from `report` so any reader can verify
/// reconciliation self-contained. Returns the path written.
///
/// Write failures warn on stderr but never fail the run — telemetry is
/// an observability side channel, and the tables on stdout are the
/// primary artifact.
fn write_interval_metrics<S: InstructionStream>(
    design: &Design,
    cfg: &CoreConfig,
    workload: &str,
    warmup: u64,
    core: &mut Core<S>,
    report: &PerfReport,
) -> Option<PathBuf> {
    let series = core.take_intervals()?;
    let meta = cobra_uarch::CbmMeta {
        design: design.name.clone(),
        topology: design.topology.clone(),
        config_hash: cobra_uarch::config_hash(design, cfg),
        workload: workload.to_string(),
        warmup_insts: warmup,
        interval_n: series.interval_n,
        sig_buckets: cobra_core::obs::interval::SIG_BUCKETS as u64,
    };
    let dir = interval_dir();
    let path = dir.join(metrics_file_name(&design.name, workload));
    let write = || -> Result<(), String> {
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let file = std::fs::File::create(&path).map_err(|e| e.to_string())?;
        cobra_uarch::save_metrics(
            std::io::BufWriter::new(file),
            &meta,
            &series,
            &report.counters.to_host(),
            &report.attribution,
        )
        .map_err(|e| e.to_string())?;
        Ok(())
    };
    match write() {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "warning: could not write interval metrics {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// Restores `$COBRA_CKPT_DIR/<design>--<workload>.cbs` into a
/// freshly-built core, if the directory is set and the file exists,
/// returning the path restored. Jobs without a matching checkpoint
/// quietly warm up from scratch, which keeps partially-checkpointed
/// grids runnable and stdout stable.
///
/// # Panics
///
/// Panics if the checkpoint file exists but is corrupt, truncated, or was
/// captured under a different design, configuration, workload, or warmup
/// boundary — restoring it anyway would silently skew the measured
/// region, so a mismatch is a fatal configuration error, reported with
/// the precise [`CbsError`](cobra_uarch::CbsError).
fn restore_into<S: InstructionStream>(
    design: &Design,
    cfg: &CoreConfig,
    workload: &str,
    warmup: u64,
    core: &mut Core<S>,
) -> Option<PathBuf> {
    let path = ckpt_path_for(&design.name, workload)?;
    let meta = CbsMeta::for_run(design, cfg, workload, warmup);
    let file = std::fs::File::open(&path)
        .unwrap_or_else(|e| panic!("COBRA_CKPT_DIR restore of {}: {e}", path.display()));
    restore_checkpoint(std::io::BufReader::new(file), &meta, core)
        .unwrap_or_else(|e| panic!("COBRA_CKPT_DIR restore of {}: {e}", path.display()));
    Some(path)
}

/// The number of instructions [`capture_workload`] records for a measured
/// region of `measure` instructions: warm-up (the harness's 40 %) plus
/// the region itself plus fetch-ahead slack, so a replayed run never
/// starves the frontend before the measured region completes.
pub fn capture_len(measure: u64) -> u64 {
    let warmup = measure * 2 / 5;
    warmup + measure + measure / 10 + 16_384
}

/// Captures `spec` to `<dir>/<name>.cbt` sized for a measured region of
/// `measure` instructions (see [`capture_len`]), returning the summary
/// and the path written.
///
/// # Errors
///
/// Propagates [`CbtError`](cobra_workloads::CbtError) from encode or I/O.
pub fn capture_workload(
    spec: &ProgramSpec,
    measure: u64,
    dir: &std::path::Path,
) -> Result<(cobra_workloads::CbtSummary, PathBuf), cobra_workloads::CbtError> {
    let path = dir.join(format!("{}.cbt", spec.name));
    let mut stream = spec.build();
    let summary =
        cobra_workloads::capture_to_file(&mut stream, capture_len(measure), &spec.name, &path)?;
    Ok((summary, path))
}

/// Prints a horizontal bar scaled to `frac` of `width` characters.
pub fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    "█".repeat(n)
}

/// Formats a percentage delta between `new` and `base`.
pub fn pct_delta(new: f64, base: f64) -> String {
    if base == 0.0 {
        return "n/a".into();
    }
    format!("{:+.1}%", 100.0 * (new - base) / base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.0, 10), "");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(0.5, 4).chars().count(), 2);
    }

    #[test]
    fn pct_delta_formats() {
        assert_eq!(pct_delta(1.15, 1.0), "+15.0%");
        assert_eq!(pct_delta(0.97, 1.0), "-3.0%");
        assert_eq!(pct_delta(1.0, 0.0), "n/a");
    }

    #[test]
    fn run_insts_defaults() {
        // Do not set the env var here (tests run in parallel); just check
        // the default path parses.
        assert!(run_insts() >= 1000);
    }
}
