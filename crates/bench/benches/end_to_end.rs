//! Criterion bench: end-to-end simulated instructions per wall-clock
//! second for a full core + predictor + workload stack.

use cobra_core::designs;
use cobra_uarch::{Core, CoreConfig};
use cobra_workloads::kernels;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_end_to_end(crit: &mut Criterion) {
    let mut g = crit.benchmark_group("core_simulation");
    const INSTS: u64 = 20_000;
    g.throughput(Throughput::Elements(INSTS));
    for design in designs::all() {
        g.bench_function(&design.name, |b| {
            b.iter(|| {
                let mut core = Core::new(
                    &design,
                    CoreConfig::boom_4wide(),
                    kernels::dhrystone().build(),
                )
                .expect("composes");
                black_box(core.run(INSTS, "dhrystone"));
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
