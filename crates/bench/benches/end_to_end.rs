//! Bench: end-to-end simulated instructions per wall-clock second for a
//! full core + predictor + workload stack.

use cobra_bench::timing::Harness;
use cobra_core::designs;
use cobra_uarch::{Core, CoreConfig};
use cobra_workloads::kernels;
use std::hint::black_box;

fn main() {
    const INSTS: u64 = 20_000;
    let mut h = Harness::new("core_simulation");
    for design in designs::all() {
        h.bench(&design.name, || {
            let mut core = Core::new(
                &design,
                CoreConfig::boom_4wide(),
                kernels::dhrystone().build(),
            )
            .expect("composes");
            black_box(core.run(INSTS, "dhrystone"));
        });
    }
    println!("({INSTS} simulated instructions per iteration)");
}
