//! Bench: raw query+update throughput of each predictor sub-component —
//! the simulation-speed axis the paper contrasts against software
//! simulators — plus a composed plan-vs-interpreter arm per stock design
//! (the devirtualized packet path against the reference interpreter; the
//! measured speedups are recorded in `results/perf_plan.md`).

use cobra_bench::timing::Harness;
use cobra_core::components::{
    Btb, BtbConfig, Gtag, GtagConfig, Hbim, HbimConfig, LoopConfig, LoopPredictor, MicroBtb,
    MicroBtbConfig, Perceptron, PerceptronConfig, Tage, TageConfig, Tourney, TourneyConfig,
};
use cobra_core::composer::{BpuConfig, BranchPredictorUnit};
use cobra_core::designs;
use cobra_core::{
    BranchKind, Component, HistoryView, PredictQuery, PredictionBundle, SlotResolution, UpdateEvent,
};
use cobra_sim::{HistoryRegister, SplitMix64};
use std::hint::black_box;

fn drive(c: &mut dyn Component, iterations: u64) {
    let mut ghist = HistoryRegister::new(64);
    let mut rng = SplitMix64::new(7);
    let pred = PredictionBundle::new(8);
    for i in 0..iterations {
        let pc = 0x1_0000 + rng.below(1 << 12) * 16;
        let hist = HistoryView {
            ghist: &ghist,
            lhist: rng.next_u64(),
            phist: 0,
        };
        let q = PredictQuery {
            cycle: i,
            pc,
            width: 8,
            hist: (c.latency() >= 2).then_some(hist),
        };
        let resp = c.predict(&q);
        let taken = rng.chance(0.6);
        let res = [SlotResolution {
            slot: (pc as u8) & 7,
            kind: BranchKind::Conditional,
            taken,
            target: pc + 64,
        }];
        let hist = HistoryView {
            ghist: &ghist,
            lhist: 0,
            phist: 0,
        };
        c.update(&UpdateEvent {
            pc,
            width: 8,
            hist,
            meta: resp.meta,
            pred: &pred,
            resolutions: &res,
            mispredicted_slot: taken.then_some((pc as u8) & 7),
        });
        ghist.push(taken);
        black_box(&resp);
    }
}

type ComponentFactory = Box<dyn Fn() -> Box<dyn Component>>;

fn main() {
    let mut h = Harness::new("component_predict_update");
    let cases: Vec<(&str, ComponentFactory)> = vec![
        (
            "bim",
            Box::new(|| Box::new(Hbim::new(HbimConfig::bim(4096, 8)))),
        ),
        (
            "gshare",
            Box::new(|| Box::new(Hbim::new(HbimConfig::gbim(4096, 12, 8)))),
        ),
        ("btb", Box::new(|| Box::new(Btb::new(BtbConfig::large(8))))),
        (
            "ubtb",
            Box::new(|| Box::new(MicroBtb::new(MicroBtbConfig::small(8)))),
        ),
        ("gtag", Box::new(|| Box::new(Gtag::new(GtagConfig::b2(8))))),
        (
            "tage",
            Box::new(|| Box::new(Tage::new(TageConfig::paper(8)))),
        ),
        (
            "loop",
            Box::new(|| Box::new(LoopPredictor::new(LoopConfig::paper(8)))),
        ),
        (
            "tourney",
            Box::new(|| Box::new(Tourney::new(TourneyConfig::paper(8)))),
        ),
        (
            "perceptron",
            Box::new(|| Box::new(Perceptron::new(PerceptronConfig::default_size(8)))),
        ),
    ];
    for (name, mk) in cases {
        let mut c = mk();
        h.bench(name, || drive(c.as_mut(), 100));
    }

    // Composed packet path per stock design: the compiled execution plan
    // against the reference interpreter on the identical BPU round trip.
    let mut h = Harness::new("packet_path");
    for design in designs::all() {
        for (mode, plan) in [("plan", true), ("interpreter", false)] {
            let mut bpu =
                BranchPredictorUnit::build(&design, BpuConfig::default()).expect("composes");
            bpu.force_plan(plan);
            let mut rng = SplitMix64::new(3);
            h.bench(&format!("{}/{mode}", design.name), || {
                roundtrip(&mut bpu, &mut rng, 64)
            });
        }
    }
}

fn roundtrip(bpu: &mut BranchPredictorUnit, rng: &mut SplitMix64, n: usize) {
    for _ in 0..n {
        bpu.tick();
        let pc = 0x2_0000 + rng.below(1 << 10) * 16;
        let Some(id) = bpu.query(pc) else {
            while bpu.commit_front().is_some() {}
            continue;
        };
        bpu.speculate(id, 1);
        let last = *bpu.prediction(id, bpu.depth()).expect("live packet");
        bpu.accept(id, last);
        let taken = rng.chance(0.5);
        let res = SlotResolution {
            slot: 0,
            kind: BranchKind::Conditional,
            taken,
            target: pc + 32,
        };
        let mispredicted = rng.chance(0.05);
        black_box(bpu.resolve(id, res, mispredicted));
        while bpu.commit_front().is_some() {}
    }
}
