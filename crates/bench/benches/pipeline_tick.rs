//! Bench: composed-BPU query/accept/resolve/commit round-trip rate for
//! each stock design.

use cobra_bench::timing::Harness;
use cobra_core::composer::{BpuConfig, BranchPredictorUnit};
use cobra_core::{designs, BranchKind, SlotResolution};
use cobra_sim::SplitMix64;
use std::hint::black_box;

fn roundtrip(bpu: &mut BranchPredictorUnit, rng: &mut SplitMix64, n: usize) {
    for _ in 0..n {
        bpu.tick();
        let pc = 0x2_0000 + rng.below(1 << 10) * 16;
        let Some(id) = bpu.query(pc) else {
            // Drain if the history file filled up.
            while bpu.commit_front().is_some() {}
            continue;
        };
        bpu.speculate(id, 1);
        let last = *bpu.prediction(id, bpu.depth()).expect("live packet");
        bpu.accept(id, last);
        let taken = rng.chance(0.5);
        let res = SlotResolution {
            slot: 0,
            kind: BranchKind::Conditional,
            taken,
            target: pc + 32,
        };
        let mispredicted = rng.chance(0.05);
        black_box(bpu.resolve(id, res, mispredicted));
        while bpu.commit_front().is_some() {}
    }
}

fn main() {
    let mut h = Harness::new("bpu_roundtrip");
    for design in designs::all() {
        let mut bpu = BranchPredictorUnit::build(&design, BpuConfig::default()).expect("composes");
        let mut rng = SplitMix64::new(3);
        h.bench(&design.name, || roundtrip(&mut bpu, &mut rng, 64));
    }
}
