//! # cobra-workloads
//!
//! Synthetic workload generation for the COBRA reproduction.
//!
//! The paper evaluates on SPECint2017 (reference inputs, FPGA-hosted,
//! trillions of cycles), Dhrystone, and CoreMark. None of those runs are
//! reproducible in a pure-Rust laptop build, so this crate generates
//! *synthetic programs* — seeded control-flow graphs with parameterized
//! branch behaviours, memory locality, and instruction-level parallelism —
//! that exercise the same predictor phenomena:
//!
//! * [`behavior`] — per-branch dynamic behaviours (loops, biased-random,
//!   patterns, history-correlated);
//! * [`synth`] — the [`ProgramSpec`] generator and [`SyntheticProgram`]
//!   executor (an infinite [`InstructionStream`](cobra_uarch::InstructionStream));
//! * [`mod@spec17`] — ten profiles standing in for the SPECint17 suite;
//! * [`kernels`] — Dhrystone, a CoreMark-like kernel with hammock branches
//!   for the Section VI-C experiment, and predictor stress kernels;
//! * [`cbt`] — the COBRA Binary Trace format: versioned, block-structured,
//!   checksummed on-disk branch traces (spec in `docs/TRACE_FORMAT.md`);
//! * [`replay`] — capture any [`InstructionStream`](cobra_uarch::InstructionStream)
//!   to `.cbt` and replay it byte-identically via [`TraceProgram`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod cbt;
pub mod kernels;
pub mod replay;
pub mod spec17;
pub mod synth;

pub use behavior::{BehaviorState, BranchBehavior};
pub use cbt::{CbtError, CbtReader, CbtSummary, CbtWriter, StaticImage};
pub use replay::{capture_stream, capture_to_file, TraceProgram};
pub use spec17::{all_spec17, spec17, SPEC17_NAMES};
pub use synth::{BranchMix, ProgramSpec, SyntheticProgram};
