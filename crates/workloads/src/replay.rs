//! Trace capture and replay: turn any [`InstructionStream`] into a `.cbt`
//! file, and a `.cbt` file back into an [`InstructionStream`].
//!
//! [`capture_stream`] records a stream prefix — the dynamic instruction
//! sequence plus the static-decode image wrong-path fetch consults — and
//! [`TraceProgram`] replays it. Because both halves of the workload
//! interface are preserved, a replayed run through the full speculating
//! core produces a `PerfReport` *byte-identical* to the execution-driven
//! run over the same stream (enforced by `crates/bench/tests/cbt_roundtrip.rs`).
//!
//! Replay streams block-by-block: memory stays O(block) however long the
//! trace is. [`TraceProgram::open`] runs a full integrity pass
//! ([`CbtReader::validate`]) first, so a corrupted file is rejected up
//! front with a precise [`CbtError`] instead of failing mid-simulation.

use crate::cbt::{CbtError, CbtReader, CbtSummary, CbtWriter, StaticImage};
use cobra_uarch::{DynInst, InstructionStream, StaticInst};
use std::io::{BufReader, Cursor, Read, Seek, Write};
use std::path::Path;

/// Captures up to `insts` instructions of `stream` into `out` as a CBT
/// trace named `name`, returning the written summary.
///
/// The stream is consumed; callers wanting to also *run* the workload
/// build a second stream from the same spec (generation is seeded, so the
/// two are identical). After the dynamic prefix is recorded, the static
/// image is probed over the observed PC window via
/// [`InstructionStream::inst_at`].
///
/// # Errors
///
/// [`CbtError::Unencodable`] if the stream yields instructions CBT cannot
/// represent (inconsistent op/CFI fields, disconnected PCs); I/O errors
/// from `out`.
pub fn capture_stream<S, W>(
    stream: &mut S,
    insts: u64,
    name: &str,
    out: W,
) -> Result<CbtSummary, CbtError>
where
    S: InstructionStream + ?Sized,
    W: Write,
{
    let entry = stream.entry_pc();
    let mut w = CbtWriter::new(out, name, entry)?;
    for _ in 0..insts {
        match stream.next_inst() {
            Some(inst) => w.push(&inst)?,
            None => break,
        }
    }
    let image = match w.pc_window() {
        Some((lo, hi)) => StaticImage::probe(entry, lo, hi, |pc| stream.inst_at(pc)),
        None => StaticImage::empty(),
    };
    w.finish(&image)
}

/// Captures `stream` to a file at `path` (parent directories are
/// created), replacing any existing file.
///
/// # Errors
///
/// As [`capture_stream`], plus file-creation errors.
pub fn capture_to_file<S>(
    stream: &mut S,
    insts: u64,
    name: &str,
    path: &Path,
) -> Result<CbtSummary, CbtError>
where
    S: InstructionStream + ?Sized,
{
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = std::fs::File::create(path)?;
    capture_stream(stream, insts, name, std::io::BufWriter::new(file))
}

/// A replayed `.cbt` trace, usable anywhere an [`InstructionStream`] is:
/// the full core, [`TraceSim`](cobra_uarch::TraceSim), or the grid
/// binaries (via `COBRA_TRACE_DIR`).
#[derive(Debug)]
pub struct TraceProgram<R: Read + Seek> {
    reader: CbtReader<R>,
    block: Vec<DynInst>,
    pos: usize,
    next_block: usize,
    consumed: u64,
}

impl TraceProgram<BufReader<std::fs::File>> {
    /// Opens and fully validates the trace at `path`.
    ///
    /// # Errors
    ///
    /// Any [`CbtError`] from parsing or the integrity pass.
    pub fn open(path: &Path) -> Result<Self, CbtError> {
        let file = std::fs::File::open(path)?;
        Self::from_reader(BufReader::new(file))
    }
}

impl TraceProgram<Cursor<Vec<u8>>> {
    /// Opens and fully validates a trace held in memory.
    ///
    /// # Errors
    ///
    /// Any [`CbtError`] from parsing or the integrity pass.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, CbtError> {
        Self::from_reader(Cursor::new(bytes))
    }
}

impl<R: Read + Seek> TraceProgram<R> {
    /// Opens and fully validates a trace from any seekable reader.
    ///
    /// # Errors
    ///
    /// Any [`CbtError`] from parsing or the integrity pass.
    pub fn from_reader(r: R) -> Result<Self, CbtError> {
        let mut reader = CbtReader::open(r)?;
        reader.validate()?;
        Ok(Self {
            reader,
            block: Vec::new(),
            pos: 0,
            next_block: 0,
            consumed: 0,
        })
    }

    /// The workload name stored in the trace.
    pub fn name(&self) -> &str {
        self.reader.name()
    }

    /// Total dynamic records in the trace.
    pub fn records(&self) -> u64 {
        self.reader.total_records()
    }

    /// Records not yet yielded by [`InstructionStream::next_inst`].
    pub fn remaining(&self) -> u64 {
        self.records().saturating_sub(self.consumed)
    }

    /// Fraction of the trace already replayed, in `[0.0, 1.0]`.
    ///
    /// Progress accessor for observability surfaces (heartbeats, status
    /// lines). An empty trace reports `1.0`: there is nothing left to
    /// replay.
    pub fn replay_fraction(&self) -> f64 {
        let total = self.records();
        if total == 0 {
            return 1.0;
        }
        self.consumed.min(total) as f64 / total as f64
    }
}

impl<R: Read + Seek> InstructionStream for TraceProgram<R> {
    fn entry_pc(&self) -> u64 {
        self.reader.entry_pc()
    }

    fn next_inst(&mut self) -> Option<DynInst> {
        loop {
            if self.pos < self.block.len() {
                let inst = self.block[self.pos];
                self.pos += 1;
                self.consumed += 1;
                return Some(inst);
            }
            if self.next_block >= self.reader.blocks() {
                return None;
            }
            // Validated at open; a failure here means the file changed
            // underneath us, which is not survivable mid-simulation.
            self.block = self
                .reader
                .read_block(self.next_block)
                .unwrap_or_else(|e| panic!("validated trace became unreadable: {e}"));
            self.next_block += 1;
            self.pos = 0;
        }
    }

    fn next_block(&mut self, out: &mut Vec<DynInst>, max: usize) -> usize {
        let start = out.len();
        while out.len() - start < max {
            if self.pos < self.block.len() {
                let take = (max - (out.len() - start)).min(self.block.len() - self.pos);
                out.extend_from_slice(&self.block[self.pos..self.pos + take]);
                self.pos += take;
                self.consumed += take as u64;
                continue;
            }
            if self.next_block >= self.reader.blocks() {
                break;
            }
            self.block = self
                .reader
                .read_block(self.next_block)
                .unwrap_or_else(|e| panic!("validated trace became unreadable: {e}"));
            self.next_block += 1;
            self.pos = 0;
        }
        out.len() - start
    }

    fn inst_at(&self, pc: u64) -> StaticInst {
        self.reader.image().lookup(pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec17;
    use crate::synth::ProgramSpec;
    use cobra_core::BranchKind;

    #[test]
    fn capture_then_replay_matches_direct_execution() {
        let spec = ProgramSpec {
            name: "roundtrip".into(),
            seed: 42,
            ..ProgramSpec::default()
        };
        let mut bytes = Vec::new();
        capture_stream(&mut spec.build(), 20_000, "roundtrip", &mut bytes).unwrap();
        let mut replay = TraceProgram::from_bytes(bytes).unwrap();
        assert_eq!(replay.name(), "roundtrip");
        assert_eq!(replay.records(), 20_000);

        let mut direct = spec.build();
        assert_eq!(replay.entry_pc(), direct.entry_pc());
        for i in 0..20_000 {
            assert_eq!(replay.next_inst(), direct.next_inst(), "record {i}");
        }
        assert!(replay.next_inst().is_none(), "trace must end");
    }

    #[test]
    fn replay_preserves_static_decode() {
        let spec = spec17::spec17("xz");
        let mut bytes = Vec::new();
        capture_stream(&mut spec.build(), 30_000, "xz", &mut bytes).unwrap();
        let replay = TraceProgram::from_bytes(bytes).unwrap();
        let direct = spec.build();
        // Probe a window comfortably wider than the code image, plus odd
        // and far-out addresses.
        for pc in (0u64..0x3_0000).step_by(2) {
            assert_eq!(replay.inst_at(pc), direct.inst_at(pc), "pc {pc:#x}");
        }
        assert_eq!(replay.inst_at(0x10001), direct.inst_at(0x10001));
        assert_eq!(replay.inst_at(u64::MAX - 1), direct.inst_at(u64::MAX - 1));
    }

    #[test]
    fn replay_fraction_tracks_consumption() {
        let spec = ProgramSpec {
            name: "fraction".into(),
            seed: 7,
            ..ProgramSpec::default()
        };
        let mut bytes = Vec::new();
        capture_stream(&mut spec.build(), 1_000, "fraction", &mut bytes).unwrap();
        let mut replay = TraceProgram::from_bytes(bytes).unwrap();
        assert_eq!(replay.replay_fraction(), 0.0);
        for _ in 0..250 {
            replay.next_inst().unwrap();
        }
        assert_eq!(replay.replay_fraction(), 0.25);
        assert_eq!(replay.remaining(), 750);
        while replay.next_inst().is_some() {}
        assert_eq!(replay.replay_fraction(), 1.0);
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn capture_stops_at_stream_end() {
        use cobra_uarch::IterStream;
        let insts: Vec<DynInst> = (0..100).map(|i| DynInst::int(0x100 + i * 2)).collect();
        let mut s = IterStream::new(0x100, insts.into_iter());
        let mut bytes = Vec::new();
        let summary = capture_stream(&mut s, 1_000_000, "short", &mut bytes).unwrap();
        assert_eq!(summary.records, 100);
        let mut replay = TraceProgram::from_bytes(bytes).unwrap();
        let mut n = 0;
        while replay.next_inst().is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn replay_includes_branch_kinds() {
        // omnetpp's prefix is indirect-heavy, xalancbmk's call-heavy;
        // together they cover every CFI kind.
        let mut kinds = std::collections::BTreeSet::new();
        for name in ["omnetpp", "xalancbmk"] {
            let spec = spec17::spec17(name);
            let mut bytes = Vec::new();
            capture_stream(&mut spec.build(), 100_000, name, &mut bytes).unwrap();
            let mut replay = TraceProgram::from_bytes(bytes).unwrap();
            while let Some(i) = replay.next_inst() {
                if let Some(c) = i.cfi {
                    kinds.insert(format!("{:?}", c.kind));
                }
            }
        }
        for k in [
            BranchKind::Conditional,
            BranchKind::Call,
            BranchKind::Ret,
            BranchKind::Indirect,
        ] {
            assert!(kinds.contains(&format!("{k:?}")), "missing {k:?}");
        }
    }
}
