//! SPECint17 workload profiles.
//!
//! The paper evaluates on the ten SPECint2017 speed benchmarks with
//! reference inputs, run for trillions of cycles on FPGAs. That input set
//! is not reproducible here, so each benchmark is modelled as a synthetic
//! program whose *branch character* matches what the characterization
//! literature reports for it: code footprint, branch behaviour mix,
//! predictability, memory locality, and ILP. The absolute numbers will not
//! match the paper's; the cross-benchmark and cross-predictor *shape*
//! (which workloads are hard, which predictor wins and by how much) is the
//! reproduction target.

use crate::synth::{BranchMix, ProgramSpec, SyntheticProgram};

/// The ten SPECint17 benchmark names, in the paper's Fig 10 order.
pub const SPEC17_NAMES: [&str; 10] = [
    "perlbench",
    "gcc",
    "mcf",
    "omnetpp",
    "xalancbmk",
    "x264",
    "deepsjeng",
    "leela",
    "exchange2",
    "xz",
];

/// Returns the profile for one SPECint17 benchmark.
///
/// # Panics
///
/// Panics on an unknown name; see [`SPEC17_NAMES`].
pub fn spec17(name: &str) -> ProgramSpec {
    let base = ProgramSpec {
        name: name.into(),
        seed: 0x5bec_0000
            ^ cobra_sim::bits::mix64(name.len() as u64 * 131 + name.as_bytes()[0] as u64),
        ..ProgramSpec::default()
    };
    match name {
        // Interpreter: big code, indirect dispatch, history-friendly
        // branches with a hard residue.
        "perlbench" => ProgramSpec {
            functions: 48,
            blocks_per_fn: 14,
            mix: BranchMix {
                cond: 0.62,
                loop_back: 0.1,
                call: 0.17,
                jump: 0.07,
                indirect: 0.04,
            },
            cond_behaviors: (0.20, 0.22, 0.48, 0.10),
            bias: 0.95,
            correlation_depth: (1, 8),
            working_set: 512 * 1024,
            ..base
        },
        // Compiler: the largest code footprint; branch-dense, moderate
        // predictability, heavy aliasing pressure on untagged tables.
        "gcc" => ProgramSpec {
            functions: 72,
            blocks_per_fn: 16,
            body_len: (2, 6),
            mix: BranchMix {
                cond: 0.66,
                loop_back: 0.08,
                call: 0.16,
                jump: 0.06,
                indirect: 0.04,
            },
            cond_behaviors: (0.45, 0.12, 0.35, 0.08),
            bias: 0.78,
            correlation_depth: (1, 14),
            working_set: 1024 * 1024,
            ..base
        },
        // Pointer-chasing over a huge working set; data-dependent branches.
        "mcf" => ProgramSpec {
            functions: 10,
            blocks_per_fn: 10,
            mix: BranchMix {
                cond: 0.62,
                loop_back: 0.22,
                call: 0.10,
                jump: 0.04,
                indirect: 0.02,
            },
            cond_behaviors: (0.50, 0.05, 0.38, 0.07),
            bias: 0.80,
            mem_fraction: 0.42,
            working_set: 16 * 1024 * 1024,
            pointer_chase: true,
            dep_fraction: 0.55,
            ..base
        },
        // Discrete-event simulation: virtual dispatch, poor locality.
        "omnetpp" => ProgramSpec {
            functions: 40,
            blocks_per_fn: 12,
            mix: BranchMix {
                cond: 0.56,
                loop_back: 0.10,
                call: 0.18,
                jump: 0.04,
                indirect: 0.12,
            },
            cond_behaviors: (0.32, 0.12, 0.48, 0.08),
            bias: 0.91,
            mem_fraction: 0.35,
            working_set: 8 * 1024 * 1024,
            pointer_chase: true,
            ..base
        },
        // XML processing: deep call chains, correlated branches.
        "xalancbmk" => ProgramSpec {
            functions: 56,
            blocks_per_fn: 12,
            mix: BranchMix {
                cond: 0.56,
                loop_back: 0.10,
                call: 0.24,
                jump: 0.06,
                indirect: 0.04,
            },
            cond_behaviors: (0.30, 0.18, 0.45, 0.07),
            bias: 0.93,
            correlation_depth: (2, 10),
            working_set: 2 * 1024 * 1024,
            ..base
        },
        // Video encoding: loop nests, patterns, very predictable.
        "x264" => ProgramSpec {
            functions: 16,
            blocks_per_fn: 10,
            body_len: (5, 12),
            mix: BranchMix {
                cond: 0.40,
                loop_back: 0.38,
                call: 0.14,
                jump: 0.06,
                indirect: 0.02,
            },
            cond_behaviors: (0.14, 0.50, 0.26, 0.10),
            bias: 0.97,
            pattern_len: (2, 8),
            correlation_depth: (1, 6),
            loop_trips: (8, 64),
            mem_fraction: 0.30,
            fp_fraction: 0.10,
            working_set: 2 * 1024 * 1024,
            ..base
        },
        // Chess search: data-dependent branches near coin-flips.
        "deepsjeng" => ProgramSpec {
            functions: 24,
            blocks_per_fn: 12,
            mix: BranchMix {
                cond: 0.68,
                loop_back: 0.10,
                call: 0.16,
                jump: 0.04,
                indirect: 0.02,
            },
            cond_behaviors: (0.68, 0.04, 0.24, 0.04),
            bias: 0.62,
            correlation_depth: (1, 10),
            working_set: 512 * 1024,
            dep_fraction: 0.45,
            ..base
        },
        // Go engine (MCTS): the hardest branches in the suite.
        "leela" => ProgramSpec {
            functions: 20,
            blocks_per_fn: 12,
            mix: BranchMix {
                cond: 0.66,
                loop_back: 0.12,
                call: 0.16,
                jump: 0.04,
                indirect: 0.02,
            },
            cond_behaviors: (0.72, 0.04, 0.20, 0.04),
            bias: 0.58,
            working_set: 256 * 1024,
            dep_fraction: 0.45,
            ..base
        },
        // Fortran puzzle solver: tight loop nests, extremely predictable.
        "exchange2" => ProgramSpec {
            functions: 6,
            blocks_per_fn: 10,
            body_len: (4, 10),
            mix: BranchMix {
                cond: 0.34,
                loop_back: 0.46,
                call: 0.12,
                jump: 0.06,
                indirect: 0.02,
            },
            cond_behaviors: (0.20, 0.40, 0.30, 0.10),
            bias: 0.94,
            loop_trips: (6, 48),
            working_set: 64 * 1024,
            ..base
        },
        // Compression: biased data-dependent branches, streaming memory.
        "xz" => ProgramSpec {
            functions: 12,
            blocks_per_fn: 10,
            mix: BranchMix {
                cond: 0.60,
                loop_back: 0.20,
                call: 0.12,
                jump: 0.06,
                indirect: 0.02,
            },
            cond_behaviors: (0.50, 0.13, 0.30, 0.07),
            bias: 0.82,
            mem_fraction: 0.35,
            working_set: 4 * 1024 * 1024,
            dep_fraction: 0.5,
            ..base
        },
        other => panic!("unknown SPECint17 benchmark `{other}`"),
    }
}

/// Builds all ten benchmarks.
pub fn all_spec17() -> Vec<SyntheticProgram> {
    SPEC17_NAMES.iter().map(|n| spec17(n).build()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_build() {
        let all = all_spec17();
        assert_eq!(all.len(), 10);
        for p in &all {
            assert!(p.code_bytes() > 0);
        }
    }

    #[test]
    fn footprints_reflect_characters() {
        let gcc = spec17("gcc").build();
        let exchange2 = spec17("exchange2").build();
        assert!(
            gcc.static_cond_branches() > 4 * exchange2.static_cond_branches(),
            "gcc must dwarf exchange2 in static branches"
        );
    }

    #[test]
    #[should_panic(expected = "unknown SPECint17 benchmark")]
    fn unknown_name_panics() {
        let _ = spec17("povray");
    }

    #[test]
    fn profiles_are_distinct() {
        let a = spec17("leela");
        let b = spec17("x264");
        assert_ne!(a, b);
    }
}
