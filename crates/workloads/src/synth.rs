//! Synthetic-program generation: a seeded CFG generator and its executor.
//!
//! A [`ProgramSpec`] describes a program's *shape* — code footprint, branch
//! behaviour mix, memory locality, instruction-level parallelism — and
//! [`ProgramSpec::build`] generates a concrete static program (a flat code
//! image of 2-byte parcels) plus the dynamic state to execute it forever.
//! The resulting [`SyntheticProgram`] implements
//! [`cobra_uarch::InstructionStream`]: it yields the
//! architectural instruction sequence and answers static decode queries for
//! wrong-path fetch.

use crate::behavior::{BehaviorState, BranchBehavior};
use cobra_core::BranchKind;
use cobra_sim::SplitMix64;
use cobra_uarch::{CfiOutcome, DynInst, InstructionStream, Op, StaticInst};

/// Base address of generated code.
const CODE_BASE: u64 = 0x0001_0000;
/// Base address of the data working set.
const DATA_BASE: u64 = 0x1000_0000;

/// Non-CFI instruction classes, sampled for block bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Int,
    Mul,
    Fp,
    Load,
    Store,
}

/// One 2-byte parcel of the static code image.
#[derive(Debug, Clone, PartialEq)]
enum CodeOp {
    Body(OpClass),
    Cond {
        target: usize,
        behavior: usize,
        sfb: bool,
    },
    LoopBack {
        target: usize,
        behavior: usize,
    },
    Jump {
        target: usize,
    },
    Call {
        target: usize,
    },
    Ret,
    Indirect {
        targets: Vec<usize>,
    },
    /// A predicated hammock's set-flag op (Section VI-C transform).
    SetFlag,
    /// A shadow instruction executed under predication.
    Predicated(OpClass),
}

/// Relative weights for block terminator selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchMix {
    /// Forward conditional branches.
    pub cond: f64,
    /// Backward loop branches.
    pub loop_back: f64,
    /// Function calls.
    pub call: f64,
    /// Unconditional jumps.
    pub jump: f64,
    /// Indirect jumps (switch dispatch).
    pub indirect: f64,
}

impl Default for BranchMix {
    fn default() -> Self {
        Self {
            cond: 0.6,
            loop_back: 0.15,
            call: 0.15,
            jump: 0.05,
            indirect: 0.05,
        }
    }
}

/// The shape of a synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpec {
    /// Workload name (reported in results).
    pub name: String,
    /// Generation seed: same spec + seed = same program.
    pub seed: u64,
    /// Number of functions (code footprint).
    pub functions: usize,
    /// Basic blocks per function.
    pub blocks_per_fn: usize,
    /// Body length range per block, in instructions.
    pub body_len: (usize, usize),
    /// Terminator mix.
    pub mix: BranchMix,
    /// Behaviour mix for conditional branches: weights for
    /// (biased, pattern, correlated, alternating).
    pub cond_behaviors: (f64, f64, f64, f64),
    /// Bias strength for biased branches: `p(taken)` is drawn near this.
    pub bias: f64,
    /// Loop trip-count range.
    pub loop_trips: (u32, u32),
    /// Pattern length range.
    pub pattern_len: (u32, u32),
    /// Correlation depth range.
    pub correlation_depth: (u32, u32),
    /// Fraction of body instructions that are memory operations.
    pub mem_fraction: f64,
    /// Fraction of body instructions that are floating point.
    pub fp_fraction: f64,
    /// Data working-set size in bytes.
    pub working_set: u64,
    /// Pointer-chasing access pattern (cache-hostile) instead of streaming.
    pub pointer_chase: bool,
    /// Fraction of instructions carrying a data dependency on a recent
    /// producer.
    pub dep_fraction: f64,
    /// Fraction of conditional branches that are short-forwards "hammock"
    /// branches (Section VI-C candidates).
    pub sfb_fraction: f64,
    /// Hammock shadow length in instructions.
    pub sfb_shadow: usize,
    /// Decode hammocks into predicated set-flag/conditional-execute
    /// sequences instead of branches (the Section VI-C optimization).
    pub sfb_predication: bool,
}

impl Default for ProgramSpec {
    fn default() -> Self {
        Self {
            name: "default".into(),
            seed: 1,
            functions: 8,
            blocks_per_fn: 12,
            body_len: (3, 8),
            mix: BranchMix::default(),
            cond_behaviors: (0.4, 0.2, 0.3, 0.1),
            bias: 0.8,
            loop_trips: (4, 40),
            pattern_len: (3, 12),
            correlation_depth: (1, 12),
            mem_fraction: 0.25,
            fp_fraction: 0.05,
            working_set: 64 * 1024,
            pointer_chase: false,
            dep_fraction: 0.35,
            sfb_fraction: 0.0,
            sfb_shadow: 4,
            sfb_predication: false,
        }
    }
}

impl ProgramSpec {
    /// Generates the concrete program.
    pub fn build(&self) -> SyntheticProgram {
        Generator::new(self).generate()
    }
}

struct Generator<'a> {
    spec: &'a ProgramSpec,
    rng: SplitMix64,
    code: Vec<CodeOp>,
    behaviors: Vec<BehaviorState>,
}

impl<'a> Generator<'a> {
    fn new(spec: &'a ProgramSpec) -> Self {
        Self {
            spec,
            rng: SplitMix64::new(spec.seed ^ 0x5eed),
            code: Vec::new(),
            behaviors: Vec::new(),
        }
    }

    fn sample_body_op(&mut self) -> OpClass {
        let r = self.rng.next_u64() as f64 / u64::MAX as f64;
        if r < self.spec.mem_fraction {
            if self.rng.chance(0.65) {
                OpClass::Load
            } else {
                OpClass::Store
            }
        } else if r < self.spec.mem_fraction + self.spec.fp_fraction {
            OpClass::Fp
        } else if self.rng.chance(0.06) {
            OpClass::Mul
        } else {
            OpClass::Int
        }
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.rng.below(hi - lo + 1)
        }
    }

    fn new_cond_behavior(&mut self) -> usize {
        let (b, p, c, a) = self.spec.cond_behaviors;
        let total = b + p + c + a;
        let r = self.rng.next_u64() as f64 / u64::MAX as f64 * total;
        let behavior = if r < b {
            // Bias drawn near the spec's centre, mirrored around 0.5 so
            // both taken- and not-taken-biased branches occur.
            let centre = if self.rng.chance(0.5) {
                self.spec.bias
            } else {
                1.0 - self.spec.bias
            };
            let jitter = (self.rng.next_u64() % 1000) as f64 / 10_000.0 - 0.05;
            BranchBehavior::Biased {
                p: (centre + jitter).clamp(0.02, 0.98),
            }
        } else if r < b + p {
            let len = self.range(
                self.spec.pattern_len.0 as u64,
                self.spec.pattern_len.1 as u64,
            ) as u32;
            BranchBehavior::Pattern {
                bits: self.rng.next_u64(),
                len,
            }
        } else if r < b + p + c {
            let depth = self.range(
                self.spec.correlation_depth.0 as u64,
                self.spec.correlation_depth.1 as u64,
            ) as u32;
            BranchBehavior::Correlated {
                depth,
                invert: self.rng.chance(0.5),
            }
        } else {
            BranchBehavior::Alternating
        };
        let seed = self.rng.next_u64();
        self.behaviors.push(BehaviorState::new(behavior, seed));
        self.behaviors.len() - 1
    }

    fn new_loop_behavior(&mut self) -> usize {
        let trip = self.range(self.spec.loop_trips.0 as u64, self.spec.loop_trips.1 as u64) as u32;
        let seed = self.rng.next_u64();
        self.behaviors
            .push(BehaviorState::new(BranchBehavior::Loop { trip }, seed));
        self.behaviors.len() - 1
    }

    fn generate(mut self) -> SyntheticProgram {
        let spec = self.spec;
        let mut fn_entries = Vec::with_capacity(spec.functions);
        // Per-function block index placeholders to patch after layout.
        for f in 0..spec.functions {
            fn_entries.push(self.code.len());
            let mut block_starts: Vec<usize> = Vec::with_capacity(spec.blocks_per_fn);
            // (code index of terminator, symbolic target block, kind)
            let mut patches: Vec<(usize, usize)> = Vec::new();
            // Loop regions are kept disjoint: without this floor, nested
            // back-edges multiply trip counts and execution collapses into
            // the innermost loop.
            let mut loop_floor = 0usize;
            for b in 0..spec.blocks_per_fn {
                block_starts.push(self.code.len());
                let body = self.range(spec.body_len.0 as u64, spec.body_len.1 as u64) as usize;
                for _ in 0..body {
                    let op = self.sample_body_op();
                    self.code.push(CodeOp::Body(op));
                }
                let last_block = b + 1 == spec.blocks_per_fn;
                if last_block {
                    if f == 0 {
                        // Main loops forever.
                        patches.push((self.code.len(), usize::MAX));
                        self.code.push(CodeOp::Jump { target: 0 });
                    } else {
                        self.code.push(CodeOp::Ret);
                    }
                    continue;
                }
                self.emit_terminator(f, b, spec, &mut patches, &mut loop_floor);
            }
            // Patch symbolic block targets: value b means "block b of this
            // function"; usize::MAX means function 0's entry.
            for (idx, sym) in patches {
                let resolved = if sym == usize::MAX {
                    0
                } else {
                    block_starts[sym.min(spec.blocks_per_fn - 1)]
                };
                match &mut self.code[idx] {
                    CodeOp::Cond { target, .. }
                    | CodeOp::LoopBack { target, .. }
                    | CodeOp::Jump { target } => *target = resolved,
                    CodeOp::Indirect { targets } => {
                        // Symbolic indirect targets were encoded densely in
                        // `sym`; regenerate from block list instead.
                        for t in targets.iter_mut() {
                            *t = block_starts[(*t).min(spec.blocks_per_fn - 1)];
                        }
                    }
                    other => unreachable!("patch on non-branch {other:?}"),
                }
            }
        }
        // Patch calls (emitted with symbolic function numbers).
        for idx in 0..self.code.len() {
            if let CodeOp::Call { target } = &mut self.code[idx] {
                *target = fn_entries[*target];
            }
        }
        SyntheticProgram::new(
            spec.name.clone(),
            self.code,
            self.behaviors,
            spec.working_set.max(64),
            spec.pointer_chase,
            spec.dep_fraction,
            spec.seed,
        )
    }

    fn emit_terminator(
        &mut self,
        f: usize,
        b: usize,
        spec: &ProgramSpec,
        patches: &mut Vec<(usize, usize)>,
        loop_floor: &mut usize,
    ) {
        let m = &spec.mix;
        let total = m.cond + m.loop_back + m.call + m.jump + m.indirect;
        let r = self.rng.next_u64() as f64 / u64::MAX as f64 * total;
        if r < m.cond {
            if self.rng.chance(spec.sfb_fraction) {
                // Hammock branches guard data-dependent values and are
                // close to coin-flips — which is what makes predicating
                // them away (Section VI-C) so valuable.
                let p = 0.42 + self.rng.below(17) as f64 / 100.0;
                let seed = self.rng.next_u64();
                self.behaviors
                    .push(BehaviorState::new(BranchBehavior::Biased { p }, seed));
                let behavior = self.behaviors.len() - 1;
                // A hammock: branch over an inline shadow to the next block.
                let shadow = spec.sfb_shadow.max(1);
                if spec.sfb_predication {
                    // Consume the behaviour slot to keep programs aligned
                    // across modes, but emit predicated micro-ops.
                    self.code.push(CodeOp::SetFlag);
                    for _ in 0..shadow {
                        let op = self.sample_body_op();
                        self.code.push(CodeOp::Predicated(op));
                    }
                } else {
                    let branch_idx = self.code.len();
                    self.code.push(CodeOp::Cond {
                        target: 0,
                        behavior,
                        sfb: true,
                    });
                    for _ in 0..shadow {
                        let op = self.sample_body_op();
                        self.code.push(CodeOp::Body(op));
                    }
                    // Target = just past the shadow (start of next block).
                    let target = self.code.len();
                    if let CodeOp::Cond { target: t, .. } = &mut self.code[branch_idx] {
                        *t = target;
                    }
                }
            } else {
                let behavior = self.new_cond_behavior();
                let skip = 1 + self.rng.below(3) as usize;
                patches.push((self.code.len(), b + skip));
                self.code.push(CodeOp::Cond {
                    target: 0,
                    behavior,
                    sfb: false,
                });
            }
        } else if r < m.cond + m.loop_back {
            let behavior = self.new_loop_behavior();
            let back = 1 + self.rng.below(2) as usize;
            let target = b.saturating_sub(back).max(*loop_floor);
            *loop_floor = b + 1;
            patches.push((self.code.len(), target));
            self.code.push(CodeOp::LoopBack {
                target: 0,
                behavior,
            });
        } else if r < m.cond + m.loop_back + m.call && f + 1 < spec.functions {
            // Call targets are biased toward leaf (late) functions so call
            // chains stay shallow, as in real programs.
            let span = (spec.functions - f - 1).min(6) as u64;
            let callee = if self.rng.chance(0.7) {
                spec.functions - 1 - self.rng.below(span) as usize
            } else {
                f + 1 + self.rng.below(span) as usize
            };
            self.code.push(CodeOp::Call { target: callee });
        } else if r < m.cond + m.loop_back + m.call + m.jump {
            patches.push((self.code.len(), b + 1));
            self.code.push(CodeOp::Jump { target: 0 });
        } else {
            // Indirect to 2-4 forward blocks (symbolic block numbers).
            let n = 2 + self.rng.below(3) as usize;
            let targets: Vec<usize> = (0..n).map(|i| b + 1 + i).collect();
            patches.push((self.code.len(), 0));
            self.code.push(CodeOp::Indirect { targets });
        }
    }
}

/// A generated synthetic program: static code image plus dynamic execution
/// state. Implements [`InstructionStream`]; execution never terminates (the
/// main function loops), so runs are bounded by the core's instruction
/// budget.
#[derive(Debug, Clone)]
pub struct SyntheticProgram {
    name: String,
    code: Vec<CodeOp>,
    behaviors: Vec<BehaviorState>,
    working_set: u64,
    pointer_chase: bool,
    dep_fraction: f64,
    // Dynamic state.
    ip: usize,
    call_stack: Vec<usize>,
    ghist: u64,
    rng: SplitMix64,
    mem_cursor: u64,
    chase_state: u64,
    executed: u64,
}

impl SyntheticProgram {
    #[allow(clippy::too_many_arguments)]
    fn new(
        name: String,
        code: Vec<CodeOp>,
        behaviors: Vec<BehaviorState>,
        working_set: u64,
        pointer_chase: bool,
        dep_fraction: f64,
        seed: u64,
    ) -> Self {
        Self {
            name,
            code,
            behaviors,
            working_set,
            pointer_chase,
            dep_fraction,
            ip: 0,
            call_stack: Vec::new(),
            ghist: 0,
            rng: SplitMix64::new(seed ^ 0xd11a),
            mem_cursor: 0,
            chase_state: seed | 1,
            executed: 0,
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Static code size in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.code.len() as u64 * 2
    }

    /// Number of static conditional branches.
    pub fn static_cond_branches(&self) -> usize {
        self.code
            .iter()
            .filter(|c| matches!(c, CodeOp::Cond { .. } | CodeOp::LoopBack { .. }))
            .count()
    }

    fn pc_of(&self, idx: usize) -> u64 {
        CODE_BASE + idx as u64 * 2
    }

    fn idx_of(&self, pc: u64) -> Option<usize> {
        if pc < CODE_BASE || pc & 1 != 0 {
            return None;
        }
        let idx = ((pc - CODE_BASE) / 2) as usize;
        (idx < self.code.len()).then_some(idx)
    }

    fn next_addr(&mut self) -> u64 {
        if self.pointer_chase {
            self.chase_state = cobra_sim::bits::mix64(self.chase_state);
            DATA_BASE + ((self.chase_state % self.working_set) & !7)
        } else if self.rng.chance(0.25) {
            DATA_BASE + (self.rng.below(self.working_set) & !7)
        } else {
            self.mem_cursor = (self.mem_cursor + 8) % self.working_set;
            DATA_BASE + self.mem_cursor
        }
    }

    fn body_op(&mut self, class: OpClass) -> Op {
        match class {
            OpClass::Int => Op::Int,
            OpClass::Mul => Op::Mul,
            OpClass::Fp => Op::Fp,
            OpClass::Load => Op::Load {
                addr: self.next_addr(),
            },
            OpClass::Store => Op::Store {
                addr: self.next_addr(),
            },
        }
    }

    fn dep(&mut self) -> u8 {
        if self.rng.chance(self.dep_fraction) {
            1 + self.rng.below(4) as u8
        } else {
            0
        }
    }

    fn static_op(class: OpClass) -> StaticInst {
        let op = match class {
            OpClass::Int => Op::Int,
            OpClass::Mul => Op::Mul,
            OpClass::Fp => Op::Fp,
            OpClass::Load => Op::Load { addr: DATA_BASE },
            OpClass::Store => Op::Store { addr: DATA_BASE },
        };
        StaticInst {
            op,
            cfi_kind: None,
            target: None,
        }
    }
}

impl InstructionStream for SyntheticProgram {
    fn entry_pc(&self) -> u64 {
        CODE_BASE
    }

    fn next_inst(&mut self) -> Option<DynInst> {
        self.executed += 1;
        let pc = self.pc_of(self.ip);
        let op = self.code[self.ip].clone();
        let inst = match op {
            CodeOp::Body(class) => {
                self.ip += 1;
                DynInst {
                    pc,
                    op: self.body_op(class),
                    cfi: None,
                    dep: self.dep(),
                }
            }
            CodeOp::SetFlag => {
                self.ip += 1;
                DynInst {
                    pc,
                    op: Op::Int,
                    cfi: None,
                    dep: self.dep(),
                }
            }
            CodeOp::Predicated(class) => {
                self.ip += 1;
                DynInst {
                    pc,
                    op: self.body_op(class),
                    cfi: None,
                    dep: self.dep(),
                }
            }
            CodeOp::Cond {
                target,
                behavior,
                sfb,
            } => {
                let taken = self.behaviors[behavior].next_outcome(self.ghist);
                self.ghist = (self.ghist << 1) | taken as u64;
                let t = self.pc_of(target);
                self.ip = if taken { target } else { self.ip + 1 };
                DynInst {
                    pc,
                    op: Op::Cfi,
                    cfi: Some(CfiOutcome {
                        kind: BranchKind::Conditional,
                        taken,
                        target: t,
                        sfb,
                    }),
                    dep: self.dep(),
                }
            }
            CodeOp::LoopBack { target, behavior } => {
                let taken = self.behaviors[behavior].next_outcome(self.ghist);
                self.ghist = (self.ghist << 1) | taken as u64;
                let t = self.pc_of(target);
                self.ip = if taken { target } else { self.ip + 1 };
                DynInst {
                    pc,
                    op: Op::Cfi,
                    cfi: Some(CfiOutcome {
                        kind: BranchKind::Conditional,
                        taken,
                        target: t,
                        sfb: false,
                    }),
                    dep: self.dep(),
                }
            }
            CodeOp::Jump { target } => {
                self.ip = target;
                DynInst {
                    pc,
                    op: Op::Cfi,
                    cfi: Some(CfiOutcome {
                        kind: BranchKind::Jump,
                        taken: true,
                        target: self.pc_of(target),
                        sfb: false,
                    }),
                    dep: 0,
                }
            }
            CodeOp::Call { target } => {
                self.call_stack.push(self.ip + 1);
                self.ip = target;
                DynInst {
                    pc,
                    op: Op::Cfi,
                    cfi: Some(CfiOutcome {
                        kind: BranchKind::Call,
                        taken: true,
                        target: self.pc_of(target),
                        sfb: false,
                    }),
                    dep: 0,
                }
            }
            CodeOp::Ret => {
                let resume = self.call_stack.pop().unwrap_or(0);
                self.ip = resume;
                DynInst {
                    pc,
                    op: Op::Cfi,
                    cfi: Some(CfiOutcome {
                        kind: BranchKind::Ret,
                        taken: true,
                        target: self.pc_of(resume),
                        sfb: false,
                    }),
                    dep: 0,
                }
            }
            CodeOp::Indirect { ref targets } => {
                // Mostly monomorphic dispatch with an occasional megamorphic
                // flip, as observed for real indirect branches.
                let pick = if self.rng.chance(0.85) {
                    targets[0]
                } else {
                    targets[(self.rng.below(targets.len() as u64)) as usize]
                };
                self.ip = pick;
                DynInst {
                    pc,
                    op: Op::Cfi,
                    cfi: Some(CfiOutcome {
                        kind: BranchKind::Indirect,
                        taken: true,
                        target: self.pc_of(pick),
                        sfb: false,
                    }),
                    dep: 0,
                }
            }
        };
        Some(inst)
    }

    fn inst_at(&self, pc: u64) -> StaticInst {
        let Some(idx) = self.idx_of(pc) else {
            return StaticInst::filler();
        };
        match &self.code[idx] {
            CodeOp::Body(c) | CodeOp::Predicated(c) => Self::static_op(*c),
            CodeOp::SetFlag => StaticInst::filler(),
            CodeOp::Cond { target, .. } | CodeOp::LoopBack { target, .. } => StaticInst {
                op: Op::Cfi,
                cfi_kind: Some(BranchKind::Conditional),
                target: Some(self.pc_of(*target)),
            },
            CodeOp::Jump { target } => StaticInst {
                op: Op::Cfi,
                cfi_kind: Some(BranchKind::Jump),
                target: Some(self.pc_of(*target)),
            },
            CodeOp::Call { target } => StaticInst {
                op: Op::Cfi,
                cfi_kind: Some(BranchKind::Call),
                target: Some(self.pc_of(*target)),
            },
            CodeOp::Ret => StaticInst {
                op: Op::Cfi,
                cfi_kind: Some(BranchKind::Ret),
                target: None,
            },
            CodeOp::Indirect { .. } => StaticInst {
                op: Op::Cfi,
                cfi_kind: Some(BranchKind::Indirect),
                target: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProgramSpec {
        ProgramSpec {
            name: "test".into(),
            seed: 7,
            ..ProgramSpec::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().build();
        let b = spec().build();
        assert_eq!(a.code, b.code);
        let mut a = a;
        let mut b = b;
        for _ in 0..1000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = spec().build();
        let b = ProgramSpec { seed: 8, ..spec() }.build();
        assert_ne!(a.code, b.code);
    }

    #[test]
    fn executes_forever_and_consistently() {
        let mut p = spec().build();
        let mut cond = 0;
        for _ in 0..50_000 {
            let i = p.next_inst().expect("infinite program");
            if let Some(c) = i.cfi {
                // Taken CFIs jump to their target; the next inst must be
                // there.
                if c.kind == BranchKind::Conditional && c.taken {
                    cond += 1;
                }
            }
        }
        assert!(cond > 100, "program must execute taken branches: {cond}");
    }

    #[test]
    fn dynamic_pcs_follow_control_flow() {
        let mut p = spec().build();
        let mut prev: Option<DynInst> = None;
        for _ in 0..20_000 {
            let i = p.next_inst().unwrap();
            if let Some(pr) = prev {
                let expected = match pr.cfi {
                    Some(c) if c.taken => c.target,
                    _ => pr.pc + 2,
                };
                assert_eq!(i.pc, expected, "control-flow discontinuity");
            }
            prev = Some(i);
        }
    }

    #[test]
    fn static_decode_matches_dynamic_cfis() {
        let mut p = spec().build();
        for _ in 0..20_000 {
            let i = p.next_inst().unwrap();
            let st = p.inst_at(i.pc);
            match i.cfi {
                Some(c) => {
                    assert_eq!(st.cfi_kind, Some(c.kind), "kind mismatch at {:#x}", i.pc);
                    if matches!(
                        c.kind,
                        BranchKind::Conditional | BranchKind::Jump | BranchKind::Call
                    ) {
                        assert_eq!(st.target, Some(c.target).filter(|_| c.taken).or(st.target));
                        if c.taken {
                            assert_eq!(st.target, Some(c.target), "static target mismatch");
                        }
                    }
                }
                None => assert!(st.cfi_kind.is_none(), "spurious CFI at {:#x}", i.pc),
            }
        }
    }

    #[test]
    fn sfb_predication_removes_hammock_branches() {
        let base = ProgramSpec {
            sfb_fraction: 0.8,
            sfb_shadow: 3,
            ..spec()
        };
        let with_branches = base.build();
        let predicated = ProgramSpec {
            sfb_predication: true,
            ..base
        }
        .build();
        let hammocks = |p: &SyntheticProgram| {
            p.code
                .iter()
                .filter(|c| matches!(c, CodeOp::Cond { sfb: true, .. }))
                .count()
        };
        assert!(hammocks(&with_branches) > 0);
        assert_eq!(hammocks(&predicated), 0);
        assert!(
            predicated.code.iter().any(|c| matches!(c, CodeOp::SetFlag)),
            "predicated mode emits set-flag ops"
        );
    }

    #[test]
    fn working_set_bounds_addresses() {
        let mut p = ProgramSpec {
            working_set: 4096,
            mem_fraction: 0.9,
            ..spec()
        }
        .build();
        for _ in 0..5000 {
            let i = p.next_inst().unwrap();
            if let Op::Load { addr } | Op::Store { addr } = i.op {
                assert!((DATA_BASE..DATA_BASE + 4096).contains(&addr));
            }
        }
    }

    #[test]
    fn code_footprint_scales_with_functions() {
        let small = ProgramSpec {
            functions: 2,
            ..spec()
        }
        .build();
        let large = ProgramSpec {
            functions: 30,
            ..spec()
        }
        .build();
        assert!(large.code_bytes() > 5 * small.code_bytes());
        assert!(large.static_cond_branches() > small.static_cond_branches());
    }
}
