//! The COBRA Binary Trace (CBT) format — capture, store, and stream
//! branch/instruction traces.
//!
//! A `.cbt` file is a versioned, self-contained serialization of an
//! [`InstructionStream`](cobra_uarch::InstructionStream) prefix: the
//! dynamic instruction records (compact per-record encoding, with
//! per-branch PC/target/kind/taken), plus the static-decode image the
//! core's wrong-path fetch consults, so a replayed run reproduces the
//! execution-driven run *byte-identically* (see
//! [`replay::TraceProgram`](crate::replay::TraceProgram)).
//!
//! The format is block-structured: records are grouped into blocks, each
//! independently decodable and protected by a CRC-32C, and a footer index
//! lets readers validate, seek, and stream without ever holding more than
//! one block in memory. The normative specification, including a worked
//! hex example, is in [`docs/TRACE_FORMAT.md`] at the repository root;
//! this module is the reference implementation.
//!
//! [`docs/TRACE_FORMAT.md`]: https://github.com/cobra-bp/cobra-rs/blob/main/docs/TRACE_FORMAT.md
//!
//! Integers are little-endian when fixed-width; variable-length values use
//! LEB128 ([`cobra_sim::varint`]), with ZigZag folding for signed deltas.
//! Record PCs are never stored — each record's PC is derived from its
//! predecessor (fall-through or taken target), which is also what makes
//! the per-record encoding 1–5 bytes instead of 16+.

use cobra_core::BranchKind;
use cobra_sim::{varint, Crc32c};
use cobra_uarch::{CfiOutcome, DynInst, Op, StaticInst};
use std::fmt;
use std::io::{Read, Seek, SeekFrom, Write};

/// File magic, the first 8 bytes of every `.cbt` file.
pub const MAGIC: [u8; 8] = *b"COBRACBT";
/// Trailing footer magic, the last 4 bytes of every `.cbt` file.
pub const FOOTER_MAGIC: [u8; 4] = *b"CBTX";
/// The (only) format version this implementation reads and writes.
pub const VERSION: u16 = 1;
/// Records per block written by [`CbtWriter`] (readers accept any count
/// up to [`MAX_BLOCK_RECORDS`]).
pub const DEFAULT_BLOCK_RECORDS: u32 = 32_768;

/// Reader guard: maximum accepted block payload size.
pub const MAX_BLOCK_BYTES: u32 = 1 << 26;
/// Reader guard: maximum accepted records per block.
pub const MAX_BLOCK_RECORDS: u32 = 1 << 22;
/// Reader guard: maximum accepted static-image parcels.
pub const MAX_STATIC_PARCELS: u64 = 1 << 22;
/// Reader guard: maximum accepted static-image payload size.
pub const MAX_STATIC_BYTES: u64 = 1 << 26;
/// Reader guard: maximum accepted workload-name length.
pub const MAX_NAME_BYTES: u64 = 4096;
/// Reader guard: maximum accepted block count.
pub const MAX_BLOCKS: u32 = 1 << 20;

/// Fixed bytes in a block header: `payload_len` (u32), `record_count`
/// (u32), `first_pc` (u64), `block_crc` (u32).
const BLOCK_HEADER_BYTES: u64 = 4 + 4 + 8 + 4;
/// Bytes per footer index entry: `offset`, `first_index`, `first_pc`.
const INDEX_ENTRY_BYTES: u64 = 24;

// Record tag layout: low nibble = opcode, high nibble = flags.
const OP_INT: u8 = 0;
const OP_MUL: u8 = 1;
const OP_DIV: u8 = 2;
const OP_FP: u8 = 3;
const OP_LOAD: u8 = 4;
const OP_STORE: u8 = 5;
const OP_COND: u8 = 8;
const OP_JUMP: u8 = 9;
const OP_CALL: u8 = 10;
const OP_RET: u8 = 11;
const OP_INDIRECT: u8 = 12;
const FLAG_TAKEN: u8 = 1 << 4;
const FLAG_SFB: u8 = 1 << 5;
const FLAG_DEP: u8 = 1 << 6;
const FLAG_RESERVED: u8 = 1 << 7;
// Static-parcel-only flag: a CFI parcel with a statically-known target.
const FLAG_TARGET: u8 = 1 << 4;

/// Everything that can go wrong reading or writing a `.cbt` file. Decode
/// errors are precise: they name the section, block, or byte at fault so
/// a corrupted trace is diagnosable, never silently misread.
#[derive(Debug)]
pub enum CbtError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file ends with the wrong [`FOOTER_MAGIC`].
    BadFooterMagic,
    /// The file's version is not supported by this implementation.
    UnsupportedVersion(u16),
    /// The header flags word has bits this implementation does not know.
    UnsupportedFlags(u16),
    /// The file ended (or a declared length ran out) while reading the
    /// named section.
    Truncated {
        /// Which structure was being read.
        what: &'static str,
    },
    /// A declared size exceeds the format's hard limits — either corrupt
    /// or hostile; never allocated.
    LimitExceeded {
        /// Which declared quantity is over limit.
        what: &'static str,
        /// The declared value.
        got: u64,
        /// The maximum this reader accepts.
        max: u64,
    },
    /// The header CRC-32C does not match the header bytes.
    HeaderChecksum {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// A block's CRC-32C does not match its header + payload bytes.
    BlockChecksum {
        /// Zero-based block number.
        block: u32,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// The static-image section's CRC-32C does not match its bytes.
    StaticChecksum {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// The footer's CRC-32C does not match its bytes.
    FooterChecksum {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// A record tag byte is malformed (unknown opcode, reserved bit set,
    /// or flags illegal for its opcode).
    BadRecordTag {
        /// Zero-based block number.
        block: u32,
        /// Record index within the block.
        record: u32,
        /// The offending tag byte.
        tag: u8,
    },
    /// A varint field is truncated or over-long.
    BadVarint {
        /// Which structure was being read.
        what: &'static str,
    },
    /// A block decoded to a different record count than its header
    /// declared, or left undecoded payload bytes.
    BlockShape {
        /// Zero-based block number.
        block: u32,
        /// Description of the mismatch.
        detail: String,
    },
    /// The footer index disagrees with the blocks actually present.
    IndexMismatch {
        /// Description of the disagreement.
        detail: String,
    },
    /// The static-image payload decoded to the wrong parcel count or left
    /// trailing bytes.
    StaticShape {
        /// Description of the mismatch.
        detail: String,
    },
    /// The workload name is not valid UTF-8.
    BadName,
    /// An instruction cannot be represented in CBT (encode side): a
    /// control-flow/op mismatch, a not-taken unconditional, or a PC that
    /// does not follow from the previous record.
    Unencodable {
        /// The instruction's PC.
        pc: u64,
        /// Why it cannot be encoded.
        detail: String,
    },
}

impl fmt::Display for CbtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic => write!(f, "not a CBT file (bad magic; expected `COBRACBT`)"),
            Self::BadFooterMagic => {
                write!(f, "bad footer magic (file truncated or not finalized)")
            }
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported CBT version {v} (this reader supports {VERSION})"
                )
            }
            Self::UnsupportedFlags(bits) => {
                write!(
                    f,
                    "unsupported header flags {bits:#06x} (reserved bits set)"
                )
            }
            Self::Truncated { what } => write!(f, "file truncated while reading {what}"),
            Self::LimitExceeded { what, got, max } => {
                write!(f, "{what} = {got} exceeds the format limit of {max}")
            }
            Self::HeaderChecksum { stored, computed } => write!(
                f,
                "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::BlockChecksum {
                block,
                stored,
                computed,
            } => write!(
                f,
                "block {block} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::StaticChecksum { stored, computed } => write!(
                f,
                "static-image checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::FooterChecksum { stored, computed } => write!(
                f,
                "footer checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::BadRecordTag { block, record, tag } => write!(
                f,
                "block {block} record {record}: malformed tag byte {tag:#04x}"
            ),
            Self::BadVarint { what } => write!(f, "truncated or over-long varint in {what}"),
            Self::BlockShape { block, detail } => write!(f, "block {block}: {detail}"),
            Self::IndexMismatch { detail } => write!(f, "footer index mismatch: {detail}"),
            Self::StaticShape { detail } => write!(f, "static image: {detail}"),
            Self::BadName => write!(f, "workload name is not valid UTF-8"),
            Self::Unencodable { pc, detail } => {
                write!(f, "instruction at {pc:#x} cannot be encoded: {detail}")
            }
        }
    }
}

impl std::error::Error for CbtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CbtError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

// ------------------------------------------------------------ static image

/// The static-decode image: what
/// [`InstructionStream::inst_at`](cobra_uarch::InstructionStream::inst_at)
/// answers over a contiguous PC window, captured so wrong-path fetch
/// behaves identically under replay.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticImage {
    base: u64,
    parcels: Vec<StaticInst>,
}

/// Consecutive filler parcels past the last interesting one before
/// probing stops (code is dense; real decode information never hides
/// behind a gap this long).
const PROBE_GUARD: u64 = 8192;

impl StaticImage {
    /// An empty image (every lookup is filler).
    pub fn empty() -> Self {
        Self {
            base: 0,
            parcels: Vec::new(),
        }
    }

    /// Captures the static image around the dynamic PC window
    /// `[lo, hi]` by probing `look` parcel-by-parcel, starting at
    /// `min(entry, lo)` and continuing until well past both `hi` and the
    /// last non-filler parcel. Trailing filler is trimmed; lookups
    /// outside the stored window answer filler, exactly as the probed
    /// stream does past its code.
    pub fn probe(entry: u64, lo: u64, hi: u64, look: impl Fn(u64) -> StaticInst) -> Self {
        let base = entry.min(lo) & !1;
        let mut parcels = Vec::new();
        let mut trailing = 0u64;
        let mut pc = base;
        while parcels.len() < MAX_STATIC_PARCELS as usize {
            if pc > hi && trailing >= PROBE_GUARD {
                break;
            }
            let si = look(pc);
            if si == StaticInst::filler() {
                trailing += 1;
            } else {
                trailing = 0;
            }
            parcels.push(si);
            pc += 2;
        }
        while parcels.last() == Some(&StaticInst::filler()) {
            parcels.pop();
        }
        Self { base, parcels }
    }

    /// Base PC of the stored window.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of stored 2-byte parcels.
    pub fn parcels(&self) -> usize {
        self.parcels.len()
    }

    /// Static decode at `pc`: the stored parcel inside the window,
    /// filler outside it (and at odd addresses).
    pub fn lookup(&self, pc: u64) -> StaticInst {
        if pc < self.base || pc & 1 != 0 {
            return StaticInst::filler();
        }
        let idx = ((pc - self.base) / 2) as usize;
        self.parcels
            .get(idx)
            .copied()
            .unwrap_or_else(StaticInst::filler)
    }

    /// Encodes the image's parcel payload (not the section framing).
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.parcels.len() * 2);
        for (i, p) in self.parcels.iter().enumerate() {
            let pc = self.base + i as u64 * 2;
            match (p.op, p.cfi_kind) {
                (op, None) => {
                    let (code, addr) = match op {
                        Op::Int => (OP_INT, None),
                        Op::Mul => (OP_MUL, None),
                        Op::Div => (OP_DIV, None),
                        Op::Fp => (OP_FP, None),
                        Op::Load { addr } => (OP_LOAD, Some(addr)),
                        Op::Store { addr } => (OP_STORE, Some(addr)),
                        // A CFI op without a kind has no meaning for
                        // wrong-path predecode; store as filler.
                        Op::Cfi => (OP_INT, None),
                    };
                    out.push(code);
                    if let Some(a) = addr {
                        varint::write_u64(&mut out, a);
                    }
                }
                (_, Some(kind)) => {
                    let code = kind_code(kind);
                    match p.target {
                        Some(t) => {
                            out.push(code | FLAG_TARGET);
                            varint::write_i64(&mut out, t.wrapping_sub(pc) as i64);
                        }
                        None => out.push(code),
                    }
                }
            }
        }
        out
    }

    /// Decodes a parcel payload produced by [`Self::encode_payload`].
    fn decode_payload(base: u64, count: u64, payload: &[u8]) -> Result<Self, CbtError> {
        let mut parcels = Vec::with_capacity(count.min(MAX_STATIC_PARCELS) as usize);
        let mut pos = 0usize;
        for i in 0..count {
            let pc = base + i * 2;
            let tag = *payload.get(pos).ok_or(CbtError::StaticShape {
                detail: format!("payload ends inside parcel {i}"),
            })?;
            pos += 1;
            let opcode = tag & 0x0f;
            let flags = tag & 0xf0;
            let parcel = if opcode < 8 {
                if flags != 0 {
                    return Err(CbtError::StaticShape {
                        detail: format!("parcel {i}: flags {flags:#04x} on non-CFI tag"),
                    });
                }
                let op = match opcode {
                    OP_INT => Op::Int,
                    OP_MUL => Op::Mul,
                    OP_DIV => Op::Div,
                    OP_FP => Op::Fp,
                    OP_LOAD | OP_STORE => {
                        let addr =
                            varint::read_u64(payload, &mut pos).ok_or(CbtError::BadVarint {
                                what: "static parcel address",
                            })?;
                        if opcode == OP_LOAD {
                            Op::Load { addr }
                        } else {
                            Op::Store { addr }
                        }
                    }
                    _ => {
                        return Err(CbtError::StaticShape {
                            detail: format!("parcel {i}: unknown opcode {opcode}"),
                        })
                    }
                };
                StaticInst {
                    op,
                    cfi_kind: None,
                    target: None,
                }
            } else {
                let kind = code_kind(opcode).ok_or_else(|| CbtError::StaticShape {
                    detail: format!("parcel {i}: unknown CFI opcode {opcode}"),
                })?;
                if flags & !FLAG_TARGET != 0 {
                    return Err(CbtError::StaticShape {
                        detail: format!("parcel {i}: reserved flags {flags:#04x}"),
                    });
                }
                let target = if flags & FLAG_TARGET != 0 {
                    let d = varint::read_i64(payload, &mut pos).ok_or(CbtError::BadVarint {
                        what: "static parcel target",
                    })?;
                    Some(pc.wrapping_add(d as u64))
                } else {
                    None
                };
                StaticInst {
                    op: Op::Cfi,
                    cfi_kind: Some(kind),
                    target,
                }
            };
            parcels.push(parcel);
        }
        if pos != payload.len() {
            return Err(CbtError::StaticShape {
                detail: format!(
                    "{} trailing bytes after the last parcel",
                    payload.len() - pos
                ),
            });
        }
        Ok(Self { base, parcels })
    }
}

fn kind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => OP_COND,
        BranchKind::Jump => OP_JUMP,
        BranchKind::Call => OP_CALL,
        BranchKind::Ret => OP_RET,
        BranchKind::Indirect => OP_INDIRECT,
    }
}

fn code_kind(code: u8) -> Option<BranchKind> {
    Some(match code {
        OP_COND => BranchKind::Conditional,
        OP_JUMP => BranchKind::Jump,
        OP_CALL => BranchKind::Call,
        OP_RET => BranchKind::Ret,
        OP_INDIRECT => BranchKind::Indirect,
        _ => return None,
    })
}

// ------------------------------------------------------------------ writer

/// Per-block metadata, as stored in the footer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Absolute file offset of the block header.
    pub offset: u64,
    /// Index of the block's first record within the whole trace.
    pub first_index: u64,
    /// PC of the block's first record.
    pub first_pc: u64,
    /// Records in the block.
    pub records: u32,
}

/// Summary statistics returned by [`CbtWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbtSummary {
    /// Dynamic records written.
    pub records: u64,
    /// Blocks written.
    pub blocks: u64,
    /// Total file bytes, framing included.
    pub bytes: u64,
    /// Static-image parcels stored.
    pub static_parcels: u64,
}

/// Streams an instruction sequence into the CBT on-disk format.
///
/// Memory stays O(block): each block's payload is buffered, checksummed,
/// and written as it fills; only the (small) footer index accumulates.
#[derive(Debug)]
pub struct CbtWriter<W: Write> {
    w: W,
    offset: u64,
    payload: Vec<u8>,
    block_records: u32,
    block_first_pc: u64,
    block_first_index: u64,
    records_per_block: u32,
    prev_mem_addr: u64,
    next_pc: Option<u64>,
    index: Vec<BlockMeta>,
    total: u64,
    pc_window: Option<(u64, u64)>,
    entry_pc: u64,
}

impl<W: Write> CbtWriter<W> {
    /// Writes the file header for a trace of `name` entering at
    /// `entry_pc`, and returns the writer ready for [`Self::push`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut w: W, name: &str, entry_pc: u64) -> Result<Self, CbtError> {
        let mut header = Vec::with_capacity(32 + name.len());
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes()); // flags
        varint::write_u64(&mut header, name.len() as u64);
        header.extend_from_slice(name.as_bytes());
        varint::write_u64(&mut header, entry_pc);
        let crc = cobra_sim::crc32c(&header);
        w.write_all(&header)?;
        w.write_all(&crc.to_le_bytes())?;
        Ok(Self {
            w,
            offset: header.len() as u64 + 4,
            payload: Vec::new(),
            block_records: 0,
            block_first_pc: 0,
            block_first_index: 0,
            records_per_block: DEFAULT_BLOCK_RECORDS,
            prev_mem_addr: 0,
            next_pc: None,
            index: Vec::new(),
            total: 0,
            pc_window: None,
            entry_pc,
        })
    }

    /// Overrides the records-per-block target (clamped to ≥ 1); useful in
    /// tests to force multi-block files from short streams.
    pub fn set_records_per_block(&mut self, n: u32) {
        self.records_per_block = n.max(1);
    }

    /// The dynamic PC window `(min, max)` observed so far, if any record
    /// has been pushed — the probe window for [`StaticImage::probe`].
    pub fn pc_window(&self) -> Option<(u64, u64)> {
        self.pc_window
    }

    /// Appends one dynamic instruction.
    ///
    /// # Errors
    ///
    /// [`CbtError::Unencodable`] if the instruction's op/CFI fields are
    /// inconsistent, an unconditional CFI is marked not-taken, or its PC
    /// does not follow from the previous record (CBT derives PCs, so the
    /// stream must be a connected path). I/O errors propagate.
    pub fn push(&mut self, inst: &DynInst) -> Result<(), CbtError> {
        if let Some(expected) = self.next_pc {
            if inst.pc != expected {
                return Err(CbtError::Unencodable {
                    pc: inst.pc,
                    detail: format!(
                        "PC does not follow from the previous record (expected {expected:#x})"
                    ),
                });
            }
        }
        if self.block_records == 0 {
            self.block_first_pc = inst.pc;
            self.block_first_index = self.total;
            self.prev_mem_addr = 0;
        }
        let mut tag: u8;
        let mut dep = inst.dep;
        match (inst.op, inst.cfi) {
            (Op::Cfi, Some(c)) => {
                if c.kind != BranchKind::Conditional && !c.taken {
                    return Err(CbtError::Unencodable {
                        pc: inst.pc,
                        detail: format!("not-taken unconditional {:?}", c.kind),
                    });
                }
                tag = kind_code(c.kind);
                if c.taken {
                    tag |= FLAG_TAKEN;
                }
                if c.sfb {
                    tag |= FLAG_SFB;
                }
            }
            (Op::Cfi, None) => {
                return Err(CbtError::Unencodable {
                    pc: inst.pc,
                    detail: "Op::Cfi without a CfiOutcome".into(),
                })
            }
            (op, Some(_)) => {
                return Err(CbtError::Unencodable {
                    pc: inst.pc,
                    detail: format!("CfiOutcome on non-CFI op {op:?}"),
                })
            }
            (Op::Int, None) => tag = OP_INT,
            (Op::Mul, None) => tag = OP_MUL,
            (Op::Div, None) => tag = OP_DIV,
            (Op::Fp, None) => tag = OP_FP,
            (Op::Load { .. }, None) => tag = OP_LOAD,
            (Op::Store { .. }, None) => tag = OP_STORE,
        }
        if dep != 0 {
            tag |= FLAG_DEP;
        } else {
            dep = 0;
        }
        self.payload.push(tag);
        if dep != 0 {
            self.payload.push(dep);
        }
        if let Op::Load { addr } | Op::Store { addr } = inst.op {
            let delta = addr.wrapping_sub(self.prev_mem_addr) as i64;
            varint::write_i64(&mut self.payload, delta);
            self.prev_mem_addr = addr;
        }
        if let Some(c) = inst.cfi {
            let delta = c.target.wrapping_sub(inst.pc + 2) as i64;
            varint::write_i64(&mut self.payload, delta);
            self.next_pc = Some(if c.taken { c.target } else { inst.pc + 2 });
        } else {
            self.next_pc = Some(inst.pc + 2);
        }
        self.pc_window = Some(match self.pc_window {
            None => (inst.pc, inst.pc),
            Some((lo, hi)) => (lo.min(inst.pc), hi.max(inst.pc)),
        });
        self.total += 1;
        self.block_records += 1;
        if self.block_records >= self.records_per_block {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), CbtError> {
        if self.block_records == 0 {
            return Ok(());
        }
        let payload_len = self.payload.len() as u32;
        let mut crc = Crc32c::new();
        crc.update(&payload_len.to_le_bytes());
        crc.update(&self.block_records.to_le_bytes());
        crc.update(&self.block_first_pc.to_le_bytes());
        crc.update(&self.payload);
        self.w.write_all(&payload_len.to_le_bytes())?;
        self.w.write_all(&self.block_records.to_le_bytes())?;
        self.w.write_all(&self.block_first_pc.to_le_bytes())?;
        self.w.write_all(&crc.finish().to_le_bytes())?;
        self.w.write_all(&self.payload)?;
        self.index.push(BlockMeta {
            offset: self.offset,
            first_index: self.block_first_index,
            first_pc: self.block_first_pc,
            records: self.block_records,
        });
        self.offset += BLOCK_HEADER_BYTES + u64::from(payload_len);
        self.payload.clear();
        self.block_records = 0;
        Ok(())
    }

    /// Flushes the final block, writes the static image and footer, and
    /// returns summary statistics. The writer is consumed; the file is
    /// complete and self-contained afterwards.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self, image: &StaticImage) -> Result<CbtSummary, CbtError> {
        self.flush_block()?;
        let static_offset = self.offset;
        let mut section = Vec::new();
        varint::write_u64(&mut section, image.base);
        varint::write_u64(&mut section, image.parcels.len() as u64);
        let payload = image.encode_payload();
        varint::write_u64(&mut section, payload.len() as u64);
        section.extend_from_slice(&payload);
        let crc = cobra_sim::crc32c(&section);
        self.w.write_all(&section)?;
        self.w.write_all(&crc.to_le_bytes())?;
        self.offset += section.len() as u64 + 4;

        let mut footer = Vec::with_capacity(32 + self.index.len() * INDEX_ENTRY_BYTES as usize);
        footer.extend_from_slice(&static_offset.to_le_bytes());
        footer.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for b in &self.index {
            footer.extend_from_slice(&b.offset.to_le_bytes());
            footer.extend_from_slice(&b.first_index.to_le_bytes());
            footer.extend_from_slice(&b.first_pc.to_le_bytes());
        }
        footer.extend_from_slice(&self.total.to_le_bytes());
        let crc = cobra_sim::crc32c(&footer);
        let footer_len = footer.len() as u32 + 4;
        self.w.write_all(&footer)?;
        self.w.write_all(&crc.to_le_bytes())?;
        self.w.write_all(&footer_len.to_le_bytes())?;
        self.w.write_all(&FOOTER_MAGIC)?;
        self.offset += footer.len() as u64 + 4 + 4 + 4;
        self.w.flush()?;
        Ok(CbtSummary {
            records: self.total,
            blocks: self.index.len() as u64,
            bytes: self.offset,
            static_parcels: image.parcels.len() as u64,
        })
    }

    /// The stream entry PC recorded in the header.
    pub fn entry_pc(&self) -> u64 {
        self.entry_pc
    }

    /// Records pushed so far.
    pub fn records(&self) -> u64 {
        self.total
    }
}

// ------------------------------------------------------------------ reader

/// A validating, seekable, block-streaming `.cbt` reader.
///
/// [`CbtReader::open`] parses and checks the header, footer, index, and
/// static image; individual blocks are read, checksummed, and decoded on
/// demand via [`CbtReader::read_block`], keeping memory O(block).
/// [`CbtReader::validate`] additionally streams every block once —
/// end-to-end integrity without ever holding the whole trace.
#[derive(Debug)]
pub struct CbtReader<R: Read + Seek> {
    r: R,
    name: String,
    entry_pc: u64,
    image: StaticImage,
    index: Vec<BlockMeta>,
    total: u64,
}

impl<R: Read + Seek> CbtReader<R> {
    /// Opens a trace: parses the header, locates and checks the footer,
    /// loads the block index and static image. Block payloads are not yet
    /// read; call [`Self::validate`] for a full integrity pass.
    ///
    /// # Errors
    ///
    /// Any [`CbtError`] describing the first malformed structure found.
    pub fn open(mut r: R) -> Result<Self, CbtError> {
        let file_len = r.seek(SeekFrom::End(0))?;
        r.seek(SeekFrom::Start(0))?;

        // --- header ---
        let mut fixed = [0u8; 12];
        read_exact(&mut r, &mut fixed, "header")?;
        if fixed[..8] != MAGIC {
            return Err(CbtError::BadMagic);
        }
        let version = u16::from_le_bytes([fixed[8], fixed[9]]);
        if version != VERSION {
            return Err(CbtError::UnsupportedVersion(version));
        }
        let flags = u16::from_le_bytes([fixed[10], fixed[11]]);
        if flags != 0 {
            return Err(CbtError::UnsupportedFlags(flags));
        }
        let mut header_bytes = fixed.to_vec();
        let name_len = read_varint_stream(&mut r, &mut header_bytes, "header name length")?;
        if name_len > MAX_NAME_BYTES {
            return Err(CbtError::LimitExceeded {
                what: "workload-name length",
                got: name_len,
                max: MAX_NAME_BYTES,
            });
        }
        let mut name_buf = vec![0u8; name_len as usize];
        read_exact(&mut r, &mut name_buf, "workload name")?;
        header_bytes.extend_from_slice(&name_buf);
        let name = String::from_utf8(name_buf).map_err(|_| CbtError::BadName)?;
        let entry_pc = read_varint_stream(&mut r, &mut header_bytes, "header entry PC")?;
        let stored = read_u32(&mut r, "header checksum")?;
        let computed = cobra_sim::crc32c(&header_bytes);
        if stored != computed {
            return Err(CbtError::HeaderChecksum { stored, computed });
        }
        let header_end = header_bytes.len() as u64 + 4;

        // --- footer ---
        if file_len < header_end + 8 {
            return Err(CbtError::Truncated { what: "footer" });
        }
        r.seek(SeekFrom::Start(file_len - 8))?;
        let footer_len = u64::from(read_u32(&mut r, "footer length")?);
        let mut magic = [0u8; 4];
        read_exact(&mut r, &mut magic, "footer magic")?;
        if magic != FOOTER_MAGIC {
            return Err(CbtError::BadFooterMagic);
        }
        let min_footer = 8 + 4 + 8 + 4;
        if footer_len < min_footer || footer_len > file_len.saturating_sub(header_end + 8) {
            return Err(CbtError::Truncated { what: "footer" });
        }
        let footer_start = file_len - 8 - footer_len;
        r.seek(SeekFrom::Start(footer_start))?;
        let mut footer = vec![0u8; footer_len as usize];
        read_exact(&mut r, &mut footer, "footer")?;
        let (body, crc_bytes) = footer.split_at(footer.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let computed = cobra_sim::crc32c(body);
        if stored != computed {
            return Err(CbtError::FooterChecksum { stored, computed });
        }
        let mut pos = 0usize;
        let static_offset = take_u64(body, &mut pos, "footer static offset")?;
        let block_count = take_u32(body, &mut pos, "footer block count")?;
        if block_count > MAX_BLOCKS {
            return Err(CbtError::LimitExceeded {
                what: "block count",
                got: u64::from(block_count),
                max: u64::from(MAX_BLOCKS),
            });
        }
        if body.len() as u64 != 8 + 4 + u64::from(block_count) * INDEX_ENTRY_BYTES + 8 {
            return Err(CbtError::IndexMismatch {
                detail: format!(
                    "footer length {} does not fit {} index entries",
                    footer_len, block_count
                ),
            });
        }
        let mut index = Vec::with_capacity(block_count as usize);
        let mut prev_offset = header_end;
        let mut prev_index = 0u64;
        for i in 0..block_count {
            let offset = take_u64(body, &mut pos, "index entry offset")?;
            let first_index = take_u64(body, &mut pos, "index entry record index")?;
            let first_pc = take_u64(body, &mut pos, "index entry PC")?;
            if offset < prev_offset || offset >= static_offset {
                return Err(CbtError::IndexMismatch {
                    detail: format!(
                        "block {i} offset {offset:#x} out of order or outside the block region"
                    ),
                });
            }
            if i > 0 && first_index <= prev_index {
                return Err(CbtError::IndexMismatch {
                    detail: format!("block {i} first record index {first_index} not increasing"),
                });
            }
            if i == 0 && (offset != header_end || first_index != 0) {
                return Err(CbtError::IndexMismatch {
                    detail: "block 0 must start at the header end with record 0".into(),
                });
            }
            prev_offset = offset;
            prev_index = first_index;
            index.push(BlockMeta {
                offset,
                first_index,
                first_pc,
                records: 0, // filled from block headers on read
            });
        }
        let total = take_u64(body, &mut pos, "footer record total")?;
        if static_offset < header_end || static_offset >= footer_start {
            return Err(CbtError::IndexMismatch {
                detail: format!("static-image offset {static_offset:#x} outside the file body"),
            });
        }

        // --- static image ---
        r.seek(SeekFrom::Start(static_offset))?;
        let mut section = Vec::new();
        let base = read_varint_stream(&mut r, &mut section, "static-image base PC")?;
        let parcel_count = read_varint_stream(&mut r, &mut section, "static-image parcel count")?;
        if parcel_count > MAX_STATIC_PARCELS {
            return Err(CbtError::LimitExceeded {
                what: "static-image parcel count",
                got: parcel_count,
                max: MAX_STATIC_PARCELS,
            });
        }
        let payload_len = read_varint_stream(&mut r, &mut section, "static-image payload length")?;
        if payload_len > MAX_STATIC_BYTES {
            return Err(CbtError::LimitExceeded {
                what: "static-image payload length",
                got: payload_len,
                max: MAX_STATIC_BYTES,
            });
        }
        let mut payload = vec![0u8; payload_len as usize];
        read_exact(&mut r, &mut payload, "static-image payload")?;
        section.extend_from_slice(&payload);
        let stored = read_u32(&mut r, "static-image checksum")?;
        let computed = cobra_sim::crc32c(&section);
        if stored != computed {
            return Err(CbtError::StaticChecksum { stored, computed });
        }
        let image = StaticImage::decode_payload(base, parcel_count, &payload)?;

        Ok(Self {
            r,
            name,
            entry_pc,
            image,
            index,
            total,
        })
    }

    /// The workload name stored in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stream entry PC stored in the header.
    pub fn entry_pc(&self) -> u64 {
        self.entry_pc
    }

    /// The captured static-decode image.
    pub fn image(&self) -> &StaticImage {
        &self.image
    }

    /// Total dynamic records in the trace (from the footer).
    pub fn total_records(&self) -> u64 {
        self.total
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.index.len()
    }

    /// Reads, checksums, and decodes block `i` (zero-based).
    ///
    /// # Errors
    ///
    /// [`CbtError::BlockChecksum`] on corruption, [`CbtError::BadRecordTag`]
    /// / [`CbtError::BlockShape`] on malformed payloads, and I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (callers iterate `0..blocks()`).
    pub fn read_block(&mut self, i: usize) -> Result<Vec<DynInst>, CbtError> {
        let meta = self.index[i];
        let block = i as u32;
        self.r.seek(SeekFrom::Start(meta.offset))?;
        let payload_len = read_u32(&mut self.r, "block payload length")?;
        if payload_len > MAX_BLOCK_BYTES {
            return Err(CbtError::LimitExceeded {
                what: "block payload length",
                got: u64::from(payload_len),
                max: u64::from(MAX_BLOCK_BYTES),
            });
        }
        let record_count = read_u32(&mut self.r, "block record count")?;
        if record_count > MAX_BLOCK_RECORDS {
            return Err(CbtError::LimitExceeded {
                what: "block record count",
                got: u64::from(record_count),
                max: u64::from(MAX_BLOCK_RECORDS),
            });
        }
        let first_pc = read_u64(&mut self.r, "block first PC")?;
        let stored = read_u32(&mut self.r, "block checksum")?;
        let mut payload = vec![0u8; payload_len as usize];
        read_exact(&mut self.r, &mut payload, "block payload")?;
        let mut crc = Crc32c::new();
        crc.update(&payload_len.to_le_bytes());
        crc.update(&record_count.to_le_bytes());
        crc.update(&first_pc.to_le_bytes());
        crc.update(&payload);
        let computed = crc.finish();
        if stored != computed {
            return Err(CbtError::BlockChecksum {
                block,
                stored,
                computed,
            });
        }
        if first_pc != meta.first_pc {
            return Err(CbtError::IndexMismatch {
                detail: format!(
                    "block {block} header PC {first_pc:#x} disagrees with the index ({:#x})",
                    meta.first_pc
                ),
            });
        }
        decode_block(block, first_pc, record_count, &payload)
    }

    /// Streams every block once, verifying checksums, record counts, the
    /// footer index, and cross-block PC chaining — a full-file integrity
    /// pass in O(block) memory.
    ///
    /// # Errors
    ///
    /// The first [`CbtError`] encountered.
    pub fn validate(&mut self) -> Result<(), CbtError> {
        let mut running_total = 0u64;
        let mut expected_pc: Option<u64> = None;
        for i in 0..self.index.len() {
            let meta = self.index[i];
            if meta.first_index != running_total {
                return Err(CbtError::IndexMismatch {
                    detail: format!(
                        "block {i} first record index {} but {} records precede it",
                        meta.first_index, running_total
                    ),
                });
            }
            let insts = self.read_block(i)?;
            if let (Some(exp), Some(first)) = (expected_pc, insts.first()) {
                if first.pc != exp {
                    return Err(CbtError::BlockShape {
                        block: i as u32,
                        detail: format!(
                            "first PC {:#x} does not chain from the previous block ({exp:#x})",
                            first.pc
                        ),
                    });
                }
            }
            if let Some(last) = insts.last() {
                expected_pc = Some(match last.cfi {
                    Some(c) if c.taken => c.target,
                    _ => last.pc + 2,
                });
            }
            running_total += insts.len() as u64;
        }
        if running_total != self.total {
            return Err(CbtError::IndexMismatch {
                detail: format!(
                    "footer declares {} records but blocks hold {running_total}",
                    self.total
                ),
            });
        }
        Ok(())
    }
}

/// Decodes one block payload into instructions.
fn decode_block(
    block: u32,
    first_pc: u64,
    record_count: u32,
    payload: &[u8],
) -> Result<Vec<DynInst>, CbtError> {
    let mut out = Vec::with_capacity(record_count as usize);
    let mut pos = 0usize;
    let mut pc = first_pc;
    let mut prev_mem_addr = 0u64;
    for record in 0..record_count {
        let tag = *payload.get(pos).ok_or(CbtError::BlockShape {
            block,
            detail: format!("payload ends inside record {record}"),
        })?;
        pos += 1;
        if tag & FLAG_RESERVED != 0 {
            return Err(CbtError::BadRecordTag { block, record, tag });
        }
        let opcode = tag & 0x0f;
        let dep = if tag & FLAG_DEP != 0 {
            let d = *payload.get(pos).ok_or(CbtError::BlockShape {
                block,
                detail: format!("payload ends inside record {record} dep byte"),
            })?;
            pos += 1;
            if d == 0 {
                // A zero dep with the flag set is non-canonical.
                return Err(CbtError::BadRecordTag { block, record, tag });
            }
            d
        } else {
            0
        };
        let inst = if opcode < 8 {
            if tag & (FLAG_TAKEN | FLAG_SFB) != 0 {
                return Err(CbtError::BadRecordTag { block, record, tag });
            }
            let op = match opcode {
                OP_INT => Op::Int,
                OP_MUL => Op::Mul,
                OP_DIV => Op::Div,
                OP_FP => Op::Fp,
                OP_LOAD | OP_STORE => {
                    let delta = varint::read_i64(payload, &mut pos).ok_or(CbtError::BadVarint {
                        what: "record memory-address delta",
                    })?;
                    let addr = prev_mem_addr.wrapping_add(delta as u64);
                    prev_mem_addr = addr;
                    if opcode == OP_LOAD {
                        Op::Load { addr }
                    } else {
                        Op::Store { addr }
                    }
                }
                _ => return Err(CbtError::BadRecordTag { block, record, tag }),
            };
            let inst = DynInst {
                pc,
                op,
                cfi: None,
                dep,
            };
            pc += 2;
            inst
        } else {
            let kind = code_kind(opcode).ok_or(CbtError::BadRecordTag { block, record, tag })?;
            let taken = tag & FLAG_TAKEN != 0;
            if kind != BranchKind::Conditional && !taken {
                return Err(CbtError::BadRecordTag { block, record, tag });
            }
            let delta = varint::read_i64(payload, &mut pos).ok_or(CbtError::BadVarint {
                what: "record branch-target delta",
            })?;
            let target = (pc + 2).wrapping_add(delta as u64);
            let inst = DynInst {
                pc,
                op: Op::Cfi,
                cfi: Some(CfiOutcome {
                    kind,
                    taken,
                    target,
                    sfb: tag & FLAG_SFB != 0,
                }),
                dep,
            };
            pc = if taken { target } else { pc + 2 };
            inst
        };
        out.push(inst);
    }
    if pos != payload.len() {
        return Err(CbtError::BlockShape {
            block,
            detail: format!(
                "{} trailing bytes after the last record",
                payload.len() - pos
            ),
        });
    }
    Ok(out)
}

// -------------------------------------------------------------- IO helpers

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], what: &'static str) -> Result<(), CbtError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CbtError::Truncated { what }
        } else {
            CbtError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R, what: &'static str) -> Result<u32, CbtError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R, what: &'static str) -> Result<u64, CbtError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, what)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a varint byte-by-byte from a stream, appending the raw bytes to
/// `raw` (for checksumming).
fn read_varint_stream<R: Read>(
    r: &mut R,
    raw: &mut Vec<u8>,
    what: &'static str,
) -> Result<u64, CbtError> {
    let start = raw.len();
    for _ in 0..varint::MAX_VARINT_LEN {
        let mut b = [0u8; 1];
        read_exact(r, &mut b, what)?;
        raw.push(b[0]);
        if b[0] & 0x80 == 0 {
            let mut pos = 0;
            return varint::read_u64(&raw[start..], &mut pos).ok_or(CbtError::BadVarint { what });
        }
    }
    Err(CbtError::BadVarint { what })
}

fn take_u32(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, CbtError> {
    let end = *pos + 4;
    let bytes = buf.get(*pos..end).ok_or(CbtError::Truncated { what })?;
    *pos = end;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

fn take_u64(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, CbtError> {
    let end = *pos + 8;
    let bytes = buf.get(*pos..end).ok_or(CbtError::Truncated { what })?;
    *pos = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn cond(pc: u64, taken: bool, target: u64) -> DynInst {
        DynInst {
            pc,
            op: Op::Cfi,
            cfi: Some(CfiOutcome {
                kind: BranchKind::Conditional,
                taken,
                target,
                sfb: false,
            }),
            dep: 0,
        }
    }

    fn sample_stream() -> Vec<DynInst> {
        let mut v = Vec::new();
        let mut pc = 0x1000u64;
        for i in 0..200u64 {
            if i % 5 == 4 {
                let taken = i % 10 == 9;
                let target = if taken { 0x1000 } else { pc + 10 };
                let inst = cond(pc, taken, target);
                pc = if taken { 0x1000 } else { pc + 2 };
                v.push(inst);
            } else if i % 7 == 3 {
                v.push(DynInst {
                    pc,
                    op: Op::Load {
                        addr: 0x1000_0000 + i * 64,
                    },
                    cfi: None,
                    dep: (i % 3) as u8,
                });
                pc += 2;
            } else {
                v.push(DynInst::int(pc));
                pc += 2;
            }
        }
        v
    }

    fn write_sample(block_records: u32) -> Vec<u8> {
        let insts = sample_stream();
        let mut buf = Vec::new();
        let mut w = CbtWriter::new(&mut buf, "sample", 0x1000).unwrap();
        w.set_records_per_block(block_records);
        for i in &insts {
            w.push(i).unwrap();
        }
        let image = StaticImage::empty();
        w.finish(&image).unwrap();
        buf
    }

    #[test]
    fn round_trips_records_across_blocks() {
        for block_records in [7u32, 64, 100_000] {
            let insts = sample_stream();
            let bytes = write_sample(block_records);
            let mut r = CbtReader::open(Cursor::new(&bytes)).unwrap();
            r.validate().unwrap();
            assert_eq!(r.name(), "sample");
            assert_eq!(r.entry_pc(), 0x1000);
            assert_eq!(r.total_records(), insts.len() as u64);
            let mut decoded = Vec::new();
            for i in 0..r.blocks() {
                decoded.extend(r.read_block(i).unwrap());
            }
            assert_eq!(decoded, insts, "block_records={block_records}");
        }
    }

    #[test]
    fn static_image_round_trips() {
        let parcels = vec![
            StaticInst::filler(),
            StaticInst {
                op: Op::Load { addr: 0x1000_0000 },
                cfi_kind: None,
                target: None,
            },
            StaticInst {
                op: Op::Cfi,
                cfi_kind: Some(BranchKind::Conditional),
                target: Some(0x2000),
            },
            StaticInst {
                op: Op::Cfi,
                cfi_kind: Some(BranchKind::Ret),
                target: None,
            },
            StaticInst {
                op: Op::Mul,
                cfi_kind: None,
                target: None,
            },
        ];
        let image = StaticImage {
            base: 0x4000,
            parcels: parcels.clone(),
        };
        let payload = image.encode_payload();
        let back = StaticImage::decode_payload(0x4000, parcels.len() as u64, &payload).unwrap();
        assert_eq!(back, image);
        assert_eq!(back.lookup(0x4004).cfi_kind, Some(BranchKind::Conditional));
        assert_eq!(back.lookup(0x4003), StaticInst::filler()); // odd
        assert_eq!(back.lookup(0x3ffe), StaticInst::filler()); // below base
        assert_eq!(back.lookup(0x400a), StaticInst::filler()); // past end
    }

    #[test]
    fn probe_trims_trailing_filler() {
        let look = |pc: u64| {
            if pc == 0x1004 {
                StaticInst {
                    op: Op::Cfi,
                    cfi_kind: Some(BranchKind::Jump),
                    target: Some(0x1000),
                }
            } else {
                StaticInst::filler()
            }
        };
        let image = StaticImage::probe(0x1000, 0x1000, 0x1004, look);
        assert_eq!(image.base(), 0x1000);
        assert_eq!(image.parcels(), 3);
        assert_eq!(image.lookup(0x1004).cfi_kind, Some(BranchKind::Jump));
    }

    #[test]
    fn writer_rejects_inconsistent_instructions() {
        let mut w = CbtWriter::new(Vec::new(), "x", 0).unwrap();
        let bad = DynInst {
            pc: 0,
            op: Op::Cfi,
            cfi: None,
            dep: 0,
        };
        assert!(matches!(w.push(&bad), Err(CbtError::Unencodable { .. })));
        let not_taken_jump = DynInst {
            pc: 0,
            op: Op::Cfi,
            cfi: Some(CfiOutcome {
                kind: BranchKind::Jump,
                taken: false,
                target: 8,
                sfb: false,
            }),
            dep: 0,
        };
        assert!(matches!(
            w.push(&not_taken_jump),
            Err(CbtError::Unencodable { .. })
        ));
    }

    #[test]
    fn writer_rejects_disconnected_pcs() {
        let mut w = CbtWriter::new(Vec::new(), "x", 0).unwrap();
        w.push(&DynInst::int(0x1000)).unwrap();
        let err = w.push(&DynInst::int(0x2000)).unwrap_err();
        assert!(matches!(err, CbtError::Unencodable { .. }), "{err}");
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let bytes = write_sample(16);
        // Every strict prefix must fail to open or fail to validate —
        // never panic, never succeed.
        for cut in 0..bytes.len() {
            let r = CbtReader::open(Cursor::new(bytes[..cut].to_vec()));
            if let Ok(mut r) = r {
                assert!(
                    r.validate().is_err(),
                    "truncation at {cut}/{} went undetected",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let bytes = write_sample(16);
        // Flip one bit in every byte: open+validate must report an error.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            let outcome = CbtReader::open(Cursor::new(bad)).and_then(|mut r| r.validate());
            assert!(outcome.is_err(), "bit flip at byte {i} went undetected");
        }
    }

    #[test]
    fn block_corruption_names_the_block() {
        let insts = sample_stream();
        let mut buf = Vec::new();
        let mut w = CbtWriter::new(&mut buf, "sample", 0x1000).unwrap();
        w.set_records_per_block(50);
        for i in &insts {
            w.push(i).unwrap();
        }
        w.finish(&StaticImage::empty()).unwrap();
        let r = CbtReader::open(Cursor::new(buf.clone())).unwrap();
        assert!(r.blocks() >= 3);
        // Corrupt a byte inside block 2's payload.
        let off = {
            let mut r2 = CbtReader::open(Cursor::new(buf.clone())).unwrap();
            let _ = r2.read_block(2).unwrap();
            // Block 2's payload starts after its fixed header.
            r.index_offset_for_test(2) + BLOCK_HEADER_BYTES
        };
        let mut bad = buf;
        bad[off as usize] ^= 0xff;
        let mut r = CbtReader::open(Cursor::new(bad)).unwrap();
        match r.read_block(2) {
            Err(CbtError::BlockChecksum { block: 2, .. }) => {}
            other => panic!("expected BlockChecksum for block 2, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_precise() {
        let e = CbtError::BlockChecksum {
            block: 3,
            stored: 0xdead_beef,
            computed: 0x1234_5678,
        };
        let s = e.to_string();
        assert!(s.contains("block 3"), "{s}");
        assert!(s.contains("0xdeadbeef"), "{s}");
        assert!(CbtError::BadMagic.to_string().contains("COBRACBT"));
    }

    impl<R: Read + Seek> CbtReader<R> {
        fn index_offset_for_test(&self, i: usize) -> u64 {
            self.index[i].offset
        }
    }
}
