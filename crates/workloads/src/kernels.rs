//! Synthetic kernels: Dhrystone, a CoreMark-like kernel, and predictor
//! stress microbenchmarks.

use crate::synth::{BranchMix, ProgramSpec, SyntheticProgram};

/// A Dhrystone-like kernel: a small, hot main loop with easy branches and
/// a couple of short calls — the workload the paper uses for the fetch
/// serialization (Section I) and history-replay cost (Section VI-B)
/// observations.
pub fn dhrystone() -> ProgramSpec {
    ProgramSpec {
        name: "dhrystone".into(),
        seed: 0xd457,
        functions: 4,
        blocks_per_fn: 6,
        body_len: (3, 7),
        mix: BranchMix {
            cond: 0.50,
            loop_back: 0.28,
            call: 0.16,
            jump: 0.06,
            indirect: 0.0,
        },
        cond_behaviors: (0.20, 0.50, 0.10, 0.20),
        bias: 0.97,
        loop_trips: (4, 16),
        pattern_len: (2, 6),
        correlation_depth: (1, 3),
        mem_fraction: 0.20,
        fp_fraction: 0.0,
        working_set: 16 * 1024,
        pointer_chase: false,
        dep_fraction: 0.30,
        sfb_fraction: 0.0,
        sfb_shadow: 4,
        sfb_predication: false,
    }
}

/// A CoreMark-like kernel (state machine + list + matrix work) with a
/// configurable share of short-forwards "hammock" branches, the Section
/// VI-C experiment's subject. With `predication` the hammocks decode into
/// set-flag / conditional-execute micro-ops instead of branches.
pub fn coremark(predication: bool) -> ProgramSpec {
    ProgramSpec {
        name: if predication {
            "coremark+sfb".into()
        } else {
            "coremark".into()
        },
        seed: 0xc0de,
        functions: 6,
        blocks_per_fn: 10,
        body_len: (2, 6),
        mix: BranchMix {
            cond: 0.62,
            loop_back: 0.22,
            call: 0.12,
            jump: 0.04,
            indirect: 0.0,
        },
        // Non-hammock branches are loopy and predictable; the hammock
        // branches are data-dependent and nearly random — that is why
        // predicating them away helps so much.
        cond_behaviors: (0.30, 0.35, 0.20, 0.15),
        bias: 0.93,
        loop_trips: (8, 32),
        pattern_len: (2, 8),
        correlation_depth: (1, 6),
        mem_fraction: 0.22,
        fp_fraction: 0.0,
        working_set: 8 * 1024,
        pointer_chase: false,
        dep_fraction: 0.35,
        sfb_fraction: 0.30,
        sfb_shadow: 3,
        sfb_predication: predication,
    }
}

/// Aliasing stress: far more hot static branches than untagged tables have
/// entries, so index collisions dominate — separates tagged from untagged
/// designs.
pub fn aliasing_stress() -> ProgramSpec {
    ProgramSpec {
        name: "alias-stress".into(),
        seed: 0xa11a,
        functions: 96,
        blocks_per_fn: 18,
        body_len: (1, 4),
        mix: BranchMix {
            cond: 0.80,
            loop_back: 0.04,
            call: 0.12,
            jump: 0.04,
            indirect: 0.0,
        },
        cond_behaviors: (0.75, 0.10, 0.10, 0.05),
        bias: 0.85,
        working_set: 64 * 1024,
        ..ProgramSpec::default()
    }
}

/// Loop stress: nested counted loops with stable trip counts — the loop
/// predictor's home turf.
pub fn loop_stress() -> ProgramSpec {
    ProgramSpec {
        name: "loop-stress".into(),
        seed: 0x100b,
        functions: 3,
        blocks_per_fn: 8,
        body_len: (2, 5),
        mix: BranchMix {
            cond: 0.15,
            loop_back: 0.75,
            call: 0.06,
            jump: 0.04,
            indirect: 0.0,
        },
        cond_behaviors: (0.5, 0.3, 0.1, 0.1),
        bias: 0.9,
        loop_trips: (5, 24),
        working_set: 8 * 1024,
        ..ProgramSpec::default()
    }
}

/// History-depth stress: branches correlated with outcomes `depth` back —
/// learnable only by predictors whose history reaches that far.
///
/// The non-correlated filler branches follow short deterministic patterns,
/// keeping history-window entropy low so the sweep measures history
/// *reach* rather than table capacity.
pub fn history_depth(depth: u32) -> ProgramSpec {
    ProgramSpec {
        name: format!("histdepth-{depth}"),
        seed: 0x4157 + depth as u64,
        functions: 4,
        blocks_per_fn: 10,
        mix: BranchMix {
            cond: 0.75,
            loop_back: 0.10,
            call: 0.10,
            jump: 0.05,
            indirect: 0.0,
        },
        cond_behaviors: (0.0, 0.60, 0.35, 0.05),
        pattern_len: (2, 4),
        correlation_depth: (depth, depth),
        working_set: 16 * 1024,
        ..ProgramSpec::default()
    }
}

/// BTB capacity stress: far more distinct taken-branch sites than BTB
/// entries, so target state thrashes — separates designs by their target
/// storage, not their direction predictors.
pub fn btb_stress() -> ProgramSpec {
    ProgramSpec {
        name: "btb-stress".into(),
        seed: 0xb7b5,
        functions: 128,
        blocks_per_fn: 16,
        body_len: (1, 3),
        mix: BranchMix {
            cond: 0.30,
            loop_back: 0.05,
            call: 0.25,
            jump: 0.38,
            indirect: 0.02,
        },
        cond_behaviors: (0.2, 0.4, 0.3, 0.1),
        bias: 0.95,
        working_set: 32 * 1024,
        ..ProgramSpec::default()
    }
}

/// RAS stress: call chains deeper than the return-address stack, forcing
/// return-target mispredictions when the stack wraps.
pub fn ras_stress() -> ProgramSpec {
    ProgramSpec {
        name: "ras-stress".into(),
        seed: 0x4a5c,
        functions: 48,
        blocks_per_fn: 4,
        body_len: (1, 3),
        mix: BranchMix {
            cond: 0.15,
            loop_back: 0.05,
            call: 0.70,
            jump: 0.10,
            indirect: 0.0,
        },
        cond_behaviors: (0.2, 0.4, 0.3, 0.1),
        bias: 0.95,
        working_set: 16 * 1024,
        ..ProgramSpec::default()
    }
}

/// Builds a kernel by name (used by the bench harness CLI).
pub fn kernel(name: &str) -> Option<SyntheticProgram> {
    match name {
        "dhrystone" => Some(dhrystone().build()),
        "coremark" => Some(coremark(false).build()),
        "coremark+sfb" => Some(coremark(true).build()),
        "alias-stress" => Some(aliasing_stress().build()),
        "loop-stress" => Some(loop_stress().build()),
        "btb-stress" => Some(btb_stress().build()),
        "ras-stress" => Some(ras_stress().build()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_uarch::InstructionStream;

    #[test]
    fn kernels_build_and_run() {
        for name in [
            "dhrystone",
            "coremark",
            "coremark+sfb",
            "alias-stress",
            "loop-stress",
            "btb-stress",
            "ras-stress",
        ] {
            let mut p = kernel(name).expect("known kernel");
            for _ in 0..5000 {
                assert!(p.next_inst().is_some(), "{name} must run forever");
            }
        }
    }

    #[test]
    fn coremark_modes_differ_only_in_hammocks() {
        let plain = coremark(false);
        let pred = coremark(true);
        assert_eq!(plain.sfb_fraction, pred.sfb_fraction);
        assert!(pred.sfb_predication && !plain.sfb_predication);
    }

    #[test]
    fn unknown_kernel_is_none() {
        assert!(kernel("spec").is_none());
    }

    #[test]
    fn history_depth_is_parameterized() {
        let p = history_depth(20);
        assert_eq!(p.correlation_depth, (20, 20));
    }
}
