//! Dynamic branch behaviours.
//!
//! Each conditional branch in a synthetic program is assigned a behaviour —
//! a small state machine deciding its outcome on every execution. The
//! behaviours span the branch classes the prediction literature evaluates
//! against: loop exits, biased-random data-dependent branches, periodic
//! patterns, and history-correlated branches.

use cobra_sim::SplitMix64;

/// A branch's dynamic behaviour class.
#[derive(Debug, Clone, PartialEq)]
pub enum BranchBehavior {
    /// A loop back-edge: taken `trip − 1` times, then not-taken once.
    Loop {
        /// Loop trip count (total iterations per loop instance).
        trip: u32,
    },
    /// Taken with probability `p` independently each execution
    /// (data-dependent branches; `p ≈ 0.5` is unpredictable by anything).
    Biased {
        /// Probability of taken.
        p: f64,
    },
    /// A fixed repeating direction pattern.
    Pattern {
        /// The pattern bits, LSB executed first.
        bits: u64,
        /// Pattern length (≤ 64).
        len: u32,
    },
    /// Correlated with recent *global* branch outcomes: outcome equals the
    /// direction of the `depth`-th most recent conditional branch, xor
    /// `invert`. History predictors learn these; bimodal tables cannot.
    Correlated {
        /// How far back in global history the correlation reaches.
        depth: u32,
        /// Invert the correlated bit.
        invert: bool,
    },
    /// Alternates taken / not-taken.
    Alternating,
}

/// Per-branch runtime state for a [`BranchBehavior`].
#[derive(Debug, Clone)]
pub struct BehaviorState {
    behavior: BranchBehavior,
    counter: u64,
    rng: SplitMix64,
}

impl BehaviorState {
    /// Creates runtime state for `behavior`, seeded deterministically.
    pub fn new(behavior: BranchBehavior, seed: u64) -> Self {
        Self {
            behavior,
            counter: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The behaviour this state drives.
    pub fn behavior(&self) -> &BranchBehavior {
        &self.behavior
    }

    /// Decides the next outcome. `global_history` supplies recent
    /// conditional-branch outcomes, most recent in bit 0.
    pub fn next_outcome(&mut self, global_history: u64) -> bool {
        let n = self.counter;
        self.counter += 1;
        match &self.behavior {
            BranchBehavior::Loop { trip } => {
                let t = (*trip).max(1) as u64;
                (n % t) != t - 1
            }
            BranchBehavior::Biased { p } => self.rng.chance(*p),
            BranchBehavior::Pattern { bits, len } => {
                let l = (*len).clamp(1, 64) as u64;
                (bits >> (n % l)) & 1 == 1
            }
            BranchBehavior::Correlated { depth, invert } => {
                let bit = (global_history >> (*depth).min(63)) & 1 == 1;
                bit ^ invert
            }
            BranchBehavior::Alternating => n.is_multiple_of(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(b: BranchBehavior, n: usize) -> Vec<bool> {
        let mut s = BehaviorState::new(b, 42);
        let mut hist = 0u64;
        let mut out = Vec::new();
        for _ in 0..n {
            let t = s.next_outcome(hist);
            hist = (hist << 1) | t as u64;
            out.push(t);
        }
        out
    }

    #[test]
    fn loop_exits_every_trip() {
        let o = run(BranchBehavior::Loop { trip: 4 }, 12);
        assert_eq!(
            o,
            vec![true, true, true, false, true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn loop_trip_one_never_taken() {
        let o = run(BranchBehavior::Loop { trip: 1 }, 4);
        assert!(o.iter().all(|&t| !t));
    }

    #[test]
    fn pattern_repeats() {
        let o = run(
            BranchBehavior::Pattern {
                bits: 0b011,
                len: 3,
            },
            9,
        );
        assert_eq!(
            o,
            vec![true, true, false, true, true, false, true, true, false]
        );
    }

    #[test]
    fn alternating_alternates() {
        let o = run(BranchBehavior::Alternating, 4);
        assert_eq!(o, vec![true, false, true, false]);
    }

    #[test]
    fn biased_rate_calibrated() {
        let o = run(BranchBehavior::Biased { p: 0.8 }, 10_000);
        let taken = o.iter().filter(|&&t| t).count();
        assert!((7500..8500).contains(&taken), "taken {taken} of 10000");
    }

    #[test]
    fn correlated_follows_history() {
        // depth 0 = repeat the previous outcome; seeded by history 0.
        let mut s = BehaviorState::new(
            BranchBehavior::Correlated {
                depth: 0,
                invert: true,
            },
            1,
        );
        let mut hist = 0u64;
        let mut prev: Option<bool> = None;
        for _ in 0..10 {
            let t = s.next_outcome(hist);
            if let Some(p) = prev {
                // invert of previous bit
                let expected: bool = !p;
                assert_eq!(t, expected);
            }
            hist = (hist << 1) | t as u64;
            prev = Some(t);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(BranchBehavior::Biased { p: 0.5 }, 50);
        let b = run(BranchBehavior::Biased { p: 0.5 }, 50);
        assert_eq!(a, b);
    }
}
