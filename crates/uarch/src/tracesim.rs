//! A trace-driven predictor evaluator — the software-simulation
//! methodology the paper argues against (Section II-B).
//!
//! [`TraceSim`] drives a composed predictor with the architectural branch
//! trace under idealized conditions: no speculation, no wrong-path
//! pollution, in-order immediate updates, and a perfectly repaired global
//! history. Trace-based simulators like ChampSim and CBPSim evaluate
//! predictors exactly this way, and the paper's motivation is that such
//! models "cannot model microarchitectural behaviors like speculation and
//! superscalar execution" and "demonstrate substantial modelling error".
//!
//! Running the *same design* on the *same workload* through [`TraceSim`]
//! and through [`Core`](crate::Core) quantifies that modelling error for
//! this framework's designs (the `trace_vs_hardware` harness binary).

use crate::program::InstructionStream;
use cobra_core::composer::{BpuConfig, BranchPredictorUnit, Design};
use cobra_core::{BranchKind, ComposeError, SlotResolution};

/// Accuracy results from a trace-driven run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Conditional branches evaluated.
    pub cond_branches: u64,
    /// Conditional-branch direction mispredictions.
    pub cond_mispredicts: u64,
    /// Control-flow instructions whose predicted target was wrong or
    /// missing (taken CFIs only).
    pub target_misses: u64,
    /// All control-flow instructions evaluated.
    pub cfis: u64,
}

impl TraceStats {
    /// Conditional-branch accuracy in percent.
    pub fn accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            100.0
        } else {
            100.0 * (1.0 - self.cond_mispredicts as f64 / self.cond_branches as f64)
        }
    }

    /// Branch misses (direction + target) per kilo-*branch* — trace
    /// simulators have no instruction counts, so the denominator differs
    /// from the hardware MPKI by the workload's branch density.
    pub fn misses_per_kilo_cfi(&self) -> f64 {
        if self.cfis == 0 {
            0.0
        } else {
            (self.cond_mispredicts + self.target_misses) as f64 * 1000.0 / self.cfis as f64
        }
    }
}

/// A trace-driven evaluation of a composed predictor design.
#[derive(Debug)]
pub struct TraceSim {
    bpu: BranchPredictorUnit,
    stats: TraceStats,
}

impl TraceSim {
    /// Composes `design` for trace-driven use.
    ///
    /// # Errors
    ///
    /// Propagates composition errors.
    pub fn new(design: &Design) -> Result<Self, ComposeError> {
        Ok(Self {
            bpu: BranchPredictorUnit::build(design, BpuConfig::default())?,
            stats: TraceStats::default(),
        })
    }

    /// Accumulated results.
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Runs the next `max_insts` instructions of `stream` through the
    /// predictor under trace-driven idealizations, returning the stats.
    ///
    /// Each fetch packet is queried, its *final-stage* prediction compared
    /// against the trace's ground truth, and the packet immediately
    /// resolved and committed — no packet is ever in flight speculatively,
    /// so histories are always perfect.
    pub fn run(&mut self, stream: &mut dyn InstructionStream, max_insts: u64) -> TraceStats {
        // Pull instructions in blocks: one virtual `next_block` call per
        // few thousand instructions instead of one `next_inst` call each,
        // with cursor/bounds work amortized across the whole batch.
        const BATCH: usize = 4096;
        let mut buf: Vec<crate::program::DynInst> = Vec::with_capacity(BATCH);
        let mut pos = 0usize;
        let mut executed = 0u64;
        let mut pending: Option<crate::program::DynInst> = None;
        'outer: while executed < max_insts {
            // Start a packet at the next architectural PC.
            let first = match pending.take() {
                Some(i) => i,
                None => {
                    if pos == buf.len() {
                        buf.clear();
                        pos = 0;
                        if stream.next_block(&mut buf, BATCH) == 0 {
                            break;
                        }
                    }
                    pos += 1;
                    buf[pos - 1]
                }
            };
            let pc = first.pc;
            let width = 8u64.min(8 - ((pc / 2) % 8)).max(1) as u8;
            let Some(id) = self.bpu.query_packet(pc, width) else {
                // Trace mode never leaves packets in flight; this cannot
                // happen unless commit below failed.
                break;
            };
            self.bpu.tick();
            self.bpu.speculate(id, 1);
            let depth = self.bpu.depth();
            let mut pred = *self.bpu.prediction(id, depth).expect("in flight");

            // Walk the trace through the packet's slots.
            let mut inst = first;
            let mut resolutions: Vec<SlotResolution> = Vec::new();
            let mut mispredicted_slot = None;
            // Walked high-water mark; the loop always runs at least once.
            let mut last_slot;
            loop {
                let slot = ((inst.pc - pc) / 2) as u8;
                last_slot = slot;
                executed += 1;
                if inst.cfi.is_none() {
                    // Predecode clears non-CFI slots.
                    *pred.slot_mut(slot as usize) = Default::default();
                }
                if let Some(c) = inst.cfi {
                    // Predecode knowledge, as the hardware frontend has it.
                    let sp = pred.slot_mut(slot as usize);
                    sp.kind = Some(c.kind);
                    if c.kind != BranchKind::Conditional {
                        sp.taken = None;
                    }
                    let predicted_taken = match c.kind {
                        BranchKind::Conditional => sp.taken == Some(true),
                        _ => true,
                    };
                    self.stats.cfis += 1;
                    let mut mispredicted_here = false;
                    if c.kind == BranchKind::Conditional {
                        self.stats.cond_branches += 1;
                        if predicted_taken != c.taken {
                            self.stats.cond_mispredicts += 1;
                            mispredicted_here = true;
                        }
                    } else if c.taken && sp.target() != Some(c.target) {
                        self.stats.target_misses += 1;
                    }
                    resolutions.push(SlotResolution {
                        slot,
                        kind: c.kind,
                        taken: c.taken,
                        target: c.target,
                    });
                    if mispredicted_here && mispredicted_slot.is_none() {
                        mispredicted_slot = Some(slot);
                        // A misprediction ends the packet (the hardware
                        // refetches from here); later instructions start a
                        // new packet.
                        break;
                    }
                    if c.taken {
                        break; // the packet ends at a taken CFI
                    }
                }
                // Next instruction: does it continue this packet?
                if pos == buf.len() {
                    buf.clear();
                    pos = 0;
                    if stream.next_block(&mut buf, BATCH) == 0 {
                        break 'outer;
                    }
                }
                pos += 1;
                let next = buf[pos - 1];
                let contiguous = next.pc == inst.pc + 2 && next.pc < pc + width as u64 * 2;
                if contiguous {
                    inst = next;
                } else {
                    pending = Some(next);
                    break;
                }
            }

            // Slots past the walk were never architecturally reached:
            // clear any stale predicted state so the accepted bundle's
            // history contribution matches ground truth, exactly as the
            // hardware predecode correction does.
            for j in (last_slot as usize + 1)..width as usize {
                *pred.slot_mut(j) = Default::default();
            }

            // Perfect history: push the ground-truth composition (the
            // hardware's predecode-revision path, always taken here).
            self.bpu.revise(id, &pred, false);

            // Idealized in-order update: accept, resolve everything with
            // ground truth, commit immediately.
            self.bpu.accept(id, pred);
            for r in resolutions {
                let misp = mispredicted_slot == Some(r.slot);
                self.bpu.resolve(id, r, misp);
            }
            let _ = self.bpu.commit_front();
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CfiOutcome, DynInst, IterStream, Op, StaticInst};
    use cobra_core::designs;

    /// A single loop branch taken 7 of 8 times.
    struct LoopTrace {
        i: u64,
    }
    impl InstructionStream for LoopTrace {
        fn entry_pc(&self) -> u64 {
            0x1000
        }
        fn next_inst(&mut self) -> Option<DynInst> {
            let slot = self.i % 4;
            let iter = self.i / 4;
            self.i += 1;
            let pc = 0x1000 + slot * 2;
            Some(if slot == 3 {
                DynInst {
                    pc,
                    op: Op::Cfi,
                    cfi: Some(CfiOutcome {
                        kind: cobra_core::BranchKind::Conditional,
                        taken: iter % 8 != 7,
                        target: 0x1000,
                        sfb: false,
                    }),
                    dep: 0,
                }
            } else {
                DynInst::int(pc)
            })
        }
        fn inst_at(&self, _pc: u64) -> StaticInst {
            StaticInst::filler()
        }
    }

    #[test]
    fn trace_sim_learns_a_loop() {
        let mut sim = TraceSim::new(&designs::tage_l()).unwrap();
        let stats = sim.run(&mut LoopTrace { i: 0 }, 40_000);
        assert!(stats.cond_branches > 5_000);
        assert!(
            stats.accuracy() > 97.0,
            "trace-driven TAGE-L must learn a period-8 loop: {}",
            stats.accuracy()
        );
    }

    #[test]
    fn trace_sim_handles_straightline_code() {
        let mut sim = TraceSim::new(&designs::b2()).unwrap();
        let mut stream = IterStream::new(0, (0..5000u64).map(|i| DynInst::int(i * 2)));
        let stats = sim.run(&mut stream, 5000);
        assert_eq!(stats.cond_branches, 0);
        assert_eq!(stats.accuracy(), 100.0);
    }

    #[test]
    fn misses_per_kilo_cfi_math() {
        let s = TraceStats {
            cond_branches: 1000,
            cond_mispredicts: 30,
            target_misses: 10,
            cfis: 2000,
        };
        assert!((s.misses_per_kilo_cfi() - 20.0).abs() < 1e-12);
        assert!((s.accuracy() - 97.0).abs() < 1e-12);
        assert_eq!(TraceStats::default().misses_per_kilo_cfi(), 0.0);
    }

    #[test]
    fn trace_sim_is_deterministic() {
        let a = {
            let mut sim = TraceSim::new(&designs::tournament()).unwrap();
            sim.run(&mut LoopTrace { i: 0 }, 10_000)
        };
        let b = {
            let mut sim = TraceSim::new(&designs::tournament()).unwrap();
            sim.run(&mut LoopTrace { i: 0 }, 10_000)
        };
        assert_eq!(a, b);
    }
}
