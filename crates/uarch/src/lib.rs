//! # cobra-uarch
//!
//! A BOOM-like superscalar out-of-order host-core model for evaluating
//! COBRA-composed branch predictors end-to-end (the role FireSim-simulated
//! BOOM plays in the paper).
//!
//! * [`CoreConfig`] reproduces the paper's Table II machine configuration.
//! * [`Core`] is the simulated machine: a cycle-level frontend (fetch
//!   pipeline with override redirects, predecode, RAS, fetch buffer)
//!   around a [`BranchPredictorUnit`](cobra_core::composer::BranchPredictorUnit),
//!   and a scoreboard out-of-order backend (ROB, issue ports, caches,
//!   in-order commit).
//! * [`InstructionStream`] is the workload interface: the architectural
//!   instruction sequence plus static decode for wrong-path fetch.
//! * [`PerfReport`] / [`PerfCounters`] are the measured outputs (IPC, MPKI,
//!   accuracy, bubble breakdowns).
//!
//! ```
//! use cobra_core::designs;
//! use cobra_uarch::{Core, CoreConfig, DynInst, IterStream};
//!
//! let insts = (0..2000u64).map(|i| DynInst::int(0x1000 + i * 2));
//! let stream = IterStream::new(0x1000, insts);
//! let mut core = Core::new(&designs::b2(), CoreConfig::boom_4wide(), stream)?;
//! let report = core.run(1000, "straightline");
//! assert!(report.counters.committed_insts >= 1000);
//! # Ok::<(), cobra_core::ComposeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod checkpoint;
mod config;
mod core;
pub mod metrics;
mod perf;
mod program;
mod ras;
pub mod resultcache;
mod tracesim;

pub use crate::core::Core;
pub use cache::{Cache, MemoryHierarchy};
pub use checkpoint::{
    best_resume_checkpoint, config_hash, read_meta, restore_checkpoint, restore_checkpoint_resume,
    save_checkpoint, CbsError, CbsMeta,
};
pub use config::{CacheConfig, CoreConfig};
pub use metrics::{read_metrics, reconcile, save_metrics, CbmError, CbmFile, CbmMeta};
pub use perf::{harmonic_mean, PerfCounters, PerfReport};
pub use program::{CfiOutcome, DynInst, InstructionStream, IterStream, Op, StaticInst};
pub use ras::{RasSnapshot, ReturnAddressStack};
pub use resultcache::{read_result, read_result_meta, save_result, CbrError, CbrMeta};
pub use tracesim::{TraceSim, TraceStats};
