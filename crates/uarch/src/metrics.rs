//! The COBRA Binary Metrics (CBM) format — interval telemetry streams.
//!
//! A `.cbm` file carries one run's interval telemetry series (see
//! [`cobra_core::obs::interval`]): an identity header naming the design,
//! configuration, workload, and interval length, followed by one record
//! per closed interval — host counter delta, per-component attribution
//! delta, occupancy gauges, and the phase-signature vector — and a
//! totals section holding the end-of-run measured deltas the records
//! must sum to. A reader can therefore verify *self-contained* that the
//! telemetry reconciles bit-exactly with the run's `PerfReport` /
//! [`AttributionReport`] ([`reconcile`]), with no side channel.
//!
//! The container follows the same hostile-input discipline as `.cbt`
//! and `.cbs`: fixed-width integers little-endian, variable-length
//! values LEB128 ([`cobra_sim::varint`]), header and payload
//! independently CRC-32C-protected, every declared length capped before
//! allocation, trailing bytes rejected, and precise error variants
//! ([`CbmError`]). The normative specification, including a decoded
//! worked example, is in `docs/METRICS_FORMAT.md` at the repository
//! root; this module is the reference implementation.

use cobra_core::obs::interval::{HostCounters, IntervalGauges, IntervalRecord, IntervalSeries};
use cobra_core::obs::{AttributionReport, ComponentAttribution, ComponentCounters, OverrideEdge};
use cobra_sim::varint;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};

/// File magic, the first 8 bytes of every `.cbm` file.
pub const MAGIC: [u8; 8] = *b"COBRACBM";
/// Trailing footer magic, the last 4 bytes of every `.cbm` file.
pub const FOOTER_MAGIC: [u8; 4] = *b"CBMX";
/// The (only) format version this implementation reads and writes.
pub const VERSION: u16 = 1;
/// Reader guard: maximum accepted payload size.
pub const MAX_PAYLOAD_BYTES: u64 = 1 << 26;
/// Reader guard: maximum accepted length for any header string.
pub const MAX_NAME_BYTES: u64 = 4096;
/// Reader guard: maximum interval records per file.
pub const MAX_RECORDS: u64 = 1 << 20;
/// Reader guard: maximum component rows (labels) per file.
pub const MAX_LABELS: u64 = 64;
/// Reader guard: maximum phase-signature buckets per record.
pub const MAX_SIG_BUCKETS: u64 = 4096;

/// Everything that can go wrong reading or writing a `.cbm` file.
#[derive(Debug)]
pub enum CbmError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file does not end with [`FOOTER_MAGIC`].
    BadFooterMagic,
    /// The file's version is not supported by this implementation.
    UnsupportedVersion(u16),
    /// The header flags word has bits this implementation does not know.
    UnsupportedFlags(u16),
    /// The file ended while reading the named structure.
    Truncated {
        /// Which structure was being read.
        what: &'static str,
    },
    /// A declared size exceeds the format's hard limits — either corrupt
    /// or hostile; never allocated.
    LimitExceeded {
        /// Which declared quantity is over limit.
        what: &'static str,
        /// The declared value.
        got: u64,
        /// The maximum this reader accepts.
        max: u64,
    },
    /// The header CRC-32C does not match the header bytes.
    HeaderChecksum {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// The payload's CRC-32C does not match its bytes.
    PayloadChecksum {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// A varint field is truncated or over-long.
    BadVarint {
        /// Which structure was being read.
        what: &'static str,
    },
    /// A header string is not valid UTF-8.
    BadName,
    /// Bytes remain after the footer magic.
    TrailingBytes {
        /// How many bytes follow the footer.
        count: u64,
    },
    /// The payload decoded but is semantically inconsistent (an
    /// override edge naming a component row that does not exist, a
    /// record with the wrong number of component rows, …).
    Malformed {
        /// What was inconsistent.
        what: &'static str,
    },
}

impl fmt::Display for CbmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic => write!(f, "not a CBM file (bad magic; expected `COBRACBM`)"),
            Self::BadFooterMagic => {
                write!(f, "bad footer magic (file truncated or not finalized)")
            }
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported CBM version {v} (this reader supports {VERSION})"
                )
            }
            Self::UnsupportedFlags(bits) => {
                write!(
                    f,
                    "unsupported header flags {bits:#06x} (reserved bits set)"
                )
            }
            Self::Truncated { what } => write!(f, "file truncated while reading {what}"),
            Self::LimitExceeded { what, got, max } => {
                write!(f, "{what} = {got} exceeds the format limit of {max}")
            }
            Self::HeaderChecksum { stored, computed } => write!(
                f,
                "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::PayloadChecksum { stored, computed } => write!(
                f,
                "payload checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::BadVarint { what } => write!(f, "truncated or over-long varint in {what}"),
            Self::BadName => write!(f, "header string is not valid UTF-8"),
            Self::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the footer magic")
            }
            Self::Malformed { what } => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CbmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CbmError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// The identity a metrics file is bound to: which design, configuration,
/// and workload produced it, plus the telemetry geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbmMeta {
    /// Design name (e.g. `"TAGE-L"`).
    pub design: String,
    /// Topology string in the paper's notation.
    pub topology: String,
    /// FNV-1a hash over the full design + core configuration (see
    /// [`crate::checkpoint::config_hash`]).
    pub config_hash: u64,
    /// Workload name the run simulated.
    pub workload: String,
    /// Warmup boundary (committed instructions) the intervals start at.
    pub warmup_insts: u64,
    /// Requested interval length in committed instructions.
    pub interval_n: u64,
    /// Phase-signature buckets per record.
    pub sig_buckets: u64,
}

/// A fully decoded and validated `.cbm` file.
#[derive(Debug, Clone, PartialEq)]
pub struct CbmFile {
    /// The identity header.
    pub meta: CbmMeta,
    /// Component row labels (dataflow order, then the static row).
    pub labels: Vec<String>,
    /// The interval records in time order.
    pub records: Vec<IntervalRecord>,
    /// End-of-run host counter delta over the measured region.
    pub totals_host: HostCounters,
    /// End-of-run attribution delta over the measured region.
    pub totals_attr: AttributionReport,
}

/// Serializes an interval series plus its end-of-run totals into `w` as
/// a `.cbm` file bound to `meta`, and returns the bytes written.
///
/// The totals are the *measured-region* deltas of the run that produced
/// `series` — exactly the `PerfReport` counters and attribution that
/// `run_with_warmup` returns — so any reader can check reconciliation
/// without rerunning anything.
///
/// # Errors
///
/// Propagates I/O errors; [`CbmError::Malformed`] if a record's
/// component rows disagree with the series label table.
pub fn save_metrics<W: Write>(
    mut w: W,
    meta: &CbmMeta,
    series: &IntervalSeries,
    totals_host: &HostCounters,
    totals_attr: &AttributionReport,
) -> Result<u64, CbmError> {
    let labels = &series.labels;
    let n_components = labels.len().saturating_sub(1);
    let row_index: BTreeMap<&str, u64> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l.as_str(), i as u64))
        .collect();

    let mut header = Vec::with_capacity(96);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes()); // flags
    write_str(&mut header, &meta.design);
    write_str(&mut header, &meta.topology);
    header.extend_from_slice(&meta.config_hash.to_le_bytes());
    write_str(&mut header, &meta.workload);
    varint::write_u64(&mut header, meta.warmup_insts);
    varint::write_u64(&mut header, meta.interval_n);
    varint::write_u64(&mut header, meta.sig_buckets);
    varint::write_u64(&mut header, labels.len() as u64);
    for l in labels {
        write_str(&mut header, l);
    }
    let header_crc = cobra_sim::crc32c(&header);

    let mut payload = Vec::with_capacity(series.records.len() * 256 + 256);
    varint::write_u64(&mut payload, series.records.len() as u64);
    for rec in &series.records {
        if rec.attr.components.len() != labels.len()
            || rec.gauges.sram_rows.len() != n_components
            || rec.sig.len() as u64 != meta.sig_buckets
        {
            return Err(CbmError::Malformed {
                what: "record shape disagrees with the header label table",
            });
        }
        varint::write_u64(&mut payload, rec.seq);
        varint::write_u64(&mut payload, rec.start_inst);
        encode_host(&mut payload, &rec.host);
        encode_attr(&mut payload, &rec.attr, &row_index)?;
        varint::write_u64(&mut payload, rec.gauges.hf_occupancy);
        varint::write_u64(&mut payload, rec.gauges.ras_depth);
        varint::write_u64(&mut payload, rec.gauges.ras_high_water);
        for &(touched, total) in &rec.gauges.sram_rows {
            varint::write_u64(&mut payload, touched);
            varint::write_u64(&mut payload, total);
        }
        for &s in &rec.sig {
            varint::write_u64(&mut payload, u64::from(s));
        }
    }
    if totals_attr.components.len() != labels.len() {
        return Err(CbmError::Malformed {
            what: "totals shape disagrees with the header label table",
        });
    }
    encode_host(&mut payload, totals_host);
    encode_attr(&mut payload, totals_attr, &row_index)?;

    let payload_len = payload.len() as u32;
    let mut crc = cobra_sim::Crc32c::new();
    crc.update(&payload_len.to_le_bytes());
    crc.update(&payload);
    let payload_crc = crc.finish();

    w.write_all(&header)?;
    w.write_all(&header_crc.to_le_bytes())?;
    w.write_all(&payload_len.to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&payload_crc.to_le_bytes())?;
    w.write_all(&FOOTER_MAGIC)?;
    w.flush()?;
    Ok(header.len() as u64 + 4 + 4 + u64::from(payload_len) + 4 + 4)
}

/// Parses and checksums a `.cbm` header, returning the identity record
/// and label table without touching the payload.
///
/// # Errors
///
/// Any [`CbmError`] describing the first malformed header structure.
pub fn read_meta<R: Read>(mut r: R) -> Result<(CbmMeta, Vec<String>), CbmError> {
    read_header(&mut r)
}

/// Reads, checksums, and fully decodes a `.cbm` file.
///
/// # Errors
///
/// Any [`CbmError`]; nothing about the file is trusted before its
/// checksums and shape checks pass.
pub fn read_metrics<R: Read>(mut r: R) -> Result<CbmFile, CbmError> {
    let (meta, labels) = read_header(&mut r)?;
    let payload_len = u64::from(read_u32(&mut r, "payload length")?);
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(CbmError::LimitExceeded {
            what: "payload length",
            got: payload_len,
            max: MAX_PAYLOAD_BYTES,
        });
    }
    let mut payload = vec![0u8; payload_len as usize];
    read_exact(&mut r, &mut payload, "payload")?;
    let stored = read_u32(&mut r, "payload checksum")?;
    let mut crc = cobra_sim::Crc32c::new();
    crc.update(&(payload_len as u32).to_le_bytes());
    crc.update(&payload);
    let computed = crc.finish();
    if stored != computed {
        return Err(CbmError::PayloadChecksum { stored, computed });
    }
    let mut footer = [0u8; 4];
    read_exact(&mut r, &mut footer, "footer magic")?;
    if footer != FOOTER_MAGIC {
        return Err(CbmError::BadFooterMagic);
    }
    let mut rest = [0u8; 64];
    let mut trailing = 0u64;
    loop {
        let n = r.read(&mut rest)?;
        if n == 0 {
            break;
        }
        trailing += n as u64;
    }
    if trailing != 0 {
        return Err(CbmError::TrailingBytes { count: trailing });
    }

    let n_components = labels.len().saturating_sub(1);
    let mut pos = 0usize;
    let n_records = read_varint(&payload, &mut pos, "record count")?;
    if n_records > MAX_RECORDS {
        return Err(CbmError::LimitExceeded {
            what: "record count",
            got: n_records,
            max: MAX_RECORDS,
        });
    }
    let mut records = Vec::with_capacity(n_records as usize);
    for _ in 0..n_records {
        let seq = read_varint(&payload, &mut pos, "record seq")?;
        let start_inst = read_varint(&payload, &mut pos, "record start")?;
        let host = decode_host(&payload, &mut pos, "record host counters")?;
        let attr = decode_attr(&payload, &mut pos, &labels, "record attribution")?;
        let hf_occupancy = read_varint(&payload, &mut pos, "record hf occupancy")?;
        let ras_depth = read_varint(&payload, &mut pos, "record ras depth")?;
        let ras_high_water = read_varint(&payload, &mut pos, "record ras high water")?;
        let mut sram_rows = Vec::with_capacity(n_components);
        for _ in 0..n_components {
            let touched = read_varint(&payload, &mut pos, "record sram touched rows")?;
            let total = read_varint(&payload, &mut pos, "record sram total rows")?;
            sram_rows.push((touched, total));
        }
        let mut sig = Vec::with_capacity(meta.sig_buckets as usize);
        for _ in 0..meta.sig_buckets {
            let v = read_varint(&payload, &mut pos, "record signature bucket")?;
            if v > u64::from(u32::MAX) {
                return Err(CbmError::Malformed {
                    what: "signature bucket exceeds u32",
                });
            }
            sig.push(v as u32);
        }
        records.push(IntervalRecord {
            seq,
            start_inst,
            host,
            attr,
            gauges: IntervalGauges {
                hf_occupancy,
                ras_depth,
                ras_high_water,
                sram_rows,
            },
            sig,
        });
    }
    let totals_host = decode_host(&payload, &mut pos, "totals host counters")?;
    let totals_attr = decode_attr(&payload, &mut pos, &labels, "totals attribution")?;
    if pos != payload.len() {
        return Err(CbmError::Malformed {
            what: "payload bytes remain after the totals section",
        });
    }
    Ok(CbmFile {
        meta,
        labels,
        records,
        totals_host,
        totals_attr,
    })
}

/// Checks that the interval records reconcile bit-exactly with the
/// file's totals section: the host counter deltas sum field-for-field
/// to `totals_host`, the per-component attribution counters, scalars,
/// and override edges sum to `totals_attr`, and the high-water gauge of
/// the last record equals the end-of-run value (it is monotone, not
/// additive).
///
/// # Errors
///
/// A human-readable description of the first field that fails.
pub fn reconcile(file: &CbmFile) -> Result<(), String> {
    let mut host = HostCounters::default();
    for r in &file.records {
        host.accumulate(&r.host);
    }
    if host != file.totals_host {
        return Err(format!(
            "host counters do not reconcile: intervals sum to {:?}, totals say {:?}",
            host, file.totals_host
        ));
    }
    let mut counters = vec![ComponentCounters::default(); file.labels.len()];
    let mut packets = 0u64;
    let mut ghist = 0u64;
    let mut lhist = 0u64;
    let mut edges: BTreeMap<(String, String), u64> = BTreeMap::new();
    for r in &file.records {
        for (sum, c) in counters.iter_mut().zip(&r.attr.components) {
            let d = &c.counters;
            sum.queries += d.queries;
            sum.fires += d.fires;
            sum.mispredict_events += d.mispredict_events;
            sum.repairs += d.repairs;
            sum.updates += d.updates;
            sum.provided_final += d.provided_final;
            sum.overridden += d.overridden;
            sum.direction_blame += d.direction_blame;
            sum.target_blame += d.target_blame;
        }
        packets += r.attr.packets_with_prediction;
        ghist += r.attr.ghist_snapshot_repairs;
        lhist += r.attr.lhist_repairs;
        for e in &r.attr.overrides {
            *edges
                .entry((e.winner.clone(), e.loser.clone()))
                .or_insert(0) += e.count;
        }
    }
    for ((sum, total), label) in counters
        .iter()
        .zip(&file.totals_attr.components)
        .zip(&file.labels)
    {
        if *sum != total.counters {
            return Err(format!(
                "component `{label}` counters do not reconcile: intervals sum to {:?}, totals say {:?}",
                sum, total.counters
            ));
        }
    }
    if packets != file.totals_attr.packets_with_prediction {
        return Err(format!(
            "packets_with_prediction does not reconcile: {} vs {}",
            packets, file.totals_attr.packets_with_prediction
        ));
    }
    if ghist != file.totals_attr.ghist_snapshot_repairs || lhist != file.totals_attr.lhist_repairs {
        return Err(format!(
            "history repair gauges do not reconcile: ghist {} vs {}, lhist {} vs {}",
            ghist, file.totals_attr.ghist_snapshot_repairs, lhist, file.totals_attr.lhist_repairs
        ));
    }
    let mut total_edges: BTreeMap<(String, String), u64> = BTreeMap::new();
    for e in &file.totals_attr.overrides {
        *total_edges
            .entry((e.winner.clone(), e.loser.clone()))
            .or_insert(0) += e.count;
    }
    if edges != total_edges {
        return Err("override edges do not reconcile with the totals section".to_string());
    }
    if let Some(last) = file.records.last() {
        if last.attr.hf_high_water != file.totals_attr.hf_high_water {
            return Err(format!(
                "hf high-water gauge does not reconcile: last interval {} vs totals {}",
                last.attr.hf_high_water, file.totals_attr.hf_high_water
            ));
        }
    }
    Ok(())
}

pub(crate) fn encode_host(out: &mut Vec<u8>, h: &HostCounters) {
    for v in h.to_array() {
        varint::write_u64(out, v);
    }
}

pub(crate) fn decode_host(
    buf: &[u8],
    pos: &mut usize,
    what: &'static str,
) -> Result<HostCounters, CbmError> {
    let mut a = [0u64; 11];
    for v in a.iter_mut() {
        *v = read_varint(buf, pos, what)?;
    }
    Ok(HostCounters::from_array(a))
}

pub(crate) fn encode_attr(
    out: &mut Vec<u8>,
    attr: &AttributionReport,
    row_index: &BTreeMap<&str, u64>,
) -> Result<(), CbmError> {
    for c in &attr.components {
        let d = &c.counters;
        for v in [
            d.queries,
            d.fires,
            d.mispredict_events,
            d.repairs,
            d.updates,
            d.provided_final,
            d.overridden,
            d.direction_blame,
            d.target_blame,
        ] {
            varint::write_u64(out, v);
        }
    }
    varint::write_u64(out, attr.packets_with_prediction);
    varint::write_u64(out, attr.hf_high_water);
    varint::write_u64(out, attr.ghist_snapshot_repairs);
    varint::write_u64(out, attr.lhist_repairs);
    varint::write_u64(out, attr.overrides.len() as u64);
    for e in &attr.overrides {
        let (Some(&w), Some(&l)) = (
            row_index.get(e.winner.as_str()),
            row_index.get(e.loser.as_str()),
        ) else {
            return Err(CbmError::Malformed {
                what: "override edge names a component not in the label table",
            });
        };
        varint::write_u64(out, w);
        varint::write_u64(out, l);
        varint::write_u64(out, e.count);
    }
    Ok(())
}

pub(crate) fn decode_attr(
    buf: &[u8],
    pos: &mut usize,
    labels: &[String],
    what: &'static str,
) -> Result<AttributionReport, CbmError> {
    let mut components = Vec::with_capacity(labels.len());
    for label in labels {
        let mut v = [0u64; 9];
        for x in v.iter_mut() {
            *x = read_varint(buf, pos, what)?;
        }
        components.push(ComponentAttribution {
            label: label.clone(),
            counters: ComponentCounters {
                queries: v[0],
                fires: v[1],
                mispredict_events: v[2],
                repairs: v[3],
                updates: v[4],
                provided_final: v[5],
                overridden: v[6],
                direction_blame: v[7],
                target_blame: v[8],
            },
        });
    }
    let packets_with_prediction = read_varint(buf, pos, what)?;
    let hf_high_water = read_varint(buf, pos, what)?;
    let ghist_snapshot_repairs = read_varint(buf, pos, what)?;
    let lhist_repairs = read_varint(buf, pos, what)?;
    let n_edges = read_varint(buf, pos, what)?;
    if n_edges > (labels.len() as u64) * (labels.len() as u64) {
        return Err(CbmError::LimitExceeded {
            what: "override edge count",
            got: n_edges,
            max: (labels.len() as u64) * (labels.len() as u64),
        });
    }
    let mut overrides = Vec::with_capacity(n_edges as usize);
    for _ in 0..n_edges {
        let w = read_varint(buf, pos, what)?;
        let l = read_varint(buf, pos, what)?;
        let count = read_varint(buf, pos, what)?;
        if w >= labels.len() as u64 || l >= labels.len() as u64 {
            return Err(CbmError::Malformed {
                what: "override edge row index out of range",
            });
        }
        overrides.push(OverrideEdge {
            winner: labels[w as usize].clone(),
            loser: labels[l as usize].clone(),
            count,
        });
    }
    Ok(AttributionReport {
        components,
        packets_with_prediction,
        hf_high_water,
        ghist_snapshot_repairs,
        lhist_repairs,
        overrides,
    })
}

fn read_header<R: Read>(r: &mut R) -> Result<(CbmMeta, Vec<String>), CbmError> {
    let mut fixed = [0u8; 12];
    read_exact(r, &mut fixed, "header")?;
    if fixed[..8] != MAGIC {
        return Err(CbmError::BadMagic);
    }
    let version = u16::from_le_bytes([fixed[8], fixed[9]]);
    if version != VERSION {
        return Err(CbmError::UnsupportedVersion(version));
    }
    let flags = u16::from_le_bytes([fixed[10], fixed[11]]);
    if flags != 0 {
        return Err(CbmError::UnsupportedFlags(flags));
    }
    let mut raw = fixed.to_vec();
    let design = read_str(r, &mut raw, "header design name")?;
    let topology = read_str(r, &mut raw, "header topology")?;
    let mut hash_bytes = [0u8; 8];
    read_exact(r, &mut hash_bytes, "header config hash")?;
    raw.extend_from_slice(&hash_bytes);
    let config_hash = u64::from_le_bytes(hash_bytes);
    let workload = read_str(r, &mut raw, "header workload name")?;
    let warmup_insts = read_varint_stream(r, &mut raw, "header warmup boundary")?;
    let interval_n = read_varint_stream(r, &mut raw, "header interval length")?;
    let sig_buckets = read_varint_stream(r, &mut raw, "header signature buckets")?;
    if sig_buckets > MAX_SIG_BUCKETS {
        return Err(CbmError::LimitExceeded {
            what: "signature buckets",
            got: sig_buckets,
            max: MAX_SIG_BUCKETS,
        });
    }
    let n_labels = read_varint_stream(r, &mut raw, "header label count")?;
    if n_labels > MAX_LABELS {
        return Err(CbmError::LimitExceeded {
            what: "label count",
            got: n_labels,
            max: MAX_LABELS,
        });
    }
    let mut labels = Vec::with_capacity(n_labels as usize);
    for _ in 0..n_labels {
        labels.push(read_str(r, &mut raw, "header component label")?);
    }
    let stored = read_u32(r, "header checksum")?;
    let computed = cobra_sim::crc32c(&raw);
    if stored != computed {
        return Err(CbmError::HeaderChecksum { stored, computed });
    }
    Ok((
        CbmMeta {
            design,
            topology,
            config_hash,
            workload,
            warmup_insts,
            interval_n,
            sig_buckets,
        },
        labels,
    ))
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    varint::write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str<R: Read>(r: &mut R, raw: &mut Vec<u8>, what: &'static str) -> Result<String, CbmError> {
    let len = read_varint_stream(r, raw, what)?;
    if len > MAX_NAME_BYTES {
        return Err(CbmError::LimitExceeded {
            what,
            got: len,
            max: MAX_NAME_BYTES,
        });
    }
    let mut buf = vec![0u8; len as usize];
    read_exact(r, &mut buf, what)?;
    raw.extend_from_slice(&buf);
    String::from_utf8(buf).map_err(|_| CbmError::BadName)
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], what: &'static str) -> Result<(), CbmError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CbmError::Truncated { what }
        } else {
            CbmError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R, what: &'static str) -> Result<u32, CbmError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

fn read_varint(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, CbmError> {
    varint::read_u64(buf, pos).ok_or(CbmError::BadVarint { what })
}

/// Reads a varint byte-by-byte from a stream, appending the raw bytes to
/// `raw` (for checksumming).
fn read_varint_stream<R: Read>(
    r: &mut R,
    raw: &mut Vec<u8>,
    what: &'static str,
) -> Result<u64, CbmError> {
    let start = raw.len();
    for _ in 0..varint::MAX_VARINT_LEN {
        let mut b = [0u8; 1];
        read_exact(r, &mut b, what)?;
        raw.push(b[0]);
        if b[0] & 0x80 == 0 {
            let mut pos = 0;
            return varint::read_u64(&raw[start..], &mut pos).ok_or(CbmError::BadVarint { what });
        }
    }
    Err(CbmError::BadVarint { what })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_core::obs::interval::{IntervalEngine, SIG_BUCKETS};

    fn attr(queries: u64, blame: u64, edge: u64) -> AttributionReport {
        let row = |label: &str, q, b| ComponentAttribution {
            label: label.into(),
            counters: ComponentCounters {
                queries: q,
                fires: q / 2,
                direction_blame: b,
                target_blame: b / 2,
                provided_final: q / 3,
                ..ComponentCounters::default()
            },
        };
        AttributionReport {
            components: vec![
                row("bim", queries, blame),
                row("gshare", queries, blame / 2),
                row("(static)", 0, 1),
            ],
            packets_with_prediction: queries,
            hf_high_water: 12,
            ghist_snapshot_repairs: blame,
            lhist_repairs: blame / 3,
            overrides: if edge > 0 {
                vec![OverrideEdge {
                    winner: "gshare".into(),
                    loser: "bim".into(),
                    count: edge,
                }]
            } else {
                Vec::new()
            },
        }
    }

    fn host(cycles: u64, insts: u64) -> HostCounters {
        HostCounters {
            cycles,
            committed_insts: insts,
            cond_branches: insts / 5,
            cfis: insts / 4,
            cond_mispredicts: insts / 50,
            target_mispredicts: insts / 100,
            ..HostCounters::default()
        }
    }

    fn gauges() -> IntervalGauges {
        IntervalGauges {
            hf_occupancy: 3,
            ras_depth: 2,
            ras_high_water: 5,
            sram_rows: vec![(10, 64), (0, 0)],
        }
    }

    fn sample_series() -> (IntervalSeries, HostCounters, AttributionReport) {
        let base_h = host(100, 40);
        let base_a = attr(7, 2, 1);
        let mut e = IntervalEngine::new(50, base_h, base_a.clone());
        e.note_branch(0x4000);
        e.note_branch(0x4008);
        e.close(host(300, 90), attr(30, 6, 3), gauges());
        e.note_branch(0x4000);
        let end_h = host(500, 160);
        let end_a = attr(55, 11, 8);
        let series = e.finish(end_h, end_a.clone(), gauges());
        (series, end_h.delta(&base_h), end_a.delta(&base_a))
    }

    fn meta() -> CbmMeta {
        CbmMeta {
            design: "B2".into(),
            topology: "GBIM2(BIM1)".into(),
            config_hash: 0x1234_5678_9abc_def0,
            workload: "gcc".into(),
            warmup_insts: 40,
            interval_n: 50,
            sig_buckets: SIG_BUCKETS as u64,
        }
    }

    fn encode() -> Vec<u8> {
        let (series, th, ta) = sample_series();
        let mut buf = Vec::new();
        save_metrics(&mut buf, &meta(), &series, &th, &ta).unwrap();
        buf
    }

    #[test]
    fn roundtrip_is_exact() {
        let (series, th, ta) = sample_series();
        let bytes = encode();
        let file = read_metrics(&bytes[..]).unwrap();
        assert_eq!(file.meta, meta());
        assert_eq!(file.labels, series.labels);
        assert_eq!(file.records, series.records);
        assert_eq!(file.totals_host, th);
        assert_eq!(file.totals_attr, ta);
        reconcile(&file).unwrap();
    }

    #[test]
    fn meta_reads_without_payload() {
        let bytes = encode();
        let (m, labels) = read_meta(&bytes[..]).unwrap();
        assert_eq!(m, meta());
        assert_eq!(labels.len(), 3);
        assert_eq!(labels[2], "(static)");
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let bytes = encode();
        for cut in 0..bytes.len() {
            assert!(
                read_metrics(&bytes[..cut]).is_err(),
                "truncation at {cut}/{} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let bytes = encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << (i % 8);
            assert!(
                read_metrics(&bad[..]).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode();
        bytes.push(0);
        assert!(matches!(
            read_metrics(&bytes[..]),
            Err(CbmError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn tampered_totals_fail_reconciliation() {
        let (series, th, mut ta) = sample_series();
        ta.components[0].counters.queries += 1;
        let mut buf = Vec::new();
        save_metrics(&mut buf, &meta(), &series, &th, &ta).unwrap();
        let file = read_metrics(&buf[..]).unwrap();
        let err = reconcile(&file).unwrap_err();
        assert!(err.contains("bim"), "{err}");

        let (series, mut th, ta) = sample_series();
        th.cycles += 1;
        let mut buf = Vec::new();
        save_metrics(&mut buf, &meta(), &series, &th, &ta).unwrap();
        let file = read_metrics(&buf[..]).unwrap();
        assert!(reconcile(&file).unwrap_err().contains("host counters"));
    }

    #[test]
    fn shape_mismatch_is_rejected_at_write() {
        let (mut series, th, ta) = sample_series();
        series.records[0].sig.pop();
        let mut buf = Vec::new();
        assert!(matches!(
            save_metrics(&mut buf, &meta(), &series, &th, &ta),
            Err(CbmError::Malformed { .. })
        ));
    }

    #[test]
    fn error_messages_are_precise() {
        assert!(CbmError::BadMagic.to_string().contains("COBRACBM"));
        let e = CbmError::LimitExceeded {
            what: "record count",
            got: 9,
            max: 3,
        };
        assert!(e.to_string().contains("record count"));
    }
}
