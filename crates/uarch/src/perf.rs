//! Performance counters and the end-of-run report.

use cobra_core::obs::interval::HostCounters;
use cobra_core::obs::AttributionReport;
use cobra_sim::{SnapError, StateReader, StateWriter};

/// The out-of-band profiling counters the simulated core maintains
/// (standing in for FireSim's profiling tools and `perf`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Simulated cycles.
    pub cycles: u64,
    /// Architecturally committed instructions.
    pub committed_insts: u64,
    /// Committed conditional branches.
    pub cond_branches: u64,
    /// Committed control-flow instructions of any kind.
    pub cfis: u64,
    /// Conditional-branch direction mispredictions.
    pub cond_mispredicts: u64,
    /// Target mispredictions (BTB/RAS/indirect).
    pub target_mispredicts: u64,
    /// Frontend override redirects (a later stage changed the prediction).
    pub override_redirects: u64,
    /// Fetch replays forced by global-history repair (Section VI-B).
    pub history_replays: u64,
    /// Cycles fetch produced nothing (bubbles of any cause).
    pub fetch_bubbles: u64,
    /// Cycles fetch stalled on the instruction cache.
    pub icache_stall_cycles: u64,
    /// Cycles dispatch stalled on a full ROB.
    pub rob_stall_cycles: u64,
}

impl PerfCounters {
    /// All branch mispredictions (direction + target).
    pub fn branch_misses(&self) -> u64 {
        self.cond_mispredicts + self.target_mispredicts
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Branch misses per kilo-instruction — the Fig 10 metric.
    pub fn mpki(&self) -> f64 {
        if self.committed_insts == 0 {
            0.0
        } else {
            self.branch_misses() as f64 * 1000.0 / self.committed_insts as f64
        }
    }

    /// Conditional-branch prediction accuracy in percent.
    pub fn branch_accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            100.0
        } else {
            100.0 * (1.0 - self.cond_mispredicts as f64 / self.cond_branches as f64)
        }
    }
}

impl PerfCounters {
    /// Serializes the counters into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.cycles);
        w.write_u64(self.committed_insts);
        w.write_u64(self.cond_branches);
        w.write_u64(self.cfis);
        w.write_u64(self.cond_mispredicts);
        w.write_u64(self.target_mispredicts);
        w.write_u64(self.override_redirects);
        w.write_u64(self.history_replays);
        w.write_u64(self.fetch_bubbles);
        w.write_u64(self.icache_stall_cycles);
        w.write_u64(self.rob_stall_cycles);
    }

    /// Decodes counters written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        Ok(PerfCounters {
            cycles: r.read_u64("perf cycles")?,
            committed_insts: r.read_u64("perf committed insts")?,
            cond_branches: r.read_u64("perf cond branches")?,
            cfis: r.read_u64("perf cfis")?,
            cond_mispredicts: r.read_u64("perf cond mispredicts")?,
            target_mispredicts: r.read_u64("perf target mispredicts")?,
            override_redirects: r.read_u64("perf override redirects")?,
            history_replays: r.read_u64("perf history replays")?,
            fetch_bubbles: r.read_u64("perf fetch bubbles")?,
            icache_stall_cycles: r.read_u64("perf icache stalls")?,
            rob_stall_cycles: r.read_u64("perf rob stalls")?,
        })
    }
}

impl PerfCounters {
    /// The interval-telemetry mirror of these counters — same fields, same
    /// meaning (see [`cobra_core::obs::interval::HostCounters`]).
    pub fn to_host(&self) -> HostCounters {
        HostCounters {
            cycles: self.cycles,
            committed_insts: self.committed_insts,
            cond_branches: self.cond_branches,
            cfis: self.cfis,
            cond_mispredicts: self.cond_mispredicts,
            target_mispredicts: self.target_mispredicts,
            override_redirects: self.override_redirects,
            history_replays: self.history_replays,
            fetch_bubbles: self.fetch_bubbles,
            icache_stall_cycles: self.icache_stall_cycles,
            rob_stall_cycles: self.rob_stall_cycles,
        }
    }

    /// The inverse of [`to_host`](Self::to_host), for decoding persisted
    /// results back into a report.
    pub fn from_host(h: &HostCounters) -> Self {
        PerfCounters {
            cycles: h.cycles,
            committed_insts: h.committed_insts,
            cond_branches: h.cond_branches,
            cfis: h.cfis,
            cond_mispredicts: h.cond_mispredicts,
            target_mispredicts: h.target_mispredicts,
            override_redirects: h.override_redirects,
            history_replays: h.history_replays,
            fetch_bubbles: h.fetch_bubbles,
            icache_stall_cycles: h.icache_stall_cycles,
            rob_stall_cycles: h.rob_stall_cycles,
        }
    }

    /// Field-wise difference `self − earlier`, for warm-up exclusion.
    pub fn delta(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            cycles: self.cycles - earlier.cycles,
            committed_insts: self.committed_insts - earlier.committed_insts,
            cond_branches: self.cond_branches - earlier.cond_branches,
            cfis: self.cfis - earlier.cfis,
            cond_mispredicts: self.cond_mispredicts - earlier.cond_mispredicts,
            target_mispredicts: self.target_mispredicts - earlier.target_mispredicts,
            override_redirects: self.override_redirects - earlier.override_redirects,
            history_replays: self.history_replays - earlier.history_replays,
            fetch_bubbles: self.fetch_bubbles - earlier.fetch_bubbles,
            icache_stall_cycles: self.icache_stall_cycles - earlier.icache_stall_cycles,
            rob_stall_cycles: self.rob_stall_cycles - earlier.rob_stall_cycles,
        }
    }
}

/// The result of simulating a workload to completion.
///
/// `Display` renders the one-line summary only; the attribution detail
/// is reported by `cobra-trace` and the `--metrics` JSONL so existing
/// stdout stays byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Workload name.
    pub workload: String,
    /// Predictor design name.
    pub design: String,
    /// Raw counters.
    pub counters: PerfCounters,
    /// Per-component attribution counters (see [`cobra_core::obs`]).
    pub attribution: AttributionReport,
}

impl std::fmt::Display for PerfReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.counters;
        write!(
            f,
            "{:<12} {:<12} IPC {:>5.3}  MPKI {:>6.2}  acc {:>6.2}%  ({} insts, {} cycles)",
            self.workload,
            self.design,
            c.ipc(),
            c.mpki(),
            c.branch_accuracy(),
            c.committed_insts,
            c.cycles
        )
    }
}

/// Harmonic mean, as used for the HARMEAN column in Fig 10.
///
/// # Examples
///
/// ```
/// let h = cobra_uarch::harmonic_mean(&[1.0, 2.0]);
/// assert!((h - 4.0 / 3.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let c = PerfCounters {
            cycles: 1000,
            committed_insts: 2000,
            cond_branches: 200,
            cond_mispredicts: 10,
            target_mispredicts: 2,
            ..Default::default()
        };
        assert!((c.ipc() - 2.0).abs() < 1e-12);
        assert!((c.mpki() - 6.0).abs() < 1e-12);
        assert!((c.branch_accuracy() - 95.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let c = PerfCounters::default();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.mpki(), 0.0);
        assert_eq!(c.branch_accuracy(), 100.0);
    }

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert!(
            harmonic_mean(&[1.0, 100.0]) < 2.0,
            "dominated by the slow one"
        );
    }
}
