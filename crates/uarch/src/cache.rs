//! A simple set-associative cache hierarchy with LRU replacement.
//!
//! The hierarchy reproduces Table II's memory system shape: split 32 KB
//! L1s, a 512 KB L2, a 4 MB LLC, and a flat DRAM latency (standing in for
//! the paper's FASED DDR3 timing model). It is a latency model, not a
//! coherence model: each access returns the cycles to first use and
//! updates recency state.

use crate::config::CacheConfig;
use cobra_sim::{bits, SnapError, StateReader, StateWriter};

/// One set-associative cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set * ways + way]`: tag + valid bit packed (0 = invalid).
    tags: Vec<u64>,
    /// Per-way recency counters (higher = more recent).
    recency: Vec<u32>,
    clock: u32,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache level.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two number of sets.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(bits::is_pow2(sets), "cache sets must be a power of two");
        let slots = (sets * cfg.ways) as usize;
        Self {
            cfg,
            tags: vec![0; slots],
            recency: vec![0; slots],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, addr: u64) -> u64 {
        (addr / self.cfg.line_bytes) & bits::mask(bits::clog2(self.cfg.sets()))
    }

    fn tag_of(&self, addr: u64) -> u64 {
        (addr / self.cfg.line_bytes) >> bits::clog2(self.cfg.sets()) | 1 << 63
    }

    /// Probes and fills: returns `true` on hit. A miss installs the line
    /// (the caller charges the lower-level latency).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways as usize;
        let base = set * ways;
        for w in 0..ways {
            if self.tags[base + w] == tag {
                self.recency[base + w] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        // LRU victim.
        let victim = (0..ways)
            .min_by_key(|&w| self.recency[base + w])
            .expect("ways > 0");
        self.tags[base + victim] = tag;
        self.recency[base + victim] = self.clock;
        false
    }

    /// Installs a line without counting an access (prefetch).
    pub fn prefetch(&mut self, addr: u64) {
        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways as usize;
        let base = set * ways;
        if (0..ways).any(|w| self.tags[base + w] == tag) {
            return;
        }
        let victim = (0..ways)
            .min_by_key(|&w| self.recency[base + w])
            .expect("ways > 0");
        self.tags[base + victim] = tag;
        // Prefetched lines enter cold (clock not bumped): they are first
        // LRU victims until used.
    }

    /// Hit latency of this level.
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    /// Lifetime (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Serializes tag, recency, and counter state into a checkpoint
    /// stream. Geometry is configuration and is not stored.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.begin_section("cache");
        w.write_u64(u64::from(self.clock));
        w.write_u64(self.hits);
        w.write_u64(self.misses);
        for &t in &self.tags {
            w.write_u64(t);
        }
        for &rc in &self.recency {
            w.write_u64(u64::from(rc));
        }
        w.end_section();
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// cache of the same geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        r.open_section("cache")?;
        self.clock = r.read_u64_capped("cache clock", u64::from(u32::MAX))? as u32;
        self.hits = r.read_u64("cache hits")?;
        self.misses = r.read_u64("cache misses")?;
        for t in &mut self.tags {
            *t = r.read_u64("cache tag")?;
        }
        for rc in &mut self.recency {
            *rc = r.read_u64_capped("cache recency", u64::from(u32::MAX))? as u32;
        }
        r.close_section()
    }
}

/// The full hierarchy: split L1s over a shared L2/L3 and DRAM.
#[derive(Debug)]
pub struct MemoryHierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    l2: Cache,
    l3: Cache,
    dram_latency: u64,
    nlp: bool,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a core configuration.
    pub fn new(cfg: &crate::config::CoreConfig) -> Self {
        Self {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            dram_latency: cfg.dram_latency,
            nlp: cfg.nlp_prefetch,
        }
    }

    fn below_l1(&mut self, addr: u64) -> u64 {
        if self.l2.access(addr) {
            self.l2.hit_latency()
        } else if self.l3.access(addr) {
            self.l3.hit_latency()
        } else {
            self.dram_latency
        }
    }

    /// Instruction fetch of the block at `addr`: returns added cycles
    /// beyond the L1I pipeline (0 on hit).
    pub fn fetch(&mut self, addr: u64) -> u64 {
        let extra = if self.l1i.access(addr) {
            self.l1i.hit_latency()
        } else {
            self.l1i.hit_latency() + self.below_l1(addr)
        };
        if self.nlp {
            // Next-line prefetcher (Table II).
            let line = 64;
            self.l1i.prefetch(addr + line);
        }
        extra
    }

    /// Data access latency for a load/store at `addr`.
    pub fn data(&mut self, addr: u64) -> u64 {
        if self.l1d.access(addr) {
            self.l1d.hit_latency()
        } else {
            self.l1d.hit_latency() + self.below_l1(addr)
        }
    }

    /// Serializes every level of the hierarchy into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        self.l2.save_state(w);
        self.l3.save_state(w);
    }

    /// Restores a hierarchy written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.l1i.load_state(r)?;
        self.l1d.load_state(r)?;
        self.l2.load_state(r)?;
        self.l3.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;

    #[test]
    fn second_access_hits() {
        let mut c = Cache::new(CoreConfig::boom_4wide().l1d);
        assert!(!c.access(0x8000));
        assert!(c.access(0x8000));
        assert!(c.access(0x8004), "same line");
        assert!(!c.access(0x8040), "next line misses");
    }

    #[test]
    fn lru_eviction() {
        let cfg = CacheConfig {
            size_bytes: 2 * 64,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        let mut c = Cache::new(cfg);
        // One set, two ways.
        c.access(0x0000);
        c.access(0x1000);
        c.access(0x0000); // refresh line 0
        c.access(0x2000); // evicts 0x1000
        assert!(c.access(0x0000));
        assert!(!c.access(0x1000));
    }

    #[test]
    fn hierarchy_latencies_ordered() {
        let cfg = CoreConfig::boom_4wide();
        let mut m = MemoryHierarchy::new(&cfg);
        let cold = m.data(0x4_0000);
        let warm = m.data(0x4_0000);
        assert!(cold > warm, "cold {cold} <= warm {warm}");
        assert_eq!(warm, cfg.l1d.hit_latency);
        assert!(cold >= cfg.dram_latency);
    }

    #[test]
    fn next_line_prefetch_hides_sequential_miss() {
        let cfg = CoreConfig::boom_4wide();
        let mut m = MemoryHierarchy::new(&cfg);
        let _ = m.fetch(0x1_0000); // miss; prefetches 0x1_0040
        let seq = m.fetch(0x1_0040);
        assert_eq!(seq, 0, "prefetched block hits");
    }

    #[test]
    fn stats_accumulate() {
        let mut c = Cache::new(CoreConfig::boom_4wide().l1i);
        c.access(0);
        c.access(0);
        assert_eq!(c.stats(), (1, 1));
    }
}
