//! The COBRA Binary Result (CBR) format — persisted evaluation results.
//!
//! A `.cbr` file is one measured [`PerfReport`] bound to the exact
//! experiment that produced it: design, topology, FNV-1a configuration
//! hash (see [`crate::checkpoint::config_hash`]), workload, measured
//! instruction bound, and warmup boundary. It is the tier-1 entry of the
//! `cobra-serve` warm cache: an exact identity match returns the stored
//! report instead of re-simulating, and because the simulator is
//! deterministic the stored report *is* the report a fresh run would
//! produce — byte-for-byte once rendered.
//!
//! The container follows the same hostile-input discipline as `.cbt`,
//! `.cbs`, and `.cbm`: fixed-width integers little-endian,
//! variable-length values LEB128 ([`cobra_sim::varint`]), header and
//! payload independently CRC-32C-protected, every declared length capped
//! before allocation, trailing bytes rejected, and precise error
//! variants ([`CbrError`]). [`read_result`] verifies the *whole* file
//! and every identity field before a byte of payload is trusted, so a
//! truncated, bit-flipped, or stale entry can never poison a served
//! result. The payload reuses the `.cbm` counter and attribution codecs
//! ([`crate::metrics`]), so the two formats cannot drift.

use crate::metrics::{decode_attr, decode_host, encode_attr, encode_host, CbmError};
use crate::{PerfCounters, PerfReport};
use cobra_sim::varint;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};

/// File magic, the first 8 bytes of every `.cbr` file.
pub const MAGIC: [u8; 8] = *b"COBRACBR";
/// Trailing footer magic, the last 4 bytes of every `.cbr` file.
pub const FOOTER_MAGIC: [u8; 4] = *b"CBRX";
/// The (only) format version this implementation reads and writes.
pub const VERSION: u16 = 1;
/// Reader guard: maximum accepted payload size.
pub const MAX_PAYLOAD_BYTES: u64 = 1 << 20;
/// Reader guard: maximum accepted length for any header string.
pub const MAX_NAME_BYTES: u64 = 4096;
/// Reader guard: maximum component rows (labels) per file.
pub const MAX_LABELS: u64 = 64;

/// Everything that can go wrong reading or writing a `.cbr` file.
#[derive(Debug)]
pub enum CbrError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file does not end with [`FOOTER_MAGIC`].
    BadFooterMagic,
    /// The file's version is not supported by this implementation.
    UnsupportedVersion(u16),
    /// The header flags word has bits this implementation does not know.
    UnsupportedFlags(u16),
    /// The file ended while reading the named structure.
    Truncated {
        /// Which structure was being read.
        what: &'static str,
    },
    /// A declared size exceeds the format's hard limits — either corrupt
    /// or hostile; never allocated.
    LimitExceeded {
        /// Which declared quantity is over limit.
        what: &'static str,
        /// The declared value.
        got: u64,
        /// The maximum this reader accepts.
        max: u64,
    },
    /// The header CRC-32C does not match the header bytes.
    HeaderChecksum {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// The payload's CRC-32C does not match its bytes.
    PayloadChecksum {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// A varint field is truncated or over-long.
    BadVarint {
        /// Which structure was being read.
        what: &'static str,
    },
    /// A header string is not valid UTF-8.
    BadName,
    /// Bytes remain after the footer magic.
    TrailingBytes {
        /// How many bytes follow the footer.
        count: u64,
    },
    /// The payload decoded but is semantically inconsistent.
    Malformed {
        /// What was inconsistent.
        what: &'static str,
    },
    /// The result was produced by a different experiment than `expected`
    /// — any identity field differs. Never served.
    IdentityMismatch {
        /// Which identity field differs.
        field: &'static str,
        /// The value stored in the file.
        stored: String,
        /// The value the lookup expected.
        expected: String,
    },
}

impl fmt::Display for CbrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic => write!(f, "not a CBR file (bad magic; expected `COBRACBR`)"),
            Self::BadFooterMagic => {
                write!(f, "bad footer magic (file truncated or not finalized)")
            }
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported CBR version {v} (this reader supports {VERSION})"
                )
            }
            Self::UnsupportedFlags(bits) => {
                write!(
                    f,
                    "unsupported header flags {bits:#06x} (reserved bits set)"
                )
            }
            Self::Truncated { what } => write!(f, "file truncated while reading {what}"),
            Self::LimitExceeded { what, got, max } => {
                write!(f, "{what} = {got} exceeds the format limit of {max}")
            }
            Self::HeaderChecksum { stored, computed } => write!(
                f,
                "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::PayloadChecksum { stored, computed } => write!(
                f,
                "payload checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::BadVarint { what } => write!(f, "truncated or over-long varint in {what}"),
            Self::BadName => write!(f, "header string is not valid UTF-8"),
            Self::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the footer magic")
            }
            Self::Malformed { what } => write!(f, "malformed payload: {what}"),
            Self::IdentityMismatch {
                field,
                stored,
                expected,
            } => write!(f, "result is for {field} `{stored}`, not `{expected}`"),
        }
    }
}

impl std::error::Error for CbrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CbrError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Maps the shared `.cbm` codec errors onto `.cbr` variants (the codecs
/// are reused verbatim; their failure modes are identical).
impl From<CbmError> for CbrError {
    fn from(e: CbmError) -> Self {
        match e {
            CbmError::Io(e) => Self::Io(e),
            CbmError::BadMagic => Self::BadMagic,
            CbmError::BadFooterMagic => Self::BadFooterMagic,
            CbmError::UnsupportedVersion(v) => Self::UnsupportedVersion(v),
            CbmError::UnsupportedFlags(b) => Self::UnsupportedFlags(b),
            CbmError::Truncated { what } => Self::Truncated { what },
            CbmError::LimitExceeded { what, got, max } => Self::LimitExceeded { what, got, max },
            CbmError::HeaderChecksum { stored, computed } => {
                Self::HeaderChecksum { stored, computed }
            }
            CbmError::PayloadChecksum { stored, computed } => {
                Self::PayloadChecksum { stored, computed }
            }
            CbmError::BadVarint { what } => Self::BadVarint { what },
            CbmError::BadName => Self::BadName,
            CbmError::TrailingBytes { count } => Self::TrailingBytes { count },
            CbmError::Malformed { what } => Self::Malformed { what },
        }
    }
}

/// The identity a persisted result is bound to — the full cache key.
///
/// [`read_result`] compares every field against the file header and
/// refuses on any mismatch, so a hash-prefix filename collision or a
/// hand-renamed file can never serve the wrong experiment's numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbrMeta {
    /// Design name (e.g. `"TAGE-L"`).
    pub design: String,
    /// Topology string in the paper's notation.
    pub topology: String,
    /// FNV-1a hash over the full design + core configuration (see
    /// [`crate::checkpoint::config_hash`]).
    pub config_hash: u64,
    /// Workload name the run simulated.
    pub workload: String,
    /// Measured instruction bound of the run.
    pub insts: u64,
    /// Warmup boundary (committed instructions) excluded from the
    /// measurement.
    pub warmup_insts: u64,
}

/// Serializes `report` into `w` as a `.cbr` file bound to `meta`, and
/// returns the bytes written.
///
/// # Errors
///
/// Propagates I/O errors; [`CbrError::Malformed`] if the report's
/// override edges name components missing from its own rows.
pub fn save_result<W: Write>(
    mut w: W,
    meta: &CbrMeta,
    report: &PerfReport,
) -> Result<u64, CbrError> {
    let labels: Vec<&str> = report
        .attribution
        .components
        .iter()
        .map(|c| c.label.as_str())
        .collect();
    let row_index: BTreeMap<&str, u64> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| (*l, i as u64))
        .collect();

    let mut header = Vec::with_capacity(96);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes()); // flags
    write_str(&mut header, &meta.design);
    write_str(&mut header, &meta.topology);
    header.extend_from_slice(&meta.config_hash.to_le_bytes());
    write_str(&mut header, &meta.workload);
    varint::write_u64(&mut header, meta.insts);
    varint::write_u64(&mut header, meta.warmup_insts);
    let header_crc = cobra_sim::crc32c(&header);

    let mut payload = Vec::with_capacity(512);
    write_str(&mut payload, &report.workload);
    write_str(&mut payload, &report.design);
    varint::write_u64(&mut payload, labels.len() as u64);
    for l in &labels {
        write_str(&mut payload, l);
    }
    encode_host(&mut payload, &report.counters.to_host());
    encode_attr(&mut payload, &report.attribution, &row_index)?;

    let payload_len = payload.len() as u32;
    let mut crc = cobra_sim::Crc32c::new();
    crc.update(&payload_len.to_le_bytes());
    crc.update(&payload);
    let payload_crc = crc.finish();

    w.write_all(&header)?;
    w.write_all(&header_crc.to_le_bytes())?;
    w.write_all(&payload_len.to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&payload_crc.to_le_bytes())?;
    w.write_all(&FOOTER_MAGIC)?;
    w.flush()?;
    Ok(header.len() as u64 + 4 + 4 + u64::from(payload_len) + 4 + 4)
}

/// Parses and checksums a `.cbr` header, returning the identity record
/// without touching the payload.
///
/// # Errors
///
/// Any [`CbrError`] describing the first malformed header structure.
pub fn read_result_meta<R: Read>(mut r: R) -> Result<CbrMeta, CbrError> {
    read_header(&mut r)
}

/// Reads, checksums, identity-verifies, and fully decodes a `.cbr` file.
///
/// Every header field must equal `expected` — the caller states which
/// experiment it is about to serve, and the file must agree. Nothing
/// about the file is trusted before its checksums, identity, and shape
/// checks pass.
///
/// # Errors
///
/// Any [`CbrError`]; [`CbrError::IdentityMismatch`] names the first
/// identity field that differs.
pub fn read_result<R: Read>(mut r: R, expected: &CbrMeta) -> Result<PerfReport, CbrError> {
    let meta = read_header(&mut r)?;
    check_identity(&meta, expected)?;

    let payload_len = u64::from(read_u32(&mut r, "payload length")?);
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(CbrError::LimitExceeded {
            what: "payload length",
            got: payload_len,
            max: MAX_PAYLOAD_BYTES,
        });
    }
    let mut payload = vec![0u8; payload_len as usize];
    read_exact(&mut r, &mut payload, "payload")?;
    let stored = read_u32(&mut r, "payload checksum")?;
    let mut crc = cobra_sim::Crc32c::new();
    crc.update(&(payload_len as u32).to_le_bytes());
    crc.update(&payload);
    let computed = crc.finish();
    if stored != computed {
        return Err(CbrError::PayloadChecksum { stored, computed });
    }
    let mut footer = [0u8; 4];
    read_exact(&mut r, &mut footer, "footer magic")?;
    if footer != FOOTER_MAGIC {
        return Err(CbrError::BadFooterMagic);
    }
    let mut rest = [0u8; 64];
    let mut trailing = 0u64;
    loop {
        let n = r.read(&mut rest)?;
        if n == 0 {
            break;
        }
        trailing += n as u64;
    }
    if trailing != 0 {
        return Err(CbrError::TrailingBytes { count: trailing });
    }

    let mut pos = 0usize;
    let workload = read_str_buf(&payload, &mut pos, "payload workload name")?;
    let design = read_str_buf(&payload, &mut pos, "payload design name")?;
    let n_labels = read_varint(&payload, &mut pos, "payload label count")?;
    if n_labels > MAX_LABELS {
        return Err(CbrError::LimitExceeded {
            what: "label count",
            got: n_labels,
            max: MAX_LABELS,
        });
    }
    let mut labels = Vec::with_capacity(n_labels as usize);
    for _ in 0..n_labels {
        labels.push(read_str_buf(&payload, &mut pos, "payload component label")?);
    }
    let host = decode_host(&payload, &mut pos, "payload counters")?;
    let attribution = decode_attr(&payload, &mut pos, &labels, "payload attribution")?;
    if pos != payload.len() {
        return Err(CbrError::Malformed {
            what: "payload bytes remain after the attribution section",
        });
    }
    if workload != meta.workload {
        return Err(CbrError::Malformed {
            what: "payload workload disagrees with the header",
        });
    }
    if design != meta.design {
        return Err(CbrError::Malformed {
            what: "payload design disagrees with the header",
        });
    }
    Ok(PerfReport {
        workload,
        design,
        counters: PerfCounters::from_host(&host),
        attribution,
    })
}

fn check_identity(meta: &CbrMeta, expected: &CbrMeta) -> Result<(), CbrError> {
    if meta.design != expected.design {
        return Err(CbrError::IdentityMismatch {
            field: "design",
            stored: meta.design.clone(),
            expected: expected.design.clone(),
        });
    }
    if meta.topology != expected.topology {
        return Err(CbrError::IdentityMismatch {
            field: "topology",
            stored: meta.topology.clone(),
            expected: expected.topology.clone(),
        });
    }
    if meta.config_hash != expected.config_hash {
        return Err(CbrError::IdentityMismatch {
            field: "config hash",
            stored: format!("{:#018x}", meta.config_hash),
            expected: format!("{:#018x}", expected.config_hash),
        });
    }
    if meta.workload != expected.workload {
        return Err(CbrError::IdentityMismatch {
            field: "workload",
            stored: meta.workload.clone(),
            expected: expected.workload.clone(),
        });
    }
    if meta.insts != expected.insts {
        return Err(CbrError::IdentityMismatch {
            field: "instruction bound",
            stored: meta.insts.to_string(),
            expected: expected.insts.to_string(),
        });
    }
    if meta.warmup_insts != expected.warmup_insts {
        return Err(CbrError::IdentityMismatch {
            field: "warmup boundary",
            stored: meta.warmup_insts.to_string(),
            expected: expected.warmup_insts.to_string(),
        });
    }
    Ok(())
}

fn read_header<R: Read>(r: &mut R) -> Result<CbrMeta, CbrError> {
    let mut fixed = [0u8; 12];
    read_exact(r, &mut fixed, "header")?;
    if fixed[..8] != MAGIC {
        return Err(CbrError::BadMagic);
    }
    let version = u16::from_le_bytes([fixed[8], fixed[9]]);
    if version != VERSION {
        return Err(CbrError::UnsupportedVersion(version));
    }
    let flags = u16::from_le_bytes([fixed[10], fixed[11]]);
    if flags != 0 {
        return Err(CbrError::UnsupportedFlags(flags));
    }
    let mut raw = fixed.to_vec();
    let design = read_str(r, &mut raw, "header design name")?;
    let topology = read_str(r, &mut raw, "header topology")?;
    let mut hash_bytes = [0u8; 8];
    read_exact(r, &mut hash_bytes, "header config hash")?;
    raw.extend_from_slice(&hash_bytes);
    let config_hash = u64::from_le_bytes(hash_bytes);
    let workload = read_str(r, &mut raw, "header workload name")?;
    let insts = read_varint_stream(r, &mut raw, "header instruction bound")?;
    let warmup_insts = read_varint_stream(r, &mut raw, "header warmup boundary")?;
    let stored = read_u32(r, "header checksum")?;
    let computed = cobra_sim::crc32c(&raw);
    if stored != computed {
        return Err(CbrError::HeaderChecksum { stored, computed });
    }
    Ok(CbrMeta {
        design,
        topology,
        config_hash,
        workload,
        insts,
        warmup_insts,
    })
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    varint::write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str<R: Read>(r: &mut R, raw: &mut Vec<u8>, what: &'static str) -> Result<String, CbrError> {
    let len = read_varint_stream(r, raw, what)?;
    if len > MAX_NAME_BYTES {
        return Err(CbrError::LimitExceeded {
            what,
            got: len,
            max: MAX_NAME_BYTES,
        });
    }
    let mut buf = vec![0u8; len as usize];
    read_exact(r, &mut buf, what)?;
    raw.extend_from_slice(&buf);
    String::from_utf8(buf).map_err(|_| CbrError::BadName)
}

fn read_str_buf(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<String, CbrError> {
    let len = read_varint(buf, pos, what)?;
    if len > MAX_NAME_BYTES {
        return Err(CbrError::LimitExceeded {
            what,
            got: len,
            max: MAX_NAME_BYTES,
        });
    }
    let end = pos
        .checked_add(len as usize)
        .filter(|&e| e <= buf.len())
        .ok_or(CbrError::Truncated { what })?;
    let s = String::from_utf8(buf[*pos..end].to_vec()).map_err(|_| CbrError::BadName)?;
    *pos = end;
    Ok(s)
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], what: &'static str) -> Result<(), CbrError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CbrError::Truncated { what }
        } else {
            CbrError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R, what: &'static str) -> Result<u32, CbrError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

fn read_varint(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, CbrError> {
    varint::read_u64(buf, pos).ok_or(CbrError::BadVarint { what })
}

/// Reads a varint byte-by-byte from a stream, appending the raw bytes to
/// `raw` (for checksumming).
fn read_varint_stream<R: Read>(
    r: &mut R,
    raw: &mut Vec<u8>,
    what: &'static str,
) -> Result<u64, CbrError> {
    let start = raw.len();
    for _ in 0..varint::MAX_VARINT_LEN {
        let mut b = [0u8; 1];
        read_exact(r, &mut b, what)?;
        raw.push(b[0]);
        if b[0] & 0x80 == 0 {
            let mut pos = 0;
            return varint::read_u64(&raw[start..], &mut pos).ok_or(CbrError::BadVarint { what });
        }
    }
    Err(CbrError::BadVarint { what })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_core::obs::{
        AttributionReport, ComponentAttribution, ComponentCounters, OverrideEdge,
    };

    fn sample_report() -> PerfReport {
        let row = |label: &str, q: u64, b: u64| ComponentAttribution {
            label: label.into(),
            counters: ComponentCounters {
                queries: q,
                fires: q / 2,
                direction_blame: b,
                target_blame: b / 2,
                provided_final: q / 3,
                ..ComponentCounters::default()
            },
        };
        PerfReport {
            workload: "gcc".into(),
            design: "B2".into(),
            counters: PerfCounters {
                cycles: 12_345,
                committed_insts: 20_000,
                cond_branches: 4_100,
                cfis: 5_000,
                cond_mispredicts: 210,
                target_mispredicts: 33,
                override_redirects: 40,
                history_replays: 7,
                fetch_bubbles: 900,
                icache_stall_cycles: 120,
                rob_stall_cycles: 310,
            },
            attribution: AttributionReport {
                components: vec![
                    row("GBIM2", 900, 40),
                    row("BIM1", 700, 11),
                    row("(static)", 0, 1),
                ],
                packets_with_prediction: 1_500,
                hf_high_water: 9,
                ghist_snapshot_repairs: 13,
                lhist_repairs: 2,
                overrides: vec![OverrideEdge {
                    winner: "GBIM2".into(),
                    loser: "BIM1".into(),
                    count: 77,
                }],
            },
        }
    }

    fn sample_meta() -> CbrMeta {
        CbrMeta {
            design: "B2".into(),
            topology: "GBIM2(BIM1)".into(),
            config_hash: 0x1234_5678_9abc_def0,
            workload: "gcc".into(),
            insts: 20_000,
            warmup_insts: 8_000,
        }
    }

    fn encode() -> Vec<u8> {
        let mut buf = Vec::new();
        save_result(&mut buf, &sample_meta(), &sample_report()).unwrap();
        buf
    }

    #[test]
    fn roundtrip_is_exact() {
        let bytes = encode();
        let report = read_result(&bytes[..], &sample_meta()).unwrap();
        assert_eq!(report, sample_report());
    }

    #[test]
    fn meta_reads_without_payload() {
        let bytes = encode();
        assert_eq!(read_result_meta(&bytes[..]).unwrap(), sample_meta());
    }

    #[test]
    fn identity_mismatches_are_precise() {
        let bytes = encode();
        let mut m = sample_meta();
        m.design = "TAGE-L".into();
        assert!(matches!(
            read_result(&bytes[..], &m),
            Err(CbrError::IdentityMismatch {
                field: "design",
                ..
            })
        ));
        let mut m = sample_meta();
        m.topology = "BIM2".into();
        assert!(matches!(
            read_result(&bytes[..], &m),
            Err(CbrError::IdentityMismatch {
                field: "topology",
                ..
            })
        ));
        let mut m = sample_meta();
        m.config_hash ^= 1;
        assert!(matches!(
            read_result(&bytes[..], &m),
            Err(CbrError::IdentityMismatch {
                field: "config hash",
                ..
            })
        ));
        let mut m = sample_meta();
        m.workload = "xz".into();
        assert!(matches!(
            read_result(&bytes[..], &m),
            Err(CbrError::IdentityMismatch {
                field: "workload",
                ..
            })
        ));
        let mut m = sample_meta();
        m.insts += 1;
        assert!(matches!(
            read_result(&bytes[..], &m),
            Err(CbrError::IdentityMismatch {
                field: "instruction bound",
                ..
            })
        ));
        let mut m = sample_meta();
        m.warmup_insts += 1;
        assert!(matches!(
            read_result(&bytes[..], &m),
            Err(CbrError::IdentityMismatch {
                field: "warmup boundary",
                ..
            })
        ));
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let bytes = encode();
        for cut in 0..bytes.len() {
            assert!(
                read_result(&bytes[..cut], &sample_meta()).is_err(),
                "truncation at {cut}/{} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let bytes = encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << (i % 8);
            assert!(
                read_result(&bad[..], &sample_meta()).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode();
        bytes.push(0);
        assert!(matches!(
            read_result(&bytes[..], &sample_meta()),
            Err(CbrError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn error_messages_are_precise() {
        assert!(CbrError::BadMagic.to_string().contains("COBRACBR"));
        let e = CbrError::IdentityMismatch {
            field: "design",
            stored: "B2".into(),
            expected: "TAGE-L".into(),
        };
        let s = e.to_string();
        assert!(s.contains("B2") && s.contains("TAGE-L"), "{s}");
    }
}
