//! The interface between a workload and the simulated core.
//!
//! The core is execution-driven along the architecturally-correct path: an
//! [`InstructionStream`] yields the dynamic instruction sequence the
//! program actually executes. Wrong-path fetch (after a misprediction the
//! frontend runs ahead down the predicted path) sees only *static*
//! instruction information via [`InstructionStream::inst_at`]; wrong-path
//! instructions occupy frontend and predictor resources and are squashed
//! when the mispredicted branch resolves, exercising the repair machinery
//! exactly as real speculation does.

use cobra_core::BranchKind;
use cobra_sim::{SnapError, StateReader, StateWriter};

/// An instruction's execution class, determining issue port and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Simple integer ALU operation.
    Int,
    /// Integer multiply.
    Mul,
    /// Integer divide (long latency, unpipelined).
    Div,
    /// Memory load from `addr`.
    Load {
        /// Effective address.
        addr: u64,
    },
    /// Memory store to `addr`.
    Store {
        /// Effective address.
        addr: u64,
    },
    /// Floating-point operation.
    Fp,
    /// A control-flow instruction (outcome carried separately).
    Cfi,
}

impl Op {
    /// Serializes the operation into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        match self {
            Op::Int => w.write_u64(0),
            Op::Mul => w.write_u64(1),
            Op::Div => w.write_u64(2),
            Op::Fp => w.write_u64(3),
            Op::Cfi => w.write_u64(4),
            Op::Load { addr } => {
                w.write_u64(5);
                w.write_u64(*addr);
            }
            Op::Store { addr } => {
                w.write_u64(6);
                w.write_u64(*addr);
            }
        }
    }

    /// Decodes an operation written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.read_u64_capped("op code", 6)? {
            0 => Op::Int,
            1 => Op::Mul,
            2 => Op::Div,
            3 => Op::Fp,
            4 => Op::Cfi,
            5 => Op::Load {
                addr: r.read_u64("load addr")?,
            },
            _ => Op::Store {
                addr: r.read_u64("store addr")?,
            },
        })
    }
}

/// The resolved outcome of a control-flow instruction on the correct path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfiOutcome {
    /// Control-flow kind.
    pub kind: BranchKind,
    /// Whether it redirects (always `true` for unconditional kinds).
    pub taken: bool,
    /// The target when taken.
    pub target: u64,
    /// `true` for a short-forwards "hammock" branch eligible for the
    /// Section VI-C predication optimization.
    pub sfb: bool,
}

impl CfiOutcome {
    /// Serializes the outcome into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.kind.code());
        w.write_bool(self.taken);
        w.write_u64(self.target);
        w.write_bool(self.sfb);
    }

    /// Decodes an outcome written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        let code = r.read_u64("cfi kind")?;
        let kind = BranchKind::from_code(code).ok_or(SnapError::BadValue {
            what: "cfi kind",
            got: code,
        })?;
        Ok(CfiOutcome {
            kind,
            taken: r.read_bool("cfi taken")?,
            target: r.read_u64("cfi target")?,
            sfb: r.read_bool("cfi sfb")?,
        })
    }
}

/// One architecturally-executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Instruction address (2-byte parcels).
    pub pc: u64,
    /// Execution class.
    pub op: Op,
    /// Branch outcome, for `Op::Cfi`.
    pub cfi: Option<CfiOutcome>,
    /// Data dependency: this instruction consumes the result of the
    /// instruction `dep` positions earlier in program order (0 = none).
    pub dep: u8,
}

impl DynInst {
    /// A simple integer instruction at `pc` with no dependency.
    pub fn int(pc: u64) -> Self {
        Self {
            pc,
            op: Op::Int,
            cfi: None,
            dep: 0,
        }
    }

    /// Serializes the instruction into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.pc);
        self.op.save_state(w);
        w.write_bool(self.cfi.is_some());
        if let Some(c) = &self.cfi {
            c.save_state(w);
        }
        w.write_u64(u64::from(self.dep));
    }

    /// Decodes an instruction written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        let pc = r.read_u64("inst pc")?;
        let op = Op::load_state(r)?;
        let cfi = if r.read_bool("inst has cfi")? {
            Some(CfiOutcome::load_state(r)?)
        } else {
            None
        };
        Ok(DynInst {
            pc,
            op,
            cfi,
            dep: r.read_u64_capped("inst dep", 0xff)? as u8,
        })
    }
}

/// Static decode information for an arbitrary address (wrong-path fetch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticInst {
    /// Execution class (addresses for memory ops may be placeholders).
    pub op: Op,
    /// CFI kind, if the instruction is a branch or jump.
    pub cfi_kind: Option<BranchKind>,
    /// Statically-known target (direct branches and jumps encode it).
    pub target: Option<u64>,
}

impl StaticInst {
    /// A non-CFI filler instruction.
    pub fn filler() -> Self {
        Self {
            op: Op::Int,
            cfi_kind: None,
            target: None,
        }
    }
}

/// A workload, as consumed by the core.
pub trait InstructionStream {
    /// The program entry point.
    fn entry_pc(&self) -> u64;

    /// The next architecturally-executed instruction, or `None` when the
    /// program ends.
    fn next_inst(&mut self) -> Option<DynInst>;

    /// Appends up to `max` upcoming instructions to `out`, returning how
    /// many were appended (0 means the program ended). Equivalent to
    /// repeated [`next_inst`](Self::next_inst) calls; block-backed streams
    /// override it to hand out whole decoded blocks, letting batch drivers
    /// amortize cursor/bounds work — and, behind `&mut dyn` streams,
    /// virtual dispatch — across hundreds of instructions.
    fn next_block(&mut self, out: &mut Vec<DynInst>, max: usize) -> usize {
        let start = out.len();
        while out.len() - start < max {
            match self.next_inst() {
                Some(i) => out.push(i),
                None => break,
            }
        }
        out.len() - start
    }

    /// Static decode information at an arbitrary address, used for
    /// predecode of wrong-path fetches. Must be deterministic per address.
    fn inst_at(&self, pc: u64) -> StaticInst;
}

/// An adapter turning any iterator of [`DynInst`] into an
/// [`InstructionStream`] with filler wrong-path decode.
///
/// # Examples
///
/// ```
/// use cobra_uarch::{DynInst, InstructionStream, IterStream};
///
/// let insts = (0..4).map(|i| DynInst::int(0x1000 + i * 2));
/// let mut s = IterStream::new(0x1000, insts);
/// assert_eq!(s.next_inst().unwrap().pc, 0x1000);
/// ```
pub struct IterStream<I> {
    entry: u64,
    iter: I,
}

impl<I: Iterator<Item = DynInst>> IterStream<I> {
    /// Wraps `iter` as a stream entering at `entry`.
    pub fn new(entry: u64, iter: I) -> Self {
        Self { entry, iter }
    }
}

impl<I: Iterator<Item = DynInst>> InstructionStream for IterStream<I> {
    fn entry_pc(&self) -> u64 {
        self.entry
    }

    fn next_inst(&mut self) -> Option<DynInst> {
        self.iter.next()
    }

    fn inst_at(&self, _pc: u64) -> StaticInst {
        StaticInst::filler()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_stream_yields_in_order() {
        let mut s = IterStream::new(0, (0..3).map(|i| DynInst::int(i * 2)));
        assert_eq!(s.next_inst().unwrap().pc, 0);
        assert_eq!(s.next_inst().unwrap().pc, 2);
        assert_eq!(s.next_inst().unwrap().pc, 4);
        assert!(s.next_inst().is_none());
    }

    #[test]
    fn filler_is_not_a_cfi() {
        let s = IterStream::new(0, std::iter::empty());
        assert!(s.inst_at(0x1234).cfi_kind.is_none());
    }
}
