//! The return-address stack — "the only prediction sub-component from the
//! original BOOM core which was preserved" (paper Section IV-C).

use cobra_sim::{SnapError, StateReader, StateWriter};

/// A circular return-address stack with snapshot repair.
///
/// Calls push the return address; returns pop a predicted target. Since
/// pushes and pops happen speculatively at predecode, the frontend
/// snapshots `(top, value)` per packet and restores on squash — the
/// classic RAS-repair scheme.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    top: usize,
    /// Live call depth (pushes minus pops, saturating at capacity and
    /// zero) — an observability gauge for interval telemetry.
    depth: usize,
    /// Deepest `depth` seen since construction or restore.
    high_water: usize,
}

/// A saved RAS position for squash repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasSnapshot {
    top: usize,
    value: u64,
    depth: usize,
}

impl RasSnapshot {
    /// Serializes the snapshot into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.top as u64);
        w.write_u64(self.value);
        w.write_u64(self.depth as u64);
    }

    /// Decodes a snapshot written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        Ok(RasSnapshot {
            top: r.read_u64_capped("ras snapshot top", 1 << 20)? as usize,
            value: r.read_u64("ras snapshot value")?,
            depth: r.read_u64_capped("ras snapshot depth", 1 << 20)? as usize,
        })
    }
}

impl ReturnAddressStack {
    /// Creates a stack of `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "RAS needs at least one entry");
        Self {
            entries: vec![0; entries],
            top: 0,
            depth: 0,
            high_water: 0,
        }
    }

    /// Pushes a return address (call).
    pub fn push(&mut self, ret_addr: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = ret_addr;
        self.depth = (self.depth + 1).min(self.entries.len());
        self.high_water = self.high_water.max(self.depth);
    }

    /// Pops the predicted return target (return).
    pub fn pop(&mut self) -> u64 {
        let v = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth = self.depth.saturating_sub(1);
        v
    }

    /// Peeks the top without popping.
    pub fn peek(&self) -> u64 {
        self.entries[self.top]
    }

    /// Saves the current position and top value.
    pub fn snapshot(&self) -> RasSnapshot {
        RasSnapshot {
            top: self.top,
            value: self.entries[self.top],
            depth: self.depth,
        }
    }

    /// Restores a snapshot taken before a squashed speculation.
    pub fn restore(&mut self, snap: RasSnapshot) {
        self.top = snap.top;
        self.entries[self.top] = snap.value;
        self.depth = snap.depth;
    }

    /// Live call depth (pushes minus pops since construction/restore,
    /// saturating at capacity and zero; squash repair rewinds it).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Deepest live depth seen since construction or restore.
    pub fn depth_high_water(&self) -> usize {
        self.high_water
    }

    /// Serializes the stack contents and position into a checkpoint
    /// stream. Capacity is configuration and is not stored.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.begin_section("ras");
        w.write_u64(self.top as u64);
        w.write_u64(self.depth as u64);
        w.write_u64(self.high_water as u64);
        for &e in &self.entries {
            w.write_u64(e);
        }
        w.end_section();
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// stack of the same capacity.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        r.open_section("ras")?;
        self.top = r.read_u64_capped("ras top", self.entries.len() as u64 - 1)? as usize;
        self.depth = r.read_u64_capped("ras depth", self.entries.len() as u64)? as usize;
        self.high_water = r.read_u64_capped("ras high water", self.entries.len() as u64)? as usize;
        for e in &mut self.entries {
            *e = r.read_u64("ras entry")?;
        }
        r.close_section()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_behaviour() {
        let mut r = ReturnAddressStack::new(8);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), 0x200);
        assert_eq!(r.pop(), 0x100);
    }

    #[test]
    fn overflow_wraps() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites the oldest
        assert_eq!(r.pop(), 3);
        assert_eq!(r.pop(), 2);
    }

    #[test]
    fn snapshot_restores_after_wrong_path() {
        let mut r = ReturnAddressStack::new(8);
        r.push(0xaaa);
        let snap = r.snapshot();
        // Wrong path: spurious call/ret traffic.
        r.push(0xbad);
        r.pop();
        r.pop();
        r.restore(snap);
        assert_eq!(r.peek(), 0xaaa);
        assert_eq!(r.pop(), 0xaaa);
    }

    #[test]
    fn depth_gauge_tracks_pushes_pops_and_repair() {
        let mut r = ReturnAddressStack::new(4);
        assert_eq!((r.depth(), r.depth_high_water()), (0, 0));
        r.push(1);
        r.push(2);
        assert_eq!((r.depth(), r.depth_high_water()), (2, 2));
        let snap = r.snapshot();
        r.push(3);
        r.push(4);
        r.push(5); // wraps; depth saturates at capacity
        assert_eq!((r.depth(), r.depth_high_water()), (4, 4));
        r.restore(snap);
        assert_eq!(r.depth(), 2, "squash repair rewinds the live depth");
        assert_eq!(r.depth_high_water(), 4, "high water is monotone");
        r.pop();
        r.pop();
        r.pop(); // underflow saturates at zero
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn depth_gauge_survives_state_roundtrip() {
        let mut r = ReturnAddressStack::new(4);
        r.push(7);
        r.push(8);
        r.pop();
        let mut w = StateWriter::new();
        r.save_state(&mut w);
        let bytes = w.finish();
        let mut fresh = ReturnAddressStack::new(4);
        let mut rd = StateReader::new(&bytes);
        fresh.load_state(&mut rd).unwrap();
        assert_eq!(fresh.depth(), 1);
        assert_eq!(fresh.depth_high_water(), 2);
        assert_eq!(fresh.peek(), r.peek());
    }
}
