//! The simulated host core: a BOOM-like superscalar out-of-order machine
//! with a COBRA predictor unit dropped into its fetch unit (paper Fig 6).
//!
//! The frontend is modelled cycle-by-cycle — that is where every phenomenon
//! the paper studies lives: multi-stage prediction override redirects,
//! speculative global-history updates with repair or replay, predecode
//! corrections, RAS speculation, and wrong-path predictor pollution. The
//! backend is a scoreboard out-of-order model: dispatch/issue/commit widths
//! and execution ports per Table II, data dependencies from the workload,
//! and a cache hierarchy for memory latencies.
//!
//! Execution is oracle-driven along the correct path: the workload supplies
//! the architectural instruction stream, and the frontend runs ahead down
//! *predicted* paths, fetching wrong-path instructions (static decode only)
//! that occupy real resources until the mispredicted branch resolves.

use crate::cache::MemoryHierarchy;
use crate::config::CoreConfig;
use crate::perf::{PerfCounters, PerfReport};
use crate::program::{CfiOutcome, DynInst, InstructionStream, Op, StaticInst};
use crate::ras::{RasSnapshot, ReturnAddressStack};
use cobra_core::composer::{BranchPredictorUnit, Design, GhistRepairMode, PacketId};
use cobra_core::obs::interval::{
    interval_n, HostCounters, IntervalEngine, IntervalGauges, IntervalSeries,
};
use cobra_core::{
    BranchKind, ComposeError, PredictionBundle, SlotResolution, MAX_FETCH_WIDTH, SLOT_BYTES,
};
use cobra_sim::{SnapError, StateReader, StateWriter, TokenSlab};
use std::collections::VecDeque;

/// A fetch packet travelling through the prediction pipeline stages.
#[derive(Debug, Clone)]
struct InflightFetch {
    id: PacketId,
    pc: u64,
    width: u8,
    stage: u8,
    used: PredictionBundle,
    /// Stage-1 steering (and its speculative history push) happened.
    steered: bool,
}

/// An instruction in the fetch buffer / ROB.
#[derive(Debug, Clone)]
struct MicroOp {
    token: PacketId,
    slot: u8,
    op: Op,
    dep: u8,
    /// Resolved CFI outcome (correct path only).
    cfi: Option<CfiOutcome>,
    /// Precomputed: this CFI will mispredict at resolution.
    mispredict: Option<MispredictKind>,
    wrong_path: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MispredictKind {
    Direction,
    Target,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    uop: MicroOp,
    issued: bool,
    completion: u64,
}

#[derive(Debug, Clone, Copy)]
enum RasOp {
    Push(u64),
    Pop,
}

/// The call/return traffic of one fetch packet, recorded at predecode for
/// RAS repair. A slot performs at most one push or pop, so a fixed array
/// holds the worst case without a heap allocation per packet.
#[derive(Debug, Clone, Copy)]
struct RasOps {
    ops: [(u8, RasOp); MAX_FETCH_WIDTH],
    len: u8,
}

impl Default for RasOps {
    fn default() -> Self {
        Self {
            ops: [(0, RasOp::Pop); MAX_FETCH_WIDTH],
            len: 0,
        }
    }
}

impl RasOps {
    fn push(&mut self, slot: u8, op: RasOp) {
        self.ops[self.len as usize] = (slot, op);
        self.len += 1;
    }

    fn iter(&self) -> impl Iterator<Item = (u8, RasOp)> + '_ {
        self.ops[..self.len as usize].iter().copied()
    }
}

/// Book-keeping the core keeps per accepted fetch packet.
#[derive(Debug, Clone, Default)]
struct TokenInfo {
    remaining: u32,
    ras_snap: Option<RasSnapshot>,
    ras_ops: RasOps,
}

/// Biased `Option<MispredictKind>` codec: 0 = `None`, 1 = direction,
/// 2 = target.
fn encode_misp(m: Option<MispredictKind>) -> u64 {
    match m {
        None => 0,
        Some(MispredictKind::Direction) => 1,
        Some(MispredictKind::Target) => 2,
    }
}

fn decode_misp(r: &mut StateReader<'_>) -> Result<Option<MispredictKind>, SnapError> {
    Ok(match r.read_u64_capped("mispredict kind", 2)? {
        0 => None,
        1 => Some(MispredictKind::Direction),
        _ => Some(MispredictKind::Target),
    })
}

impl InflightFetch {
    fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.id);
        w.write_u64(self.pc);
        w.write_u64(u64::from(self.width));
        w.write_u64(u64::from(self.stage));
        self.used.save_state(w);
        w.write_bool(self.steered);
    }

    fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        Ok(InflightFetch {
            id: r.read_u64("fetch id")?,
            pc: r.read_u64("fetch pc")?,
            width: r.read_u64_capped("fetch width", MAX_FETCH_WIDTH as u64)? as u8,
            stage: r.read_u64_capped("fetch stage", 0xff)? as u8,
            used: PredictionBundle::load_state(r)?,
            steered: r.read_bool("fetch steered")?,
        })
    }
}

impl MicroOp {
    fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.token);
        w.write_u64(u64::from(self.slot));
        self.op.save_state(w);
        w.write_u64(u64::from(self.dep));
        w.write_bool(self.cfi.is_some());
        if let Some(c) = &self.cfi {
            c.save_state(w);
        }
        w.write_u64(encode_misp(self.mispredict));
        w.write_bool(self.wrong_path);
    }

    fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        Ok(MicroOp {
            token: r.read_u64("uop token")?,
            slot: r.read_u64_capped("uop slot", 0xff)? as u8,
            op: Op::load_state(r)?,
            dep: r.read_u64_capped("uop dep", 0xff)? as u8,
            cfi: if r.read_bool("uop has cfi")? {
                Some(CfiOutcome::load_state(r)?)
            } else {
                None
            },
            mispredict: decode_misp(r)?,
            wrong_path: r.read_bool("uop wrong path")?,
        })
    }
}

impl RobEntry {
    fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.seq);
        self.uop.save_state(w);
        w.write_bool(self.issued);
        w.write_u64(self.completion);
    }

    fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        Ok(RobEntry {
            seq: r.read_u64("rob seq")?,
            uop: MicroOp::load_state(r)?,
            issued: r.read_bool("rob issued")?,
            completion: r.read_u64("rob completion")?,
        })
    }
}

impl RasOps {
    fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(u64::from(self.len));
        for (slot, op) in self.iter() {
            w.write_u64(u64::from(slot));
            match op {
                RasOp::Push(a) => {
                    w.write_u64(0);
                    w.write_u64(a);
                }
                RasOp::Pop => w.write_u64(1),
            }
        }
    }

    fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        let len = r.read_u64_capped("ras op count", MAX_FETCH_WIDTH as u64)?;
        let mut ops = RasOps::default();
        for _ in 0..len {
            let slot = r.read_u64_capped("ras op slot", 0xff)? as u8;
            let op = match r.read_u64_capped("ras op kind", 1)? {
                0 => RasOp::Push(r.read_u64("ras push addr")?),
                _ => RasOp::Pop,
            };
            ops.push(slot, op);
        }
        Ok(ops)
    }
}

impl TokenInfo {
    fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(u64::from(self.remaining));
        w.write_bool(self.ras_snap.is_some());
        if let Some(s) = &self.ras_snap {
            s.save_state(w);
        }
        self.ras_ops.save_state(w);
    }

    fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        Ok(TokenInfo {
            remaining: r.read_u64_capped("token remaining", u64::from(u32::MAX))? as u32,
            ras_snap: if r.read_bool("token has ras snap")? {
                Some(RasSnapshot::load_state(r)?)
            } else {
                None
            },
            ras_ops: RasOps::load_state(r)?,
        })
    }
}

/// The simulated core.
pub struct Core<S> {
    cfg: CoreConfig,
    bpu: BranchPredictorUnit,
    mem: MemoryHierarchy,
    ras: ReturnAddressStack,
    stream: S,
    cycle: u64,
    counters: PerfCounters,

    // Frontend state.
    fetch_pc: u64,
    fetch_stall_until: u64,
    fetch_pipeline: VecDeque<InflightFetch>,
    fetch_buffer: VecDeque<MicroOp>,
    expected_pc: u64,
    on_wrong_path: bool,
    lookahead: Option<DynInst>,
    stream_done: bool,
    /// Block-batched read-ahead: instructions pulled from the stream in
    /// chunks so per-instruction fetch pays an index + bounds check rather
    /// than a full stream cursor walk. Never serialized — `stream_reads`
    /// counts only *consumed* instructions, so a restore repositions the
    /// fresh stream exactly at the first unconsumed one.
    inst_buf: Vec<DynInst>,
    inst_pos: usize,
    /// Total `next_inst` calls made on the stream — the workload cursor.
    /// A checkpoint restore replays this many reads against a fresh
    /// deterministic stream to reposition it.
    stream_reads: u64,

    // Backend state.
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    /// completion time per recent sequence number (ring keyed by seq).
    completion_ring: Vec<(u64, u64)>,
    /// Per-packet bookkeeping, keyed by the sequential history-file token
    /// (live window bounded by the history file's capacity).
    tokens: TokenSlab<TokenInfo>,
    pending_resolves: Vec<(PacketId, SlotResolution, Option<MispredictKind>, u64)>,
    committed_before: u64,
    last_commit_cycle: u64,

    // Issue-scan fast path: every ROB entry at an index below this is
    // already issued, so the per-cycle scan starts here instead of at the
    // head. Maintained on commit (pop_front), squash (truncation), and
    // state load; purely a scan hint — it never changes issue decisions.
    issue_skip: usize,

    // Per-cycle scratch buffers, kept across cycles to avoid reallocating
    // on the hot path.
    issue_scratch: Vec<usize>,
    due_scratch: Vec<(PacketId, SlotResolution, Option<MispredictKind>, u64)>,
    uop_scratch: Vec<MicroOp>,

    /// Serialized host state (everything but the BPU and the stream)
    /// captured by [`arm_baseline`](Self::arm_baseline).
    host_baseline: Option<Vec<u8>>,

    /// Interval telemetry engine, armed for the measured region of
    /// [`run_with_warmup`](Self::run_with_warmup). Boxed so the off case
    /// costs the run loop a single pointer-null check.
    interval: Option<Box<IntervalEngine>>,
    /// Programmatic interval-length request; wins over `COBRA_INTERVAL`.
    interval_request: Option<u64>,
    /// The finished series of the last measured run.
    interval_series: Option<IntervalSeries>,
    /// Progress heartbeat: `(every_insts, next_threshold, callback)`,
    /// fired from `run` with `(committed_insts, cycles)`.
    progress: Option<ProgressHook>,
}

/// Progress-callback state: period in committed instructions, the next
/// firing threshold, and the callback itself.
type ProgressHook = (u64, u64, Box<dyn FnMut(u64, u64) + Send>);

const COMPLETION_RING: usize = 512;

/// Instructions pulled per [`InstructionStream::next_block`] call — a few
/// hundred fetch packets' worth, small enough to stay cache-resident.
const FETCH_BATCH: usize = 4096;

impl<S: InstructionStream> Core<S> {
    /// Builds a core around `design` running `stream`.
    ///
    /// # Errors
    ///
    /// Propagates composition errors from the predictor design.
    pub fn new(design: &Design, cfg: CoreConfig, stream: S) -> Result<Self, ComposeError> {
        let mut bpu_cfg = cfg.bpu;
        bpu_cfg.fetch_width = cfg.fetch_slots();
        let bpu = BranchPredictorUnit::build(design, bpu_cfg)?;
        let entry = stream.entry_pc();
        Ok(Self {
            mem: MemoryHierarchy::new(&cfg),
            ras: ReturnAddressStack::new(cfg.ras_entries),
            bpu,
            stream,
            cycle: 0,
            counters: PerfCounters::default(),
            fetch_pc: entry,
            fetch_stall_until: 0,
            fetch_pipeline: VecDeque::new(),
            fetch_buffer: VecDeque::new(),
            expected_pc: entry,
            on_wrong_path: false,
            lookahead: None,
            stream_done: false,
            inst_buf: Vec::new(),
            inst_pos: 0,
            stream_reads: 0,
            rob: VecDeque::new(),
            next_seq: 0,
            completion_ring: vec![(u64::MAX, 0); COMPLETION_RING],
            tokens: TokenSlab::new(bpu_cfg.history_file_entries),
            pending_resolves: Vec::new(),
            committed_before: 0,
            last_commit_cycle: 0,
            issue_skip: 0,
            issue_scratch: Vec::new(),
            due_scratch: Vec::new(),
            uop_scratch: Vec::new(),
            host_baseline: None,
            interval: None,
            interval_request: None,
            interval_series: None,
            progress: None,
            cfg,
        })
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The attached predictor unit.
    pub fn bpu(&self) -> &BranchPredictorUnit {
        &self.bpu
    }

    /// Mutable access to the attached predictor unit (observability
    /// configuration: PC attribution, trace sink retargeting).
    pub fn bpu_mut(&mut self) -> &mut BranchPredictorUnit {
        &mut self.bpu
    }

    /// Current counters.
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Requests interval telemetry with `n` committed instructions per
    /// interval for the next [`run_with_warmup`](Self::run_with_warmup),
    /// overriding the `COBRA_INTERVAL` environment gate (`0` disables).
    pub fn set_interval(&mut self, n: u64) {
        self.interval_request = Some(n);
    }

    /// Takes the interval series collected by the last
    /// [`run_with_warmup`](Self::run_with_warmup), if telemetry was armed.
    pub fn take_intervals(&mut self) -> Option<IntervalSeries> {
        self.interval_series.take()
    }

    /// Installs a progress heartbeat: `cb(committed_insts, cycles)` fires
    /// from [`run`](Self::run) every `every` committed instructions
    /// (`0` uninstalls).
    pub fn set_progress(&mut self, every: u64, cb: Box<dyn FnMut(u64, u64) + Send>) {
        self.progress = if every == 0 {
            None
        } else {
            Some((every, self.counters.committed_insts + every, cb))
        };
    }

    /// Live host-counter snapshot for interval telemetry: the counters
    /// mirror, plus the in-progress cycle count (`run` writes
    /// `counters.cycles` back only when it returns).
    fn host_snapshot(&self) -> HostCounters {
        let mut h = self.counters.to_host();
        h.cycles = self.cycle;
        h
    }

    /// Occupancy gauges at the present point in the run: history-file
    /// occupancy, RAS depth and high-water, and per-component SRAM
    /// touched-row utilization. Sampled at every interval boundary, and
    /// also an observability accessor for end-of-run reporting
    /// (`cobra-trace`).
    pub fn interval_gauges(&self) -> IntervalGauges {
        IntervalGauges {
            hf_occupancy: self.bpu.in_flight() as u64,
            ras_depth: self.ras.depth() as u64,
            ras_high_water: self.ras.depth_high_water() as u64,
            sram_rows: self.bpu.sram_utilization(),
        }
    }

    /// Closes the current telemetry interval at the present commit point.
    #[cold]
    fn close_interval(&mut self) {
        let host = self.host_snapshot();
        let attr = self.bpu.attribution_report();
        let gauges = self.interval_gauges();
        if let Some(iv) = self.interval.as_deref_mut() {
            iv.close(host, attr, gauges);
        }
    }

    /// Fires the progress callback and re-arms its threshold.
    #[cold]
    fn fire_progress(&mut self) {
        let (insts, cycles) = (self.counters.committed_insts, self.cycle);
        if let Some((every, next_at, cb)) = self.progress.as_mut() {
            *next_at = insts + *every;
            cb(insts, cycles);
        }
    }

    fn block_base(&self, pc: u64) -> u64 {
        pc & !(self.cfg.fetch_bytes - 1)
    }

    fn packet_width(&self, pc: u64) -> u8 {
        let base = ((self.block_base(pc) + self.cfg.fetch_bytes - pc) / SLOT_BYTES) as u8;
        if !self.cfg.serialize_branches {
            return base;
        }
        // Serialized fetch (Section I experiment): one branch prediction
        // per cycle, so the packet ends at the first conditional branch.
        for i in 0..base {
            let st = self.stream.inst_at(pc + i as u64 * SLOT_BYTES);
            if st.cfi_kind == Some(BranchKind::Conditional) {
                return i + 1;
            }
        }
        base
    }

    /// The packet's next fetch PC: its redirect target, or the address just
    /// past its (possibly serialization-narrowed) last slot.
    fn packet_next_pc(&self, pc: u64, width: u8, b: &PredictionBundle) -> u64 {
        match b.redirect() {
            Some((_, target)) => target,
            None => pc + width as u64 * SLOT_BYTES,
        }
    }

    fn peek_inst(&mut self) -> Option<&DynInst> {
        if self.lookahead.is_none() && !self.stream_done {
            if self.inst_pos == self.inst_buf.len() {
                self.inst_buf.clear();
                self.inst_pos = 0;
                self.stream.next_block(&mut self.inst_buf, FETCH_BATCH);
            }
            if self.inst_pos < self.inst_buf.len() {
                self.lookahead = Some(self.inst_buf[self.inst_pos]);
                self.inst_pos += 1;
                self.stream_reads += 1;
            } else {
                self.stream_done = true;
            }
        }
        self.lookahead.as_ref()
    }

    fn take_inst(&mut self) -> Option<DynInst> {
        self.peek_inst();
        self.lookahead.take()
    }

    /// Runs until `max_insts` instructions commit or the stream ends.
    /// Returns the performance report.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (no commit for 100 000 cycles) —
    /// this indicates a modelling bug, never a workload property.
    pub fn run(&mut self, max_insts: u64, workload_name: &str) -> PerfReport {
        while self.counters.committed_insts < max_insts {
            self.step();
            if let Some(iv) = self.interval.as_deref() {
                if iv.due(self.counters.committed_insts) {
                    self.close_interval();
                }
            }
            if let Some((_, next_at, _)) = &self.progress {
                if self.counters.committed_insts >= *next_at {
                    self.fire_progress();
                }
            }
            if self.stream_done
                && self.lookahead.is_none()
                && self.rob.is_empty()
                && self.fetch_buffer.is_empty()
            {
                break;
            }
            assert!(
                self.cycle - self.last_commit_cycle < 100_000,
                "deadlock: no commit since cycle {} (now {}): rob {} (head {:?}) buffer {} hf {} pipeline {:?} on_wrong_path {} pending {} expected {:#x} fetch_pc {:#x}",
                self.last_commit_cycle,
                self.cycle,
                self.rob.len(),
                self.rob.front(),
                self.fetch_buffer.len(),
                self.bpu.in_flight(),
                self.fetch_pipeline.iter().map(|f| f.stage).collect::<Vec<_>>(),
                self.on_wrong_path,
                self.pending_resolves.len(),
                self.expected_pc,
                self.fetch_pc
            );
        }
        self.counters.cycles = self.cycle;
        self.bpu.flush_tracers();
        PerfReport {
            workload: workload_name.to_string(),
            design: self.bpu.design_name().to_string(),
            counters: self.counters,
            attribution: self.bpu.attribution_report(),
        }
    }

    /// Runs `warmup` instructions (training predictors and caches), then
    /// measures the next `measure` instructions, reporting only the
    /// measured region.
    pub fn run_with_warmup(
        &mut self,
        warmup: u64,
        measure: u64,
        workload_name: &str,
    ) -> PerfReport {
        self.run(warmup, workload_name);
        let baseline = self.counters;
        let baseline_attr = self.bpu.attribution_report();
        let n = self.interval_request.or_else(interval_n).filter(|&n| n > 0);
        if let Some(n) = n {
            self.interval = Some(Box::new(IntervalEngine::new(
                n,
                self.host_snapshot(),
                baseline_attr.clone(),
            )));
        }
        let mut report = self.run(warmup + measure, workload_name);
        if let Some(iv) = self.interval.take() {
            let gauges = self.interval_gauges();
            self.interval_series =
                Some(iv.finish(self.host_snapshot(), self.bpu.attribution_report(), gauges));
        }
        report.counters = report.counters.delta(&baseline);
        report.attribution = report.attribution.delta(&baseline_attr);
        report
    }

    /// Advances the machine one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        self.bpu.tick();
        self.commit_stage();
        self.execute_stage();
        self.dispatch_stage();
        self.frontend_stage();
        if self.counters.committed_insts > self.committed_before {
            self.committed_before = self.counters.committed_insts;
            self.last_commit_cycle = self.cycle;
        }
    }

    // ---------------------------------------------------------------- commit

    fn commit_stage(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            // An instruction commits the cycle *after* it completes, so a
            // branch's resolution (processed in the execute stage) always
            // precedes its commit.
            if !head.issued || head.completion >= self.cycle {
                break;
            }
            let entry = self.rob.pop_front().expect("front exists");
            self.issue_skip = self.issue_skip.saturating_sub(1);
            debug_assert!(
                !entry.uop.wrong_path,
                "wrong-path op at commit: cycle {} token {} slot {} op {:?} cfi {:?} misp {:?} on_wrong_path {} expected_pc {:#x}",
                self.cycle, entry.uop.token, entry.uop.slot, entry.uop.op, entry.uop.cfi, entry.uop.mispredict, self.on_wrong_path, self.expected_pc
            );
            self.counters.committed_insts += 1;
            let token = entry.uop.token;
            if let Some(info) = self.tokens.get_mut(token) {
                info.remaining = info.remaining.saturating_sub(1);
                if info.remaining == 0 {
                    self.tokens.remove(token);
                    if let Some(pkt) = self.bpu.commit_front() {
                        for r in &pkt.resolutions {
                            self.counters.cfis += 1;
                            if r.kind == BranchKind::Conditional {
                                self.counters.cond_branches += 1;
                            }
                        }
                        if let Some(iv) = self.interval.as_deref_mut() {
                            for r in &pkt.resolutions {
                                iv.note_branch(pkt.pc + u64::from(r.slot) * SLOT_BYTES);
                            }
                        }
                    }
                }
            }
        }
    }

    // --------------------------------------------------------------- execute

    fn exec_latency(&mut self, op: &Op) -> u64 {
        match op {
            Op::Int => 1,
            Op::Mul => 3,
            Op::Div => 12,
            Op::Fp => 4,
            Op::Load { addr } => 1 + self.mem.data(*addr),
            Op::Store { addr } => {
                let _ = self.mem.data(*addr);
                1
            }
            Op::Cfi => self.cfg.branch_resolve_latency,
        }
    }

    fn dep_ready(&self, seq: u64, dep: u8, oldest_live: u64) -> Option<u64> {
        if dep == 0 {
            return Some(0);
        }
        let Some(producer) = seq.checked_sub(dep as u64) else {
            return Some(0); // dependency precedes the program: always ready
        };
        if producer < oldest_live {
            return Some(0); // producer already committed
        }
        let (ring_seq, completion) =
            self.completion_ring[(producer % COMPLETION_RING as u64) as usize];
        if ring_seq == producer {
            Some(completion)
        } else {
            None // producer dispatched but not issued yet
        }
    }

    fn execute_stage(&mut self) {
        // Issue.
        let oldest_live = self.rob.front().map_or(self.next_seq, |e| e.seq);
        let mut alu = self.cfg.alu_ports;
        let mut mem = self.cfg.mem_ports;
        let mut fp = self.cfg.fp_ports;
        let mut examined = 0;
        let mut to_issue = std::mem::take(&mut self.issue_scratch);
        to_issue.clear();
        // Skip the already-issued head of the ROB (committed-but-waiting
        // entries); `issue_skip` conservatively under-counts, so the
        // `issued` check below still guards every examined entry.
        while self.rob.get(self.issue_skip).is_some_and(|e| e.issued) {
            self.issue_skip += 1;
        }
        for (k, e) in self.rob.range(self.issue_skip..).enumerate() {
            let i = self.issue_skip + k;
            if examined >= self.cfg.issue_window || (alu == 0 && mem == 0 && fp == 0) {
                break;
            }
            if e.issued {
                continue;
            }
            examined += 1;
            let ready_at = match self.dep_ready(e.seq, e.uop.dep, oldest_live) {
                Some(t) => t,
                None => continue,
            };
            if ready_at > self.cycle {
                continue;
            }
            let port = match e.uop.op {
                Op::Load { .. } | Op::Store { .. } => &mut mem,
                Op::Fp => &mut fp,
                _ => &mut alu,
            };
            if *port == 0 {
                continue;
            }
            *port -= 1;
            to_issue.push(i);
        }
        for &i in &to_issue {
            let (op, seq) = {
                let e = &self.rob[i];
                (e.uop.op, e.seq)
            };
            let latency = self.exec_latency(&op);
            let e = &mut self.rob[i];
            e.issued = true;
            e.completion = self.cycle + latency;
            self.completion_ring[(seq % COMPLETION_RING as u64) as usize] = (seq, e.completion);
            // Schedule branch resolution at completion.
            if let (Op::Cfi, Some(cfi), false) = (&e.uop.op, &e.uop.cfi, e.uop.wrong_path) {
                let pending = (
                    e.uop.token,
                    SlotResolution {
                        slot: e.uop.slot,
                        kind: cfi.kind,
                        taken: cfi.taken,
                        target: cfi.target,
                    },
                    e.uop.mispredict,
                    e.completion,
                );
                self.pending_resolves.push(pending);
            }
        }
        self.issue_scratch = to_issue;
        // Process resolutions completing this cycle (issued earlier).
        // We keep it simple: resolve at issue time but effective at the
        // completion cycle via a pending queue.
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        let cycle = self.cycle;
        self.pending_resolves.retain(|r| {
            if r.3 <= cycle {
                due.push(*r);
                false
            } else {
                true
            }
        });
        for &(token, res, misp, _) in &due {
            self.resolve_branch(token, res, misp);
        }
        self.due_scratch = due;
    }

    fn resolve_branch(
        &mut self,
        token: PacketId,
        res: SlotResolution,
        misp: Option<MispredictKind>,
    ) {
        let redirect = self.bpu.resolve(token, res, misp.is_some());
        let Some(kind) = misp else { return };
        let Some(target) = redirect else {
            // The entry vanished (already squashed by an older redirect
            // this cycle): the resolution is stale.
            return;
        };
        match kind {
            MispredictKind::Direction => self.counters.cond_mispredicts += 1,
            MispredictKind::Target => self.counters.target_mispredicts += 1,
        }

        // Flush the ROB and fetch buffer younger than the branch.
        // Flush everything younger than the branch (in program order:
        // later tokens, or later slots of the same packet).
        while self
            .rob
            .back()
            .is_some_and(|e| e.uop.token > token || (e.uop.token == token && e.uop.slot > res.slot))
        {
            let e = self.rob.pop_back().expect("back exists");
            if let Some(info) = self.tokens.get_mut(e.uop.token) {
                info.remaining = info.remaining.saturating_sub(1);
            }
        }
        self.issue_skip = self.issue_skip.min(self.rob.len());
        for uop in self.fetch_buffer.drain(..) {
            if let Some(info) = self.tokens.get_mut(uop.token) {
                info.remaining = info.remaining.saturating_sub(1);
            }
        }
        // Squash in-flight fetches (their history-file entries are already
        // gone via `resolve`).
        self.fetch_pipeline.clear();

        // Repair the RAS: restore the mispredicting packet's snapshot and
        // replay its pre-branch call/ret traffic.
        if let Some(info) = self.tokens.get(token) {
            if let Some(snap) = info.ras_snap {
                self.ras.restore(snap);
                for (slot, op) in info.ras_ops.iter() {
                    if slot <= res.slot {
                        match op {
                            RasOp::Push(a) => self.ras.push(a),
                            RasOp::Pop => {
                                let _ = self.ras.pop();
                            }
                        }
                    }
                }
            }
        }
        // Drop bookkeeping for squashed tokens. Tokens with remaining == 0
        // here were entirely wrong-path (never to commit).
        self.tokens.truncate_above(token);
        // Trim the mispredicted token's own count to what survives in the
        // ROB (its post-branch slots were flushed).
        if let Some(info) = self.tokens.get_mut(token) {
            // Everything younger than the branch was just popped, so the
            // token's surviving slots are exactly the ROB's back suffix.
            let live = self
                .rob
                .iter()
                .rev()
                .take_while(|e| e.uop.token == token)
                .count() as u32;
            info.remaining = live;
        }

        // Redirect fetch down the corrected path.
        self.fetch_pc = target;
        self.expected_pc = target;
        self.on_wrong_path = false;
        if self.cfg.repair_stalls_fetch {
            self.fetch_stall_until = self
                .fetch_stall_until
                .max(self.cycle + self.bpu.last_repair_cycles);
        }
    }

    // --------------------------------------------------------------- dispatch

    fn dispatch_stage(&mut self) {
        for _ in 0..self.cfg.decode_width {
            if self.rob.len() >= self.cfg.rob_entries {
                self.counters.rob_stall_cycles += 1;
                break;
            }
            let Some(uop) = self.fetch_buffer.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            // Invalidate any stale ring slot for this seq.
            self.completion_ring[(seq % COMPLETION_RING as u64) as usize] = (u64::MAX, 0);
            self.rob.push_back(RobEntry {
                seq,
                uop,
                issued: false,
                completion: u64::MAX,
            });
        }
    }

    // --------------------------------------------------------------- frontend

    fn frontend_stage(&mut self) {
        let depth = self.bpu.depth();
        // 1. Advance stages (oldest first, respecting structural slots).
        let mut prev_stage = depth + 1;
        for f in self.fetch_pipeline.iter_mut() {
            let want = (f.stage + 1).min(depth);
            f.stage = want.min(prev_stage - 1).max(f.stage);
            prev_stage = f.stage;
        }

        // 2. Override checks at stages >= 2 (oldest first; first redirect
        // wins and squashes everything younger).
        let mut redirect: Option<(usize, u64)> = None;
        for (i, f) in self.fetch_pipeline.iter().enumerate() {
            if f.stage < 2 {
                continue;
            }
            let Some(new) = self.bpu.prediction(f.id, f.stage) else {
                continue;
            };
            // Compare in place: the prediction is unchanged on almost every
            // cycle, and the stable case should not pay a bundle copy.
            if *new == f.used {
                continue;
            }
            let new = *new;
            let old_next = self.packet_next_pc(f.pc, f.width, &f.used);
            let new_next = self.packet_next_pc(f.pc, f.width, &new);
            if new_next != old_next {
                redirect = Some((i, new_next));
                self.counters.override_redirects += 1;
                break;
            } else if !new.history_bits().eq(f.used.history_bits()) {
                match self.bpu.config().repair_mode {
                    GhistRepairMode::ReplayFetch => {
                        redirect = Some((i, new_next));
                        self.counters.history_replays += 1;
                        break;
                    }
                    GhistRepairMode::SnapshotOnly => {
                        let id = f.id;
                        // Defer the mutable work out of the iteration.
                        redirect = Some((i, u64::MAX));
                        let _ = id;
                        break;
                    }
                }
            } else {
                // Prediction refined without observable change; adopt it.
                // (Handled below via the same adoption path.)
            }
        }
        if let Some((i, new_next)) = redirect {
            let (fid, fstage) = {
                let f = &self.fetch_pipeline[i];
                (f.id, f.stage)
            };
            let new = *self
                .bpu
                .prediction(fid, fstage)
                .expect("prediction just read");
            if new_next == u64::MAX {
                // SnapshotOnly (original design): the prediction is adopted
                // but the misspeculated history is left unrepaired and
                // nothing is replayed.
                self.bpu.revise_quiet(fid, &new);
                self.fetch_pipeline[i].used = new;
            } else {
                self.bpu.revise(fid, &new, true);
                self.fetch_pipeline[i].used = new;
                while self.fetch_pipeline.len() > i + 1 {
                    self.fetch_pipeline.pop_back();
                }
                self.fetch_pc = new_next;
            }
        } else {
            // Adopt refined-but-equivalent bundles.
            for f in self.fetch_pipeline.iter_mut() {
                if f.stage >= 2 {
                    if let Some(new) = self.bpu.prediction(f.id, f.stage) {
                        f.used = *new;
                    }
                }
            }
        }

        // 3. Stage-1 steering for the packet fetched last cycle.
        if let Some(f) = self.fetch_pipeline.back_mut() {
            if f.stage == 1 && !f.steered {
                if let Some(b) = self.bpu.prediction(f.id, 1) {
                    f.used = *b;
                    f.steered = true;
                    self.bpu.speculate(f.id, 1);
                    self.fetch_pc = match f.used.redirect() {
                        Some((_, t)) => t,
                        None => f.pc + f.width as u64 * SLOT_BYTES,
                    };
                }
            }
        }

        // 4. Predecode + enqueue the packet at the final stage.
        if let Some(front) = self.fetch_pipeline.front() {
            let room = self.cfg.fetch_buffer_insts
                - self.fetch_buffer.len().min(self.cfg.fetch_buffer_insts);
            if front.stage >= depth && room >= front.width as usize {
                let f = self.fetch_pipeline.pop_front().expect("front exists");
                self.predecode_and_enqueue(f);
            }
        }

        // 5. Fetch a new packet.
        let stalled = self.cycle < self.fetch_stall_until;
        if stalled {
            self.counters.icache_stall_cycles += 1;
        }
        let has_slot = self.fetch_pipeline.len() < depth as usize;
        if !stalled
            && has_slot
            && !(self.stream_done && self.lookahead.is_none() && !self.on_wrong_path)
        {
            let pc = self.fetch_pc;
            let extra = self.mem.fetch(self.block_base(pc));
            if extra > 0 {
                self.fetch_stall_until = self.cycle + extra;
                self.counters.fetch_bubbles += 1;
            } else {
                let width = self.packet_width(pc);
                if let Some(id) = self.bpu.query_packet(pc, width) {
                    self.fetch_pipeline.push_back(InflightFetch {
                        id,
                        pc,
                        width,
                        stage: 0,
                        used: PredictionBundle::new(width),
                        steered: false,
                    });
                    // Provisional next fetch: fall through; stage-1
                    // steering revises this next cycle.
                    self.fetch_pc = pc + width as u64 * SLOT_BYTES;
                } else {
                    self.counters.fetch_bubbles += 1; // history file full
                }
            }
        } else if has_slot {
            self.counters.fetch_bubbles += 1;
        }
    }

    /// Ground truth for one slot of a packet being predecoded.
    fn slot_truth(&mut self, slot_pc: u64, consuming: bool) -> (StaticInst, Option<DynInst>) {
        if consuming {
            if let Some(inst) = self.peek_inst() {
                if inst.pc == slot_pc {
                    let d = self.take_inst().expect("peeked");
                    let st = StaticInst {
                        op: d.op,
                        cfi_kind: d.cfi.map(|c| c.kind),
                        target: d.cfi.and_then(|c| {
                            if c.kind == BranchKind::Indirect || c.kind == BranchKind::Ret {
                                None
                            } else {
                                Some(c.target)
                            }
                        }),
                    };
                    return (st, Some(d));
                }
            }
            // Alignment slip: treat as wrong-path filler.
        }
        (self.stream.inst_at(slot_pc), None)
    }

    fn predecode_and_enqueue(&mut self, f: InflightFetch) {
        let mut corrected = f.used;
        let ras_snap = self.ras.snapshot();
        let mut ras_ops = RasOps::default();

        // A packet is on the correct path iff it starts exactly at the next
        // architectural PC.
        let mut consuming = !self.on_wrong_path && f.pc == self.expected_pc;
        if !self.on_wrong_path && f.pc != self.expected_pc {
            // Steering drift (e.g. stale provisional fall-through): discard
            // this packet and refetch the architectural path.
            self.bpu.squash_from(f.id);
            self.fetch_pipeline.clear();
            self.fetch_pc = self.expected_pc;
            self.counters.fetch_bubbles += 1;
            return;
        }

        let mut uops = std::mem::take(&mut self.uop_scratch);
        uops.clear();
        let mut diverged = false;
        for s in 0..f.width {
            let slot_pc = f.pc + s as u64 * SLOT_BYTES;
            let should_consume = consuming && !diverged;
            let (truth, dyn_inst) = self.slot_truth(slot_pc, should_consume);
            if should_consume && dyn_inst.is_none() {
                // Alignment slip: the architectural stream is not at this
                // slot (a malformed or self-modifying stream). Truncate the
                // packet here; the drift check on the next packet resteers
                // fetch to the architectural PC.
                for j in (s as usize)..f.width as usize {
                    *corrected.slot_mut(j) = Default::default();
                }
                break;
            }

            // Predecode fixes the slot's CFI information.
            {
                let sp = corrected.slot_mut(s as usize);
                match truth.cfi_kind {
                    None => {
                        sp.kind = None;
                        sp.taken = None;
                        sp.set_target(None);
                    }
                    Some(kind) => {
                        sp.kind = Some(kind);
                        match kind {
                            BranchKind::Conditional | BranchKind::Jump | BranchKind::Call => {
                                // Direct targets are computable at predecode.
                                if let Some(t) = truth.target {
                                    sp.set_target(Some(t));
                                }
                            }
                            BranchKind::Ret => {
                                sp.set_target(Some(self.ras.peek()));
                            }
                            BranchKind::Indirect => {
                                // Only the BTB's guess is available.
                            }
                        }
                        if kind != BranchKind::Conditional {
                            sp.taken = None;
                        }
                    }
                }
            }
            let sp = *corrected.slot(s as usize);

            // RAS speculation at predecode.
            match sp.kind {
                Some(BranchKind::Call) => {
                    self.ras.push(slot_pc + SLOT_BYTES);
                    ras_ops.push(s, RasOp::Push(slot_pc + SLOT_BYTES));
                }
                Some(BranchKind::Ret) => {
                    let _ = self.ras.pop();
                    ras_ops.push(s, RasOp::Pop);
                }
                _ => {}
            }

            // Build the micro-op.
            if let Some(d) = dyn_inst {
                let predicted_taken = match sp.kind {
                    Some(BranchKind::Conditional) => sp.taken == Some(true),
                    Some(_) => true,
                    None => false,
                };
                let mispredict = d.cfi.and_then(|c| {
                    if c.kind == BranchKind::Conditional && c.taken != predicted_taken {
                        Some(MispredictKind::Direction)
                    } else if c.taken && predicted_taken && sp.target() != Some(c.target) {
                        Some(MispredictKind::Target)
                    } else {
                        None
                    }
                });
                uops.push(MicroOp {
                    token: f.id,
                    slot: s,
                    op: d.op,
                    dep: d.dep,
                    cfi: d.cfi,
                    mispredict,
                    wrong_path: false,
                });
                // Divergence bookkeeping.
                if let Some(c) = d.cfi {
                    if mispredict.is_some() {
                        // The architectural path continues at the real
                        // outcome; fetch will follow the (wrong) prediction.
                        self.expected_pc = if c.taken {
                            c.target
                        } else {
                            slot_pc + SLOT_BYTES
                        };
                        self.on_wrong_path = true;
                        diverged = true;
                    } else if c.taken {
                        self.expected_pc = c.target;
                    } else {
                        self.expected_pc = slot_pc + SLOT_BYTES;
                    }
                } else {
                    self.expected_pc = slot_pc + SLOT_BYTES;
                }
            } else {
                uops.push(MicroOp {
                    token: f.id,
                    slot: s,
                    op: truth.op,
                    dep: 0,
                    cfi: None,
                    mispredict: None,
                    wrong_path: true,
                });
                consuming = false;
            }

            // The packet architecturally ends at the first slot the
            // *corrected prediction* redirects on, or — in the serialized
            // experiment — at the first conditional branch (one direction
            // prediction per cycle).
            let ends = sp.wants_redirect() && sp.target().is_some();
            if ends {
                // Clear any predicted junk past the cut.
                for j in (s as usize + 1)..f.width as usize {
                    *corrected.slot_mut(j) = Default::default();
                }
                break;
            }
            // A predicted-taken slot with no target cannot redirect: the
            // packet continues (fall-through), to be fixed at execute.
        }

        // If predecode changed the observable prediction, revise.
        let old_next = self.packet_next_pc(f.pc, f.width, &f.used);
        let new_next = self.packet_next_pc(f.pc, f.width, &corrected);
        let hist_changed = !f.used.history_bits().eq(corrected.history_bits());
        if new_next != old_next {
            self.bpu.revise(f.id, &corrected, true);
            self.fetch_pipeline.clear();
            self.fetch_pc = new_next;
            self.counters.override_redirects += 1;
        } else if hist_changed {
            match self.bpu.config().repair_mode {
                GhistRepairMode::ReplayFetch => {
                    self.bpu.revise(f.id, &corrected, true);
                    self.fetch_pipeline.clear();
                    self.fetch_pc = new_next;
                    self.counters.history_replays += 1;
                }
                GhistRepairMode::SnapshotOnly => {
                    self.bpu.revise_quiet(f.id, &corrected);
                }
            }
        }

        // Accept into the history file and enqueue the micro-ops.
        self.bpu.accept(f.id, corrected);
        let info = TokenInfo {
            // An empty packet still retires one zero-cost marker op below.
            remaining: uops.len().max(1) as u32,
            ras_snap: Some(ras_snap),
            ras_ops,
        };
        self.tokens.insert(f.id, info);
        if uops.is_empty() {
            // Nothing to commit from this packet: retire its entry when it
            // reaches the head. Represent with a zero-cost marker op.
            self.fetch_buffer.push_back(MicroOp {
                token: f.id,
                slot: 0,
                op: Op::Int,
                dep: 0,
                cfi: None,
                mispredict: None,
                wrong_path: false,
            });
        } else {
            self.fetch_buffer.extend(uops.drain(..));
        }
        self.uop_scratch = uops;
    }

    /// Serializes the complete core state — predictor unit, caches, RAS,
    /// frontend and backend queues, and the workload cursor — into a
    /// checkpoint stream.
    ///
    /// The workload itself is not stored: only the number of `next_inst`
    /// reads consumed so far, which [`load_state`](Self::load_state)
    /// replays against a freshly-built deterministic stream. Per-cycle
    /// scratch buffers are excluded (they are dead between cycles).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.begin_section("core");
        self.save_host_state(w);
        self.bpu.save_state(w);
        w.end_section();
    }

    /// Everything [`save_state`](Self::save_state) writes *except* the
    /// BPU: cycle, counters, frontend/backend queues, RAS, caches, and the
    /// workload cursor.
    fn save_host_state(&self, w: &mut StateWriter) {
        w.write_u64(self.cycle);
        self.counters.save_state(w);
        w.write_u64(self.fetch_pc);
        w.write_u64(self.fetch_stall_until);
        w.write_u64(self.expected_pc);
        w.write_bool(self.on_wrong_path);
        w.write_bool(self.stream_done);
        w.write_u64(self.stream_reads);
        w.write_bool(self.lookahead.is_some());
        if let Some(inst) = &self.lookahead {
            inst.save_state(w);
        }
        w.write_u64(self.next_seq);
        w.write_u64(self.committed_before);
        w.write_u64(self.last_commit_cycle);
        w.write_u64(self.fetch_pipeline.len() as u64);
        for f in &self.fetch_pipeline {
            f.save_state(w);
        }
        w.write_u64(self.fetch_buffer.len() as u64);
        for u in &self.fetch_buffer {
            u.save_state(w);
        }
        w.write_u64(self.rob.len() as u64);
        for e in &self.rob {
            e.save_state(w);
        }
        for &(seq, completion) in &self.completion_ring {
            w.write_u64(seq);
            w.write_u64(completion);
        }
        self.tokens.save_state(w, |w, info| info.save_state(w));
        w.write_u64(self.pending_resolves.len() as u64);
        for (token, res, misp, due) in &self.pending_resolves {
            w.write_u64(*token);
            res.save_state(w);
            w.write_u64(encode_misp(*misp));
            w.write_u64(*due);
        }
        self.ras.save_state(w);
        self.mem.save_state(w);
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// core that was *freshly built* ([`Core::new`]) from the same design,
    /// configuration, and workload — the stream cursor is repositioned by
    /// replaying the recorded number of reads, which is only correct when
    /// the stream starts at its beginning and is deterministic.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the payload is malformed or shaped for
    /// a different design or configuration.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        r.open_section("core")?;
        self.host_baseline = None;
        self.load_host_state(r)?;
        self.bpu.load_state(r)?;
        r.close_section()
    }

    fn load_host_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.cycle = r.read_u64("core cycle")?;
        self.counters = PerfCounters::load_state(r)?;
        self.fetch_pc = r.read_u64("core fetch pc")?;
        self.fetch_stall_until = r.read_u64("core fetch stall")?;
        self.expected_pc = r.read_u64("core expected pc")?;
        self.on_wrong_path = r.read_bool("core on wrong path")?;
        self.stream_done = r.read_bool("core stream done")?;
        let reads = r.read_u64("core stream reads")?;
        for _ in 0..reads {
            let _ = self.stream.next_inst();
        }
        self.stream_reads = reads;
        self.inst_buf.clear();
        self.inst_pos = 0;
        self.lookahead = if r.read_bool("core has lookahead")? {
            Some(DynInst::load_state(r)?)
        } else {
            None
        };
        self.next_seq = r.read_u64("core next seq")?;
        self.committed_before = r.read_u64("core committed before")?;
        self.last_commit_cycle = r.read_u64("core last commit cycle")?;
        let n_fetch = r.read_u64_capped("core fetch pipeline", 64)?;
        self.fetch_pipeline.clear();
        for _ in 0..n_fetch {
            self.fetch_pipeline.push_back(InflightFetch::load_state(r)?);
        }
        let n_buf = r.read_u64_capped("core fetch buffer", 1 << 16)?;
        self.fetch_buffer.clear();
        for _ in 0..n_buf {
            self.fetch_buffer.push_back(MicroOp::load_state(r)?);
        }
        let n_rob = r.read_u64_capped("core rob", 1 << 20)?;
        self.rob.clear();
        self.issue_skip = 0;
        for _ in 0..n_rob {
            self.rob.push_back(RobEntry::load_state(r)?);
        }
        for slot in &mut self.completion_ring {
            *slot = (
                r.read_u64("core ring seq")?,
                r.read_u64("core ring completion")?,
            );
        }
        self.tokens.load_state(r, TokenInfo::load_state)?;
        let n_pending = r.read_u64_capped("core pending resolves", 1 << 16)?;
        self.pending_resolves.clear();
        for _ in 0..n_pending {
            self.pending_resolves.push((
                r.read_u64("pending token")?,
                SlotResolution::load_state(r)?,
                decode_misp(r)?,
                r.read_u64("pending due cycle")?,
            ));
        }
        self.ras.load_state(r)?;
        self.mem.load_state(r)?;
        Ok(())
    }

    /// Arms a fast-reset baseline at the current state. Host state (queues,
    /// counters, caches — all small relative to predictor tables) is
    /// serialized to an in-memory buffer; the BPU arms dirty-row SRAM
    /// tracking so [`reset_to_baseline`](Self::reset_to_baseline) rewrites
    /// only rows mutated since arming.
    pub fn arm_baseline(&mut self) {
        let mut w = StateWriter::new();
        w.begin_section("core-host");
        self.save_host_state(&mut w);
        w.end_section();
        self.host_baseline = Some(w.finish());
        self.bpu.arm_baseline();
    }

    /// `true` when [`arm_baseline`](Self::arm_baseline) has been called and
    /// no full [`load_state`](Self::load_state) has disarmed it since.
    pub fn baseline_armed(&self) -> bool {
        self.host_baseline.is_some() && self.bpu.baseline_armed()
    }

    /// Restores the core to the armed baseline for a rerun. `fresh_stream`
    /// must be a freshly-built instance of the same deterministic workload;
    /// it is repositioned by replaying the baseline's recorded read count,
    /// exactly as [`load_state`](Self::load_state) does. The baseline stays
    /// armed for the next rerun.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the baseline payload fails to decode
    /// (impossible unless a save/load pair is asymmetric).
    ///
    /// # Panics
    ///
    /// Panics if no baseline is armed.
    pub fn reset_to_baseline(&mut self, fresh_stream: S) -> Result<(), SnapError> {
        let bytes = self
            .host_baseline
            .take()
            .expect("reset_to_baseline without an armed baseline");
        self.stream = fresh_stream;
        let mut r = StateReader::new(&bytes);
        r.open_section("core-host")?;
        self.load_host_state(&mut r)?;
        r.close_section()?;
        self.host_baseline = Some(bytes);
        self.bpu.reset_to_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::IterStream;
    use cobra_core::designs;

    fn straightline(n: u64) -> IterStream<impl Iterator<Item = DynInst>> {
        IterStream::new(0x1000, (0..n).map(|i| DynInst::int(0x1000 + i * 2)))
    }

    #[test]
    fn straightline_ipc_approaches_decode_width() {
        let mut core = Core::new(
            &designs::b2(),
            CoreConfig::boom_4wide(),
            straightline(100_000),
        )
        .expect("composes");
        let r = core.run(80_000, "straightline");
        // No branches, no dependencies: decode width (4) should bind,
        // minus cold-start and icache effects.
        assert!(r.counters.ipc() > 3.2, "IPC {}", r.counters.ipc());
        assert_eq!(r.counters.cond_mispredicts, 0);
        assert_eq!(r.counters.cond_branches, 0);
    }

    #[test]
    fn dependent_chain_limits_ilp() {
        let insts = (0..50_000u64).map(|i| DynInst {
            pc: 0x1000 + i * 2,
            op: Op::Int,
            cfi: None,
            dep: 1, // every instruction depends on the previous one
        });
        let mut core = Core::new(
            &designs::b2(),
            CoreConfig::boom_4wide(),
            IterStream::new(0x1000, insts),
        )
        .expect("composes");
        let r = core.run(40_000, "chain");
        assert!(
            r.counters.ipc() < 1.3,
            "a serial dependence chain cannot exceed ~1 IPC: {}",
            r.counters.ipc()
        );
    }

    #[test]
    fn a_hot_loop_is_learned() {
        // 64 instructions of straight-line code ending in a taken branch
        // back to the top, forever.
        struct LoopProg {
            i: u64,
        }
        impl InstructionStream for LoopProg {
            fn entry_pc(&self) -> u64 {
                0x1000
            }
            fn next_inst(&mut self) -> Option<DynInst> {
                let slot = self.i % 32;
                self.i += 1;
                let pc = 0x1000 + slot * 2;
                Some(if slot == 31 {
                    DynInst {
                        pc,
                        op: Op::Cfi,
                        cfi: Some(CfiOutcome {
                            kind: BranchKind::Conditional,
                            taken: true,
                            target: 0x1000,
                            sfb: false,
                        }),
                        dep: 0,
                    }
                } else {
                    DynInst::int(pc)
                })
            }
            fn inst_at(&self, pc: u64) -> StaticInst {
                if pc == 0x1000 + 31 * 2 {
                    StaticInst {
                        op: Op::Cfi,
                        cfi_kind: Some(BranchKind::Conditional),
                        target: Some(0x1000),
                    }
                } else {
                    StaticInst::filler()
                }
            }
        }
        let mut core = Core::new(
            &designs::tage_l(),
            CoreConfig::boom_4wide(),
            LoopProg { i: 0 },
        )
        .expect("composes");
        let r = core.run(60_000, "hotloop");
        assert!(
            r.counters.branch_accuracy() > 99.0,
            "an always-taken loop branch must be learned: {}",
            r.counters.branch_accuracy()
        );
        // The uBTB redirects at stage 1: near-zero override bubbles in
        // steady state relative to branch count.
        assert!(r.counters.ipc() > 3.0, "IPC {}", r.counters.ipc());
    }

    #[test]
    fn mispredict_penalty_shows_up_in_cycles() {
        // An alternating branch under a 1-bit-unfriendly pattern... use a
        // pseudo-random branch: accuracy ~50% forces heavy penalties.
        struct CoinProg {
            i: u64,
            rng: cobra_sim::SplitMix64,
        }
        impl InstructionStream for CoinProg {
            fn entry_pc(&self) -> u64 {
                0x1000
            }
            fn next_inst(&mut self) -> Option<DynInst> {
                let slot = self.i % 8;
                self.i += 1;
                let pc = 0x1000 + slot * 2;
                Some(if slot == 7 {
                    let taken = self.rng.chance(0.5);
                    DynInst {
                        pc,
                        op: Op::Cfi,
                        cfi: Some(CfiOutcome {
                            kind: BranchKind::Conditional,
                            taken,
                            // Taken target = same fall-through block start:
                            // keeps the instruction stream identical while
                            // the *direction* stays unpredictable.
                            target: 0x1010,
                            sfb: false,
                        }),
                        dep: 0,
                    }
                } else if slot == 0 && self.i > 8 {
                    DynInst::int(0x1010)
                } else {
                    DynInst::int(pc)
                })
            }
            fn inst_at(&self, _pc: u64) -> StaticInst {
                StaticInst::filler()
            }
        }
        // This program is intentionally irregular; just assert the machine
        // makes progress and counts mispredicts.
        let mut core = Core::new(
            &designs::b2(),
            CoreConfig::boom_4wide(),
            CoinProg {
                i: 0,
                rng: cobra_sim::SplitMix64::new(5),
            },
        );
        // The stream's PCs are not self-consistent (slot 0 moves), so the
        // core may discard drifted packets; it must still terminate.
        if let Ok(core) = core.as_mut() {
            let r = core.run(5_000, "coin");
            assert!(r.counters.committed_insts > 0);
        }
    }

    #[test]
    fn icache_misses_stall_fetch() {
        // Jump between far-apart code blocks larger than the L1I.
        struct BigCode {
            i: u64,
        }
        impl InstructionStream for BigCode {
            fn entry_pc(&self) -> u64 {
                0x1_0000
            }
            fn next_inst(&mut self) -> Option<DynInst> {
                let block = (self.i / 8) % 1024; // 1024 blocks x 64 B stride
                let slot = self.i % 8;
                self.i += 1;
                let pc = 0x1_0000 + block * 4096 + slot * 2;
                Some(if slot == 7 {
                    let next = 0x1_0000 + (((self.i / 8) % 1024) * 4096);
                    DynInst {
                        pc,
                        op: Op::Cfi,
                        cfi: Some(CfiOutcome {
                            kind: BranchKind::Jump,
                            taken: true,
                            target: next,
                            sfb: false,
                        }),
                        dep: 0,
                    }
                } else {
                    DynInst::int(pc)
                })
            }
            fn inst_at(&self, pc: u64) -> StaticInst {
                if (pc - 0x1_0000) % 4096 == 14 {
                    StaticInst {
                        op: Op::Cfi,
                        cfi_kind: Some(BranchKind::Jump),
                        target: None,
                    }
                } else {
                    StaticInst::filler()
                }
            }
        }
        let mut core = Core::new(&designs::b2(), CoreConfig::boom_4wide(), BigCode { i: 0 })
            .expect("composes");
        let r = core.run(30_000, "bigcode");
        assert!(
            r.counters.icache_stall_cycles > 100,
            "4 MB of code must miss a 32 KB L1I: {} stall cycles",
            r.counters.icache_stall_cycles
        );
    }
}

#[cfg(test)]
mod frontend_tests {
    use super::*;
    use crate::program::{CfiOutcome, DynInst, Op, StaticInst};
    use cobra_core::designs;

    /// A hot always-taken loop whose branch redirects every iteration.
    struct TightLoop {
        i: u64,
        body: u64,
    }
    impl InstructionStream for TightLoop {
        fn entry_pc(&self) -> u64 {
            0x2000
        }
        fn next_inst(&mut self) -> Option<DynInst> {
            let slot = self.i % self.body;
            self.i += 1;
            let pc = 0x2000 + slot * 2;
            Some(if slot == self.body - 1 {
                DynInst {
                    pc,
                    op: Op::Cfi,
                    cfi: Some(CfiOutcome {
                        kind: BranchKind::Conditional,
                        taken: true,
                        target: 0x2000,
                        sfb: false,
                    }),
                    dep: 0,
                }
            } else {
                DynInst::int(pc)
            })
        }
        fn inst_at(&self, pc: u64) -> StaticInst {
            if pc == 0x2000 + (self.body - 1) * 2 {
                StaticInst {
                    op: Op::Cfi,
                    cfi_kind: Some(BranchKind::Conditional),
                    target: Some(0x2000),
                }
            } else {
                StaticInst::filler()
            }
        }
    }

    #[test]
    fn ubtb_cuts_override_redirects_on_hot_taken_branches() {
        // TAGE-L's 1-cycle uBTB steers taken branches at Fetch-1 with no
        // squash; B2's earliest taken redirect is the 2-cycle BTB, which
        // overrides the fall-through guess every iteration.
        let run = |design| {
            let mut core = Core::new(
                &design,
                CoreConfig::boom_4wide(),
                TightLoop { i: 0, body: 12 },
            )
            .expect("composes");
            let r = core.run(30_000, "tightloop");
            (r.counters.override_redirects, r.counters.cond_branches)
        };
        let (ubtb_overrides, branches) = run(designs::tage_l());
        let (b2_overrides, _) = run(designs::b2());
        assert!(branches > 1000);
        assert!(
            ubtb_overrides * 3 < b2_overrides,
            "uBTB steering must eliminate most override bubbles: {ubtb_overrides} vs {b2_overrides}"
        );
    }

    #[test]
    fn taken_loop_throughput_reflects_redirect_cost() {
        // A 6-instruction loop body: with the uBTB the loop sustains
        // decode-width IPC; without it every iteration pays an override
        // bubble that the fetch buffer cannot hide.
        let ipc = |design| {
            let mut core = Core::new(
                &design,
                CoreConfig::boom_4wide(),
                TightLoop { i: 0, body: 6 },
            )
            .expect("composes");
            core.run(30_000, "tightloop").counters.ipc()
        };
        let with_ubtb = ipc(designs::tage_l());
        let without = ipc(designs::b2());
        assert!(
            with_ubtb > without,
            "uBTB steering must win on a tight taken loop: {with_ubtb} vs {without}"
        );
    }
}
