//! The COBRA Binary Snapshot (CBS) format — warm-state checkpoints of a
//! composed pipeline plus its host core.
//!
//! A `.cbs` file is a versioned, self-contained serialization of a
//! [`Core`] at an instruction boundary: every predictor sub-component's
//! tables, the history file with its in-flight packets, the speculative
//! history providers, the RAS, the cache hierarchy, and the workload
//! cursor. Restoring it into a freshly-built core of the same design,
//! configuration, and workload puts the machine in *exactly* the state
//! the straight-through run had at that boundary, so a
//! warmup-once/measure-many grid run produces a
//! [`PerfReport`](crate::PerfReport) byte-identical to the run that never
//! checkpointed.
//!
//! The file is identity-checked before any state is decoded: the header
//! names the design, topology, configuration hash, workload, and warmup
//! boundary, and [`restore_checkpoint`] refuses a file whose identity
//! does not match the core it is asked to fill. The normative
//! specification, including a worked hex example, is in
//! [`docs/CHECKPOINT_FORMAT.md`] at the repository root; this module is
//! the reference implementation.
//!
//! [`docs/CHECKPOINT_FORMAT.md`]: https://github.com/cobra-bp/cobra-rs/blob/main/docs/CHECKPOINT_FORMAT.md
//!
//! Fixed-width integers are little-endian; variable-length values use
//! LEB128 ([`cobra_sim::varint`]). The header and the state payload are
//! independently protected by CRC-32C, and every declared length is
//! checked against a hard cap before allocation, mirroring the `.cbt`
//! trace container's hostile-input discipline.

use crate::core::Core;
use crate::program::InstructionStream;
use crate::CoreConfig;
use cobra_core::composer::Design;
use cobra_sim::{varint, SnapError, StateReader, StateWriter};
use std::fmt;
use std::io::{Read, Write};

/// File magic, the first 8 bytes of every `.cbs` file.
pub const MAGIC: [u8; 8] = *b"COBRACBS";
/// Trailing footer magic, the last 4 bytes of every `.cbs` file.
pub const FOOTER_MAGIC: [u8; 4] = *b"CBSX";
/// The (only) format version this implementation reads and writes.
pub const VERSION: u16 = 1;
/// Reader guard: maximum accepted state-payload size.
pub const MAX_PAYLOAD_BYTES: u64 = 1 << 26;
/// Reader guard: maximum accepted length for any header string.
pub const MAX_NAME_BYTES: u64 = 4096;

/// Everything that can go wrong reading or writing a `.cbs` file. Decode
/// errors are precise: they name the structure or identity field at
/// fault, so a stale or corrupted checkpoint is diagnosable — and is
/// never silently restored into the wrong experiment.
#[derive(Debug)]
pub enum CbsError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file does not end with [`FOOTER_MAGIC`].
    BadFooterMagic,
    /// The file's version is not supported by this implementation.
    UnsupportedVersion(u16),
    /// The header flags word has bits this implementation does not know.
    UnsupportedFlags(u16),
    /// The file ended while reading the named structure.
    Truncated {
        /// Which structure was being read.
        what: &'static str,
    },
    /// A declared size exceeds the format's hard limits — either corrupt
    /// or hostile; never allocated.
    LimitExceeded {
        /// Which declared quantity is over limit.
        what: &'static str,
        /// The declared value.
        got: u64,
        /// The maximum this reader accepts.
        max: u64,
    },
    /// The header CRC-32C does not match the header bytes.
    HeaderChecksum {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// The state payload's CRC-32C does not match its bytes.
    PayloadChecksum {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// A varint field is truncated or over-long.
    BadVarint {
        /// Which structure was being read.
        what: &'static str,
    },
    /// A header string is not valid UTF-8.
    BadName,
    /// Bytes remain after the footer magic.
    TrailingBytes {
        /// How many bytes follow the footer.
        count: u64,
    },
    /// The checkpoint was captured under a different design name.
    DesignMismatch {
        /// Design name stored in the file.
        stored: String,
        /// Design name of the core being restored.
        expected: String,
    },
    /// The checkpoint was captured under a different topology string.
    TopologyMismatch {
        /// Topology stored in the file.
        stored: String,
        /// Topology of the core being restored.
        expected: String,
    },
    /// The checkpoint was captured under a different core/predictor
    /// configuration (see [`config_hash`]).
    ConfigHashMismatch {
        /// Configuration hash stored in the file.
        stored: u64,
        /// Configuration hash of the core being restored.
        expected: u64,
    },
    /// The checkpoint was captured running a different workload.
    WorkloadMismatch {
        /// Workload name stored in the file.
        stored: String,
        /// Workload of the run being restored.
        expected: String,
    },
    /// The checkpoint was captured at a different warmup boundary.
    WarmupMismatch {
        /// Warmup instruction count stored in the file.
        stored: u64,
        /// Warmup instruction count the restoring run expects.
        expected: u64,
    },
    /// The state payload failed to decode into the core.
    State(SnapError),
}

impl fmt::Display for CbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic => write!(f, "not a CBS file (bad magic; expected `COBRACBS`)"),
            Self::BadFooterMagic => {
                write!(f, "bad footer magic (file truncated or not finalized)")
            }
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported CBS version {v} (this reader supports {VERSION})"
                )
            }
            Self::UnsupportedFlags(bits) => {
                write!(
                    f,
                    "unsupported header flags {bits:#06x} (reserved bits set)"
                )
            }
            Self::Truncated { what } => write!(f, "file truncated while reading {what}"),
            Self::LimitExceeded { what, got, max } => {
                write!(f, "{what} = {got} exceeds the format limit of {max}")
            }
            Self::HeaderChecksum { stored, computed } => write!(
                f,
                "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::PayloadChecksum { stored, computed } => write!(
                f,
                "state-payload checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::BadVarint { what } => write!(f, "truncated or over-long varint in {what}"),
            Self::BadName => write!(f, "header string is not valid UTF-8"),
            Self::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the footer magic")
            }
            Self::DesignMismatch { stored, expected } => {
                write!(f, "checkpoint is for design `{stored}`, not `{expected}`")
            }
            Self::TopologyMismatch { stored, expected } => {
                write!(f, "checkpoint is for topology `{stored}`, not `{expected}`")
            }
            Self::ConfigHashMismatch { stored, expected } => write!(
                f,
                "checkpoint configuration hash {stored:#018x} does not match {expected:#018x}"
            ),
            Self::WorkloadMismatch { stored, expected } => {
                write!(f, "checkpoint is for workload `{stored}`, not `{expected}`")
            }
            Self::WarmupMismatch { stored, expected } => write!(
                f,
                "checkpoint was taken at {stored} warmup instructions, not {expected}"
            ),
            Self::State(e) => write!(f, "state payload: {e}"),
        }
    }
}

impl std::error::Error for CbsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CbsError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<SnapError> for CbsError {
    fn from(e: SnapError) -> Self {
        Self::State(e)
    }
}

/// The identity a checkpoint is bound to: which design, configuration,
/// and workload produced it, and at what warmup boundary.
///
/// [`restore_checkpoint`] compares every field against the file header
/// and refuses on any mismatch — a checkpoint can only ever shortcut the
/// exact run that would have produced the same warm state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbsMeta {
    /// Design name (e.g. `"TAGE-L"`).
    pub design: String,
    /// Topology string in the paper's notation.
    pub topology: String,
    /// FNV-1a hash over the full design + core configuration (see
    /// [`config_hash`]).
    pub config_hash: u64,
    /// Workload name the checkpoint was captured running.
    pub workload: String,
    /// Instruction count at which the checkpoint was taken (the warmup
    /// boundary).
    pub warmup_insts: u64,
}

impl CbsMeta {
    /// Builds the identity record for a run of `design` under `cfg` on
    /// `workload`, checkpointed at `warmup_insts`.
    pub fn for_run(design: &Design, cfg: &CoreConfig, workload: &str, warmup_insts: u64) -> Self {
        Self {
            design: design.name.clone(),
            topology: design.topology.clone(),
            config_hash: config_hash(design, cfg),
            workload: workload.to_string(),
            warmup_insts,
        }
    }
}

/// FNV-1a 64-bit hash over everything that shapes simulated state: the
/// design's name, topology, and history-provider parameters, and the
/// full core configuration (caches, widths, latencies, predictor
/// management knobs) via their `Debug` renderings.
///
/// Any configuration change — even one that does not alter table
/// geometry — changes the hash, so a stale checkpoint is rejected
/// instead of silently skewing results.
pub fn config_hash(design: &Design, cfg: &CoreConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Field separator, so concatenations cannot collide.
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    eat(design.name.as_bytes());
    eat(design.topology.as_bytes());
    eat(&design.ghist_bits.to_le_bytes());
    eat(&design.lhist_entries.to_le_bytes());
    eat(format!("{cfg:?}").as_bytes());
    h
}

/// Serializes `core` (full predictor + host-core state) into `w` as a
/// `.cbs` file bound to `meta`, and returns the bytes written.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn save_checkpoint<W: Write, S: InstructionStream>(
    mut w: W,
    meta: &CbsMeta,
    core: &Core<S>,
) -> Result<u64, CbsError> {
    let mut header = Vec::with_capacity(64);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes()); // flags
    write_str(&mut header, &meta.design);
    write_str(&mut header, &meta.topology);
    header.extend_from_slice(&meta.config_hash.to_le_bytes());
    write_str(&mut header, &meta.workload);
    varint::write_u64(&mut header, meta.warmup_insts);
    let header_crc = cobra_sim::crc32c(&header);

    let mut sw = StateWriter::new();
    core.save_state(&mut sw);
    let payload = sw.finish();
    let payload_len = payload.len() as u32;
    let mut crc = cobra_sim::Crc32c::new();
    crc.update(&payload_len.to_le_bytes());
    crc.update(&payload);
    let payload_crc = crc.finish();

    w.write_all(&header)?;
    w.write_all(&header_crc.to_le_bytes())?;
    w.write_all(&payload_len.to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&payload_crc.to_le_bytes())?;
    w.write_all(&FOOTER_MAGIC)?;
    w.flush()?;
    Ok(header.len() as u64 + 4 + 4 + u64::from(payload_len) + 4 + 4)
}

/// Parses and checksums a `.cbs` header, returning the identity record
/// without touching the state payload — what `cobra-checkpoint --list`
/// shows.
///
/// # Errors
///
/// Any [`CbsError`] describing the first malformed header structure.
pub fn read_meta<R: Read>(mut r: R) -> Result<CbsMeta, CbsError> {
    read_header(&mut r)
}

/// Restores a `.cbs` file into `core`, which must be freshly built from
/// the same design, configuration, and workload the checkpoint names.
/// The whole file is validated — header and payload checksums, identity
/// fields against `expected`, exact payload shape, no trailing bytes —
/// before returning.
///
/// On success the core stands exactly where the capturing run stood at
/// `expected.warmup_insts` committed instructions; calling
/// [`Core::run_with_warmup`] then reproduces the straight-through run's
/// measurement byte-for-byte (the warmup loop is a no-op because the
/// restored core has already committed past the boundary).
///
/// # Errors
///
/// Any [`CbsError`]. If the error is [`CbsError::State`], the core may
/// be partially overwritten and must be discarded; identity and checksum
/// errors are detected before any state is written.
pub fn restore_checkpoint<R: Read, S: InstructionStream>(
    r: R,
    expected: &CbsMeta,
    core: &mut Core<S>,
) -> Result<(), CbsError> {
    restore_inner(r, expected, core, false).map(|_| ())
}

/// Like [`restore_checkpoint`], but accepts a checkpoint captured at an
/// *earlier* warmup boundary than `expected.warmup_insts` (same design,
/// configuration, and workload) and returns the boundary the file was
/// actually taken at. The caller resumes simulation from that boundary —
/// because the machine is deterministic, running the remaining
/// `expected.warmup_insts - stored` instructions lands in exactly the
/// state a straight-through run would have reached.
///
/// This is the tier-2 path of the `cobra-serve` warm cache: a job at a
/// larger instruction bound reuses the warm state of a smaller one and
/// simulates only the remainder.
///
/// # Errors
///
/// Any [`CbsError`]; [`CbsError::WarmupMismatch`] when the stored
/// boundary is *beyond* `expected.warmup_insts` (the overshoot cannot be
/// unwound).
pub fn restore_checkpoint_resume<R: Read, S: InstructionStream>(
    r: R,
    expected: &CbsMeta,
    core: &mut Core<S>,
) -> Result<u64, CbsError> {
    restore_inner(r, expected, core, true)
}

/// Scans `dir` for the `.cbs` file that best shortcuts a run expecting
/// `expected`: identical design, topology, configuration hash, and
/// workload, captured at the largest warmup boundary not beyond
/// `expected.warmup_insts`. Files that fail to open or parse are
/// skipped, not fatal — a cache directory may hold foreign or damaged
/// entries. Returns the path and its header, or `None`.
pub fn best_resume_checkpoint(
    dir: &std::path::Path,
    expected: &CbsMeta,
) -> Option<(std::path::PathBuf, CbsMeta)> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cbs"))
        .collect();
    // Deterministic scan order, so ties resolve the same way every run.
    paths.sort();
    let mut best: Option<(std::path::PathBuf, CbsMeta)> = None;
    for path in paths {
        let Ok(f) = std::fs::File::open(&path) else {
            continue;
        };
        let Ok(meta) = read_meta(std::io::BufReader::new(f)) else {
            continue;
        };
        if meta.design != expected.design
            || meta.topology != expected.topology
            || meta.config_hash != expected.config_hash
            || meta.workload != expected.workload
            || meta.warmup_insts > expected.warmup_insts
        {
            continue;
        }
        if best
            .as_ref()
            .is_none_or(|(_, b)| meta.warmup_insts > b.warmup_insts)
        {
            best = Some((path, meta));
        }
    }
    best
}

fn restore_inner<R: Read, S: InstructionStream>(
    mut r: R,
    expected: &CbsMeta,
    core: &mut Core<S>,
    allow_earlier_warmup: bool,
) -> Result<u64, CbsError> {
    let meta = read_header(&mut r)?;
    if meta.design != expected.design {
        return Err(CbsError::DesignMismatch {
            stored: meta.design,
            expected: expected.design.clone(),
        });
    }
    if meta.topology != expected.topology {
        return Err(CbsError::TopologyMismatch {
            stored: meta.topology,
            expected: expected.topology.clone(),
        });
    }
    if meta.config_hash != expected.config_hash {
        return Err(CbsError::ConfigHashMismatch {
            stored: meta.config_hash,
            expected: expected.config_hash,
        });
    }
    if meta.workload != expected.workload {
        return Err(CbsError::WorkloadMismatch {
            stored: meta.workload,
            expected: expected.workload.clone(),
        });
    }
    let boundary_ok = if allow_earlier_warmup {
        meta.warmup_insts <= expected.warmup_insts
    } else {
        meta.warmup_insts == expected.warmup_insts
    };
    if !boundary_ok {
        return Err(CbsError::WarmupMismatch {
            stored: meta.warmup_insts,
            expected: expected.warmup_insts,
        });
    }

    let payload_len = u64::from(read_u32(&mut r, "payload length")?);
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(CbsError::LimitExceeded {
            what: "state-payload length",
            got: payload_len,
            max: MAX_PAYLOAD_BYTES,
        });
    }
    let mut payload = vec![0u8; payload_len as usize];
    read_exact(&mut r, &mut payload, "state payload")?;
    let stored = read_u32(&mut r, "payload checksum")?;
    let mut crc = cobra_sim::Crc32c::new();
    crc.update(&(payload_len as u32).to_le_bytes());
    crc.update(&payload);
    let computed = crc.finish();
    if stored != computed {
        return Err(CbsError::PayloadChecksum { stored, computed });
    }
    let mut footer = [0u8; 4];
    read_exact(&mut r, &mut footer, "footer magic")?;
    if footer != FOOTER_MAGIC {
        return Err(CbsError::BadFooterMagic);
    }
    let mut rest = [0u8; 64];
    let mut trailing = 0u64;
    loop {
        let n = r.read(&mut rest)?;
        if n == 0 {
            break;
        }
        trailing += n as u64;
    }
    if trailing != 0 {
        return Err(CbsError::TrailingBytes { count: trailing });
    }

    let mut sr = StateReader::new(&payload);
    core.load_state(&mut sr)?;
    sr.finish()?;
    Ok(meta.warmup_insts)
}

/// Reads and checksums the header, returning the identity record.
fn read_header<R: Read>(r: &mut R) -> Result<CbsMeta, CbsError> {
    let mut fixed = [0u8; 12];
    read_exact(r, &mut fixed, "header")?;
    if fixed[..8] != MAGIC {
        return Err(CbsError::BadMagic);
    }
    let version = u16::from_le_bytes([fixed[8], fixed[9]]);
    if version != VERSION {
        return Err(CbsError::UnsupportedVersion(version));
    }
    let flags = u16::from_le_bytes([fixed[10], fixed[11]]);
    if flags != 0 {
        return Err(CbsError::UnsupportedFlags(flags));
    }
    let mut raw = fixed.to_vec();
    let design = read_str(r, &mut raw, "header design name")?;
    let topology = read_str(r, &mut raw, "header topology")?;
    let mut hash_bytes = [0u8; 8];
    read_exact(r, &mut hash_bytes, "header config hash")?;
    raw.extend_from_slice(&hash_bytes);
    let config_hash = u64::from_le_bytes(hash_bytes);
    let workload = read_str(r, &mut raw, "header workload name")?;
    let warmup_insts = read_varint_stream(r, &mut raw, "header warmup boundary")?;
    let stored = read_u32(r, "header checksum")?;
    let computed = cobra_sim::crc32c(&raw);
    if stored != computed {
        return Err(CbsError::HeaderChecksum { stored, computed });
    }
    Ok(CbsMeta {
        design,
        topology,
        config_hash,
        workload,
        warmup_insts,
    })
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    varint::write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str<R: Read>(r: &mut R, raw: &mut Vec<u8>, what: &'static str) -> Result<String, CbsError> {
    let len = read_varint_stream(r, raw, what)?;
    if len > MAX_NAME_BYTES {
        return Err(CbsError::LimitExceeded {
            what,
            got: len,
            max: MAX_NAME_BYTES,
        });
    }
    let mut buf = vec![0u8; len as usize];
    read_exact(r, &mut buf, what)?;
    raw.extend_from_slice(&buf);
    String::from_utf8(buf).map_err(|_| CbsError::BadName)
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], what: &'static str) -> Result<(), CbsError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CbsError::Truncated { what }
        } else {
            CbsError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R, what: &'static str) -> Result<u32, CbsError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

/// Reads a varint byte-by-byte from a stream, appending the raw bytes to
/// `raw` (for checksumming).
fn read_varint_stream<R: Read>(
    r: &mut R,
    raw: &mut Vec<u8>,
    what: &'static str,
) -> Result<u64, CbsError> {
    let start = raw.len();
    for _ in 0..varint::MAX_VARINT_LEN {
        let mut b = [0u8; 1];
        read_exact(r, &mut b, what)?;
        raw.push(b[0]);
        if b[0] & 0x80 == 0 {
            let mut pos = 0;
            return varint::read_u64(&raw[start..], &mut pos).ok_or(CbsError::BadVarint { what });
        }
    }
    Err(CbsError::BadVarint { what })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CfiOutcome, DynInst, IterStream, Op, StaticInst};
    use crate::CoreConfig;
    use cobra_core::{designs, BranchKind};

    /// A deterministic branchy loop: 15 straight-line parcels, a
    /// data-dependent conditional (taken 3 of every 4 trips), and a
    /// backwards jump.
    fn branchy(n: u64) -> IterStream<impl Iterator<Item = DynInst>> {
        IterStream::new(
            0x1000,
            (0..n).map(|i| {
                let slot = i % 16;
                let pc = 0x1000 + slot * 2;
                match slot {
                    7 => DynInst {
                        pc,
                        op: Op::Load {
                            addr: 0x10_0000 + (i / 16) % 4096 * 64,
                        },
                        cfi: None,
                        dep: 0,
                    },
                    11 => DynInst {
                        pc,
                        op: Op::Cfi,
                        cfi: Some(CfiOutcome {
                            kind: BranchKind::Conditional,
                            taken: (i / 16) % 4 != 3,
                            target: 0x1000 + 13 * 2,
                            sfb: false,
                        }),
                        dep: 1,
                    },
                    15 => DynInst {
                        pc,
                        op: Op::Cfi,
                        cfi: Some(CfiOutcome {
                            kind: BranchKind::Jump,
                            taken: true,
                            target: 0x1000,
                            sfb: false,
                        }),
                        dep: 0,
                    },
                    _ => DynInst::int(pc),
                }
            }),
        )
    }

    fn fresh_core(cfg: CoreConfig) -> Core<IterStream<impl Iterator<Item = DynInst>>> {
        Core::new(&designs::b2(), cfg, branchy(200_000)).expect("composes")
    }

    fn meta(cfg: &CoreConfig, warmup: u64) -> CbsMeta {
        CbsMeta::for_run(&designs::b2(), cfg, "branchy", warmup)
    }

    fn capture(cfg: CoreConfig, warmup: u64) -> Vec<u8> {
        let mut core = fresh_core(cfg);
        core.run(warmup, "branchy");
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &meta(&cfg, warmup), &core).unwrap();
        buf
    }

    /// A Table II shape with toy caches, so the exhaustive per-byte
    /// hostile-input sweeps stay fast (the serialized hierarchy is the
    /// bulk of a real checkpoint).
    fn tiny_cfg() -> CoreConfig {
        let base = CoreConfig::boom_4wide();
        let shrink = |mut c: crate::CacheConfig| {
            c.size_bytes = c.ways * c.line_bytes * 4; // four sets
            c
        };
        CoreConfig {
            l1i: shrink(base.l1i),
            l1d: shrink(base.l1d),
            l2: shrink(base.l2),
            l3: shrink(base.l3),
            ..base
        }
    }

    #[test]
    fn restored_run_is_byte_identical() {
        const WARMUP: u64 = 8_000;
        const MEASURE: u64 = 20_000;
        let cfg = CoreConfig::boom_4wide();
        // Straight-through run.
        let mut direct = fresh_core(cfg);
        let baseline = direct.run_with_warmup(WARMUP, MEASURE, "branchy");
        // Checkpointed run: warm up, snapshot, restore into a fresh core,
        // then measure.
        let bytes = capture(cfg, WARMUP);
        let mut restored = fresh_core(cfg);
        restore_checkpoint(&bytes[..], &meta(&cfg, WARMUP), &mut restored).unwrap();
        let replayed = restored.run_with_warmup(WARMUP, MEASURE, "branchy");
        assert_eq!(baseline, replayed);
    }

    #[test]
    fn resume_from_earlier_boundary_is_byte_identical() {
        const WARMUP: u64 = 2_000;
        const MEASURE: u64 = 5_000;
        let cfg = tiny_cfg();
        let mut direct = fresh_core(cfg);
        let baseline = direct.run_with_warmup(WARMUP, MEASURE, "branchy");
        // Restore a checkpoint taken at half the warmup boundary, run the
        // remaining warmup, then measure: determinism makes the report
        // byte-identical to the straight-through run.
        let bytes = capture(cfg, 1_000);
        let expected = meta(&cfg, WARMUP);
        let mut resumed = fresh_core(cfg);
        let stored = restore_checkpoint_resume(&bytes[..], &expected, &mut resumed).unwrap();
        assert_eq!(stored, 1_000);
        resumed.run(WARMUP, "branchy");
        let replayed = resumed.run_with_warmup(WARMUP, MEASURE, "branchy");
        assert_eq!(baseline, replayed);
        // An equal boundary is accepted; an overshoot is not.
        let exact = capture(cfg, WARMUP);
        let mut core = fresh_core(cfg);
        assert_eq!(
            restore_checkpoint_resume(&exact[..], &expected, &mut core).unwrap(),
            WARMUP
        );
        let over = capture(cfg, 3_000);
        let mut core = fresh_core(cfg);
        assert!(matches!(
            restore_checkpoint_resume(&over[..], &expected, &mut core),
            Err(CbsError::WarmupMismatch { .. })
        ));
    }

    #[test]
    fn best_resume_checkpoint_picks_latest_eligible() {
        let cfg = tiny_cfg();
        let dir = std::env::temp_dir().join(format!("cobra-cbs-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for warmup in [500u64, 1_500, 3_000] {
            let bytes = capture(cfg, warmup);
            std::fs::write(dir.join(format!("w{warmup}.cbs")), bytes).unwrap();
        }
        // A foreign-identity file and a damaged file must both be skipped.
        let mut other = meta(&cfg, 1_500);
        other.workload = "other".into();
        let mut core = fresh_core(cfg);
        core.run(1_500, "other");
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &other, &core).unwrap();
        std::fs::write(dir.join("foreign.cbs"), buf).unwrap();
        std::fs::write(dir.join("damaged.cbs"), b"COBRACBS junk").unwrap();

        // Boundary 2_000: the 1_500 capture is the best shortcut (3_000
        // overshoots, 500 is dominated).
        let (path, m) = best_resume_checkpoint(&dir, &meta(&cfg, 2_000)).unwrap();
        assert_eq!(m.warmup_insts, 1_500);
        assert!(path.ends_with("w1500.cbs"));
        // Boundary 3_000: the exact capture wins.
        let (_, m) = best_resume_checkpoint(&dir, &meta(&cfg, 3_000)).unwrap();
        assert_eq!(m.warmup_insts, 3_000);
        // Nothing at or below 400.
        assert!(best_resume_checkpoint(&dir, &meta(&cfg, 400)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_round_trips() {
        let cfg = tiny_cfg();
        let bytes = capture(cfg, 2_000);
        let m = read_meta(&bytes[..]).unwrap();
        assert_eq!(m, meta(&cfg, 2_000));
    }

    #[test]
    fn identity_mismatches_are_precise() {
        let cfg = tiny_cfg();
        let bytes = capture(cfg, 2_000);
        let mut core = fresh_core(cfg);
        let mut m = meta(&cfg, 2_000);
        m.design = "TAGE-L".into();
        assert!(matches!(
            restore_checkpoint(&bytes[..], &m, &mut core),
            Err(CbsError::DesignMismatch { .. })
        ));
        let mut m = meta(&cfg, 2_000);
        m.topology = "BIM2".into();
        assert!(matches!(
            restore_checkpoint(&bytes[..], &m, &mut core),
            Err(CbsError::TopologyMismatch { .. })
        ));
        let mut m = meta(&cfg, 2_000);
        m.config_hash ^= 1;
        assert!(matches!(
            restore_checkpoint(&bytes[..], &m, &mut core),
            Err(CbsError::ConfigHashMismatch { .. })
        ));
        let mut m = meta(&cfg, 2_000);
        m.workload = "other".into();
        assert!(matches!(
            restore_checkpoint(&bytes[..], &m, &mut core),
            Err(CbsError::WorkloadMismatch { .. })
        ));
        let mut m = meta(&cfg, 2_000);
        m.warmup_insts += 1;
        assert!(matches!(
            restore_checkpoint(&bytes[..], &m, &mut core),
            Err(CbsError::WarmupMismatch { .. })
        ));
    }

    #[test]
    fn config_hash_sees_every_knob() {
        let base = config_hash(&designs::b2(), &CoreConfig::boom_4wide());
        let mut cfg = CoreConfig::boom_4wide();
        cfg.dram_latency += 1;
        assert_ne!(base, config_hash(&designs::b2(), &cfg));
        assert_ne!(
            base,
            config_hash(&designs::tage_l(), &CoreConfig::boom_4wide())
        );
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let cfg = tiny_cfg();
        let bytes = capture(cfg, 1_000);
        let expected = meta(&cfg, 1_000);
        // The scratch core may be partially written by a failed restore;
        // detection never depends on its contents, so one core serves
        // every cut.
        let mut core = fresh_core(cfg);
        for cut in 0..bytes.len() {
            assert!(
                restore_checkpoint(&bytes[..cut], &expected, &mut core).is_err(),
                "truncation at {cut}/{} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let cfg = tiny_cfg();
        let bytes = capture(cfg, 1_000);
        let expected = meta(&cfg, 1_000);
        let mut core = fresh_core(cfg);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << (i % 8);
            assert!(
                restore_checkpoint(&bad[..], &expected, &mut core).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let cfg = tiny_cfg();
        let mut bytes = capture(cfg, 1_000);
        bytes.push(0);
        let mut core = fresh_core(cfg);
        assert!(matches!(
            restore_checkpoint(&bytes[..], &meta(&cfg, 1_000), &mut core),
            Err(CbsError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn error_messages_are_precise() {
        let e = CbsError::DesignMismatch {
            stored: "B2".into(),
            expected: "TAGE-L".into(),
        };
        let s = e.to_string();
        assert!(s.contains("B2") && s.contains("TAGE-L"), "{s}");
        assert!(CbsError::BadMagic.to_string().contains("COBRACBS"));
    }

    #[test]
    fn static_lookup_still_available_after_restore() {
        // Regression guard: restore must not disturb the stream's static
        // decode (wrong-path fetch consults it after the boundary).
        let s = branchy(10);
        assert_eq!(s.inst_at(0x9999), StaticInst::filler());
    }
}
