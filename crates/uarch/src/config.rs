//! Host-core configuration (the paper's Table II).

use cobra_core::composer::{BpuConfig, GhistRepairMode};

/// Cache geometry and timing for one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Full core configuration. [`CoreConfig::boom_4wide`] reproduces Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Fetch-block size in bytes (16-byte wide fetch).
    pub fetch_bytes: u64,
    /// Decode/rename width (instructions per cycle into the ROB).
    pub decode_width: u8,
    /// Commit width (instructions retired per cycle).
    pub commit_width: u8,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Fetch-buffer capacity in instructions.
    pub fetch_buffer_insts: usize,
    /// Integer ALU issue ports.
    pub alu_ports: u8,
    /// Memory issue ports.
    pub mem_ports: u8,
    /// Floating-point issue ports.
    pub fp_ports: u8,
    /// Issue-window instructions examined per cycle (IQ size effect).
    pub issue_window: usize,
    /// Cycles from issue to branch resolution (execute pipeline depth).
    pub branch_resolve_latency: u64,
    /// Return-address-stack entries.
    pub ras_entries: usize,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// L3 / LLC (FASED model in the paper).
    pub l3: CacheConfig,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Next-line prefetch into L1I.
    pub nlp_prefetch: bool,
    /// Predictor management configuration.
    pub bpu: BpuConfig,
    /// Serialize fetch behind branch predictions: at most one branch
    /// prediction is consumed per cycle (the Section I experiment that
    /// costs 15 % IPC on Dhrystone).
    pub serialize_branches: bool,
    /// Stall fetch while the repair state machine walks the history file.
    pub repair_stalls_fetch: bool,
}

impl CoreConfig {
    /// The evaluated BOOM configuration (Table II): 16-byte fetch, 4-wide
    /// decode/commit, 128-entry ROB, 8 execution pipelines, 32 KB L1s,
    /// 512 KB L2, 4 MB L3.
    pub fn boom_4wide() -> Self {
        Self {
            fetch_bytes: 16,
            decode_width: 4,
            commit_width: 4,
            rob_entries: 128,
            fetch_buffer_insts: 32,
            alu_ports: 4,
            mem_ports: 2,
            fp_ports: 2,
            issue_window: 32,
            branch_resolve_latency: 6,
            ras_entries: 16,
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                hit_latency: 0,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                hit_latency: 3,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 8,
                line_bytes: 64,
                hit_latency: 14,
            },
            l3: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                hit_latency: 35,
            },
            dram_latency: 110,
            nlp_prefetch: true,
            bpu: BpuConfig::default(),
            serialize_branches: false,
            repair_stalls_fetch: false,
        }
    }

    /// Fetch-packet width in 2-byte prediction slots.
    pub fn fetch_slots(&self) -> u8 {
        (self.fetch_bytes / cobra_core::SLOT_BYTES) as u8
    }

    /// Sets the global-history repair mode (Section VI-B sweep).
    pub fn with_repair_mode(mut self, mode: GhistRepairMode) -> Self {
        self.bpu.repair_mode = mode;
        self
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::boom_4wide()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameters() {
        let c = CoreConfig::boom_4wide();
        assert_eq!(c.fetch_bytes, 16);
        assert_eq!(c.fetch_slots(), 8);
        assert_eq!(c.decode_width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.alu_ports + c.mem_ports + c.fp_ports, 8);
        assert_eq!(c.l1i.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
    }

    #[test]
    fn cache_sets_math() {
        let c = CoreConfig::boom_4wide().l1d;
        assert_eq!(c.sets(), 32 * 1024 / (8 * 64));
    }

    #[test]
    fn repair_mode_builder() {
        let c = CoreConfig::boom_4wide().with_repair_mode(GhistRepairMode::SnapshotOnly);
        assert_eq!(c.bpu.repair_mode, GhistRepairMode::SnapshotOnly);
    }
}
