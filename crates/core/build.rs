//! Declares the `cobra_seeded_bug` cfg so `--cfg cobra_seeded_bug` (the CI
//! mutation-smoke leg that plants a deliberate lowering bug for the plan
//! verifier to catch) passes `check-cfg` on stock builds.

fn main() {
    println!("cargo::rustc-check-cfg=cfg(cobra_seeded_bug)");
}
