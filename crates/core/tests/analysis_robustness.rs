//! Fuzz-style robustness harness for the whole static-analysis stack.
//!
//! Property: a mutated/garbled topology string must always yield either a
//! successful build or structured (spanned) diagnostics — never a panic —
//! across parse, lint passes, pipeline lowering, and the plan-soundness
//! verifier. The generator is a hand-rolled deterministic xorshift PRNG
//! (the proptest dependency was removed in PR 1), so every failure is
//! reproducible from the printed seed.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cobra_core::analysis::{analyze_topology, verify_design_plan, AnalysisConfig};
use cobra_core::composer::Design;
use cobra_core::designs;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Bytes a mutation may splice in: topology syntax, plausible label
/// characters, and a little whitespace garbage.
const ALPHABET: &[u8] = b">[](), ABGILOPSTU0123579XZ\t";

/// Applies 1–4 random byte edits (replace / insert / delete) to `base`.
fn mutate(base: &str, rng: &mut Rng) -> String {
    let mut bytes = base.as_bytes().to_vec();
    for _ in 0..(1 + rng.below(4)) {
        match rng.below(3) {
            0 if !bytes.is_empty() => {
                let i = rng.below(bytes.len());
                bytes[i] = ALPHABET[rng.below(ALPHABET.len())];
            }
            1 => {
                let i = rng.below(bytes.len() + 1);
                bytes.insert(i, ALPHABET[rng.below(ALPHABET.len())]);
            }
            _ if !bytes.is_empty() => {
                let i = rng.below(bytes.len());
                bytes.remove(i);
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Drives every analysis layer over one topology string; panics bubble up
/// to the caller's `catch_unwind`.
fn exercise(topology: &str) {
    let registry = designs::stock_registry();
    // Lint passes (parse + elaboration + L1–L6).
    if let Ok(report) = analyze_topology(
        "fuzz",
        topology,
        &registry,
        32,
        256,
        &AnalysisConfig::default(),
    ) {
        for d in &report.diagnostics {
            // Renders must not slice out of bounds on mutated spans.
            let _ = d.render(topology);
            let _ = d.to_json();
        }
    }
    // Pipeline lowering + plan verifier.
    let design = Design {
        name: "fuzz".into(),
        topology: topology.into(),
        registry,
        ghist_bits: 32,
        lhist_entries: 256,
    };
    let _ = verify_design_plan(&design, 8);
}

#[test]
fn garbled_topologies_never_panic() {
    let seeds: Vec<String> = designs::catalog().into_iter().map(|d| d.topology).collect();
    let mut rng = Rng(0x0c0b_7a5e_ed15_5eed);
    let mut cases = 0u32;
    for round in 0..120 {
        for base in &seeds {
            let mutant = mutate(base, &mut rng);
            let result = catch_unwind(AssertUnwindSafe(|| exercise(&mutant)));
            assert!(
                result.is_ok(),
                "panicked on round {round} mutant of `{base}`: `{mutant}`"
            );
            cases += 1;
        }
    }
    assert!(cases > 500, "mutation loop under-ran: {cases} cases");
}

#[test]
fn degenerate_inputs_never_panic() {
    for t in [
        "",
        " ",
        ">",
        "[",
        "]",
        ",",
        "[,]",
        ">>>",
        "A > ",
        " > A",
        "SEL > []",
        "TAGE3 > TAGE3 > TAGE3",
        "X > [Y, Z",
        "\t\t>\t[",
        "BIM2]]]]",
    ] {
        let result = catch_unwind(AssertUnwindSafe(|| exercise(t)));
        assert!(result.is_ok(), "panicked on `{t}`");
    }
}

#[test]
fn valid_designs_still_verify_clean_end_to_end() {
    // The harness itself must not be trivially green: unmutated catalog
    // designs exercise the same path and must verify plan-sound.
    for d in designs::catalog() {
        let diags = verify_design_plan(&d, 8).unwrap();
        assert!(diags.is_empty(), "{}: {diags:?}", d.name);
    }
}
