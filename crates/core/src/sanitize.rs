//! The simulation sanitizer: cheap runtime invariant checks, off by
//! default.
//!
//! The static analyzer ([`crate::analysis`]) proves properties of a
//! *topology*; the sanitizer checks the properties that only hold (or
//! break) *dynamically* — per packet, per event — while a simulation runs:
//!
//! * **Monotonic refinement**: across pipeline stages, a composed
//!   prediction may only be refined, never degraded — once a stage
//!   resolves a slot's direction or target, later stages must carry a
//!   prediction for that slot too (checked in the pipeline's stage fold);
//! * **Metadata consistency**: every event broadcast (fire, mispredict,
//!   repair, update) must carry exactly one metadata word per component
//!   (checked in the event broadcast paths);
//! * **Protocol legality**: a fetch packet must not be accepted twice
//!   (checked in the unit's accept path).
//!
//! Enablement is resolved once, from either the `sanitize` cargo feature
//! or the `COBRA_SANITIZE` environment variable (`1`/`true`/`on`), and
//! cached in an atomic — with the sanitizer off, each hook site costs one
//! relaxed load and a branch, keeping the hot path intact. Tests flip it
//! deterministically with [`set_enabled`].
//!
//! A violation panics with a `cobra-sanitizer:` prefix, so a failure in a
//! long simulation is unambiguous about which layer detected it.

use std::sync::atomic::{AtomicU8, Ordering};

const UNRESOLVED: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// `true` when sanitizer checks are active.
///
/// The first call resolves the state from the `sanitize` cargo feature or
/// the `COBRA_SANITIZE` environment variable; later calls are a single
/// relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => resolve(),
    }
}

#[cold]
fn resolve() -> bool {
    let on = cfg!(feature = "sanitize")
        || std::env::var("COBRA_SANITIZE")
            .map(|v| matches!(v.trim(), "1" | "true" | "on" | "TRUE" | "ON"))
            .unwrap_or(false);
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Forces the sanitizer on or off, overriding feature and environment.
///
/// Intended for tests that must exercise both modes deterministically.
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Reports a sanitizer violation.
///
/// # Panics
///
/// Always — that is the point. The message carries the `cobra-sanitizer:`
/// prefix so the failing layer is unambiguous.
#[cold]
#[track_caller]
pub fn violation(msg: &str) -> ! {
    panic!("cobra-sanitizer: {msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_overrides() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    #[should_panic(expected = "cobra-sanitizer: boom")]
    fn violation_panics_with_prefix() {
        violation("boom");
    }
}
