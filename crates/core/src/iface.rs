//! The COBRA predictor sub-component interface (paper Section III).
//!
//! A predictor sub-component is a clocked unit that:
//!
//! * is queried with a fetch PC at cycle 0 and responds at its declared
//!   latency `p ≥ 1` ([`Component::latency`]);
//! * receives global/local histories only at the end of cycle 1, so a
//!   1-cycle component never sees them (the pipeline enforces this by
//!   passing `hist: None` to such components — see [`PredictQuery`]);
//! * must be *monotonic*: a prediction visible at cycle `p` persists (or is
//!   strengthened) at every later cycle, which the composition scheme
//!   guarantees by pass-through and which [`crate::validate`] checks;
//! * produces a prediction vector over the fetch packet (superscalar
//!   prediction, Section III-C) plus an opaque [`Meta`] word that the
//!   framework stores in the history file and hands back at `fire`,
//!   `mispredict`, `repair`, and `update` time (Section III-D);
//! * consumes zero or more `predict_in` bundles from components below it in
//!   the topology and composes them with its own response
//!   ([`Component::compose`], Section III-F).

use crate::types::{AccessReport, BranchKind, Meta, PredictionBundle, StorageReport};
use cobra_sim::{HistoryRegister, SnapError, StateReader, StateWriter};

/// The history vectors available to a component from the end of Fetch-1.
#[derive(Debug, Clone, Copy)]
pub struct HistoryView<'a> {
    /// Speculative global branch history (bit 0 = most recent outcome).
    pub ghist: &'a HistoryRegister,
    /// Local history bits for the fetch PC, read from the local history
    /// provider's table (LSB = most recent outcome of branches at this PC's
    /// index).
    pub lhist: u64,
    /// Folded path history (extension; zero when no path provider exists).
    pub phist: u64,
}

/// A predict-time query, delivered at cycle 0.
#[derive(Debug, Clone, Copy)]
pub struct PredictQuery<'a> {
    /// Current simulation cycle, for SRAM port accounting.
    pub cycle: u64,
    /// Fetch-packet start address.
    pub pc: u64,
    /// Fetch-packet width in slots.
    pub width: u8,
    /// Histories — `None` for components of latency 1, per the interface's
    /// history-timing rule (Fig 2 of the paper).
    pub hist: Option<HistoryView<'a>>,
}

impl PredictQuery<'_> {
    /// The address of prediction slot `i` within this packet.
    pub fn slot_pc(&self, i: usize) -> u64 {
        self.pc + (i as u64) * crate::types::SLOT_BYTES
    }
}

/// A component's raw output for one query: its own (possibly partial)
/// prediction vector and provisional metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The component's own contribution, before composition.
    pub pred: PredictionBundle,
    /// Provisional metadata; [`Component::finalize_meta`] may refine it once
    /// the component's `predict_in` values are known.
    pub meta: Meta,
}

/// The resolved outcome of one control-flow instruction in a fetch packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotResolution {
    /// Slot index within the fetch packet.
    pub slot: u8,
    /// The instruction's actual kind.
    pub kind: BranchKind,
    /// Whether it actually redirected control flow.
    pub taken: bool,
    /// Its actual target (meaningful when `taken`).
    pub target: u64,
}

impl SlotResolution {
    /// Serializes the resolution into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(u64::from(self.slot));
        w.write_u64(self.kind.code());
        w.write_bool(self.taken);
        w.write_u64(self.target);
    }

    /// Decodes a resolution written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        let slot = r.read_u64_capped("resolution slot", 0xff)? as u8;
        let code = r.read_u64("resolution kind")?;
        let kind = BranchKind::from_code(code).ok_or(SnapError::BadValue {
            what: "resolution kind",
            got: code,
        })?;
        Ok(SlotResolution {
            slot,
            kind,
            taken: r.read_bool("resolution taken")?,
            target: r.read_u64("resolution target")?,
        })
    }
}

/// Payload of the speculative-update (`fire`) and `repair` events.
///
/// `fire` tells a component that the pipeline is acting on a prediction it
/// participated in, so it may speculatively update local state (e.g. a loop
/// predictor's iteration counter). `repair` tells it that a previously fired
/// packet was squashed, so that state must be restored — the metadata it
/// produced at predict time is handed back for exactly this purpose.
#[derive(Debug, Clone, Copy)]
pub struct FireEvent<'a> {
    /// Fetch-packet start address.
    pub pc: u64,
    /// Histories as of predict time.
    pub hist: HistoryView<'a>,
    /// This component's metadata from predict time.
    pub meta: Meta,
    /// The pipeline's final prediction for the packet.
    pub pred: &'a PredictionBundle,
}

/// Payload of the `mispredict` (fast) and `update` (commit-time) events.
#[derive(Debug, Clone, Copy)]
pub struct UpdateEvent<'a> {
    /// Fetch-packet start address.
    pub pc: u64,
    /// Packet width in slots.
    pub width: u8,
    /// Histories as of predict time, so indices computed at predict time can
    /// be regenerated.
    pub hist: HistoryView<'a>,
    /// This component's metadata from predict time.
    pub meta: Meta,
    /// The pipeline's final prediction for the packet.
    pub pred: &'a PredictionBundle,
    /// Resolved control-flow instructions in the packet, in slot order, up
    /// to and including the first taken one.
    pub resolutions: &'a [SlotResolution],
    /// The slot that mispredicted, when this event is a `mispredict` or the
    /// commit-time update of a packet that mispredicted.
    pub mispredicted_slot: Option<u8>,
}

impl UpdateEvent<'_> {
    /// Iterates over the resolved *conditional* branches in the packet.
    pub fn conditional_branches(&self) -> impl Iterator<Item = &SlotResolution> {
        self.resolutions
            .iter()
            .filter(|r| r.kind == BranchKind::Conditional)
    }

    /// The resolution for `slot`, if that slot resolved.
    pub fn resolution_for(&self, slot: u8) -> Option<&SlotResolution> {
        self.resolutions.iter().find(|r| r.slot == slot)
    }
}

/// A set of prediction-bundle fields, used by the static analyzer to reason
/// about which slot fields (`kind` / `taken` / `target`) a component can
/// populate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FieldSet(u8);

impl FieldSet {
    /// The empty set.
    pub const NONE: FieldSet = FieldSet(0);
    /// The branch-kind field.
    pub const KIND: FieldSet = FieldSet(1);
    /// The taken/not-taken direction field.
    pub const TAKEN: FieldSet = FieldSet(2);
    /// The redirect-target field.
    pub const TARGET: FieldSet = FieldSet(4);
    /// All three fields.
    pub const ALL: FieldSet = FieldSet(7);

    /// Set union.
    pub const fn union(self, other: FieldSet) -> FieldSet {
        FieldSet(self.0 | other.0)
    }

    /// Set intersection.
    pub const fn intersect(self, other: FieldSet) -> FieldSet {
        FieldSet(self.0 & other.0)
    }

    /// `true` when the set contains every field in `other`.
    pub const fn contains(self, other: FieldSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// `true` when no field is in the set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Field names in the set, for rendering diagnostics.
    pub fn names(self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.contains(FieldSet::KIND) {
            out.push("kind");
        }
        if self.contains(FieldSet::TAKEN) {
            out.push("taken");
        }
        if self.contains(FieldSet::TARGET) {
            out.push("target");
        }
        out
    }
}

/// A component's static field profile: which prediction fields it *may*
/// populate, and which it populates on *every* query (unconditionally).
///
/// The analyzer's reachability pass uses this to tell a conditional
/// overrider (a loop predictor that speaks only on confident loops —
/// `always` empty) from an unconditional one (a bimodal table that always
/// produces a direction — `always = {taken}`): only the latter can fully
/// shadow a component below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldProfile {
    /// Fields the component can populate on at least some queries.
    pub may: FieldSet,
    /// Fields the component populates on every query.
    pub always: FieldSet,
}

impl FieldProfile {
    /// The conservative default: may populate anything, guarantees nothing.
    /// Produces no false shadowing reports for components that don't
    /// declare a profile.
    pub const CONSERVATIVE: FieldProfile = FieldProfile {
        may: FieldSet::ALL,
        always: FieldSet::NONE,
    };
}

/// Static description of how one SRAM table inside a component forms its
/// row index from the prediction-time inputs.
///
/// The analyzer's interference pass compares these descriptors across a
/// composition: two tables with the same set count whose indices draw on
/// the same history source (and too few PC bits to de-correlate them) will
/// alias on the same pathological streams — the Tournament/`xz` diagnosis
/// from the paper's Section V-B, derived without running a trace.
///
/// `pc_bits` counts the bits of (hashed) program counter that actually
/// reach the index, *after* any masking the component applies — an
/// Alpha-style global-history BIM that folds in only `pc & 0xf`
/// reports 4 here even though the hash saw the full PC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDescriptor {
    /// SRAM macro name this index drives (matches the `StorageReport` name).
    pub table: String,
    /// Number of selectable rows per bank (the index space).
    pub sets: u64,
    /// PC bits that survive into the index after masking.
    pub pc_bits: u32,
    /// Global-history bits folded into the index.
    pub ghist_bits: u32,
    /// Local-history bits folded into the index.
    pub lhist_bits: u32,
    /// Path-history bits folded into the index.
    pub path_bits: u32,
}

impl IndexDescriptor {
    /// Total history bits (of any flavor) contributing to the index.
    pub fn history_bits(&self) -> u32 {
        self.ghist_bits + self.lhist_bits + self.path_bits
    }

    /// History-source signature used for cross-component correlation:
    /// two indices with identical signatures hash the same input stream.
    pub fn history_signature(&self) -> (u32, u32, u32) {
        (self.ghist_bits, self.lhist_bits, self.path_bits)
    }
}

/// A COBRA predictor sub-component.
///
/// Implementations are clocked predictor structures (counter tables, BTBs,
/// TAGE, loop predictors, arbitration schemes, …). The composer wires them
/// into a pipeline according to a [`Topology`](crate::composer::Topology)
/// and drives these methods; see the crate-level documentation for the full
/// protocol.
///
/// All five event methods default to no-ops: "implementations of predictor
/// sub-components may choose to use and ignore arbitrary subsets of these
/// five signals" (paper Section III-E).
pub trait Component {
    /// Short lowercase kind name, e.g. `"tage"`.
    fn kind(&self) -> &'static str;

    /// Display label, e.g. `"TAGE3"`.
    fn label(&self) -> String {
        format!("{}{}", self.kind().to_uppercase(), self.latency())
    }

    /// Response latency in cycles (`p ≥ 1`). A component with latency 1
    /// will never be given histories.
    fn latency(&self) -> u8;

    /// Number of `predict_in` ports. Chain components take 1; arbitration
    /// schemes take 2 or more; a component ignoring its input still declares
    /// 1 (the composer feeds it the chain below, which it may pass through).
    fn arity(&self) -> usize {
        1
    }

    /// Width in bits of the metadata this component stores per prediction
    /// (Section III-D: "each sub-component independently specifies the
    /// bit-length required"). Must be ≤ 64 and must bound the values
    /// actually produced.
    fn meta_bits(&self) -> u32 {
        0
    }

    /// Local-history bits this component wants per fetch PC; the composer
    /// sizes the generated local history provider as the maximum over all
    /// components. Zero means "does not use local history".
    fn local_history_bits(&self) -> u32 {
        0
    }

    /// Static declaration of which prediction fields this component can
    /// populate, for the analyzer's reachability/shadowing pass. The
    /// default is deliberately conservative (may touch everything,
    /// guarantees nothing) so components that don't declare a profile are
    /// never reported as shadowing anything.
    fn field_profile(&self) -> FieldProfile {
        FieldProfile::CONSERVATIVE
    }

    /// Global-history bits this component actually reads (its longest
    /// history length). The analyzer warns when a design's global history
    /// register is narrower than this. Zero means "does not read global
    /// history".
    fn required_ghist_bits(&self) -> u32 {
        0
    }

    /// Static per-table index-function descriptors for the analyzer's
    /// interference pass. One entry per SRAM whose row index is computed
    /// from prediction-time inputs; fully-associative (CAM) structures and
    /// components without SRAM return nothing. The default is empty, which
    /// exempts the component from aliasing analysis rather than producing
    /// false reports.
    fn index_functions(&self) -> Vec<IndexDescriptor> {
        Vec::new()
    }

    /// Physical storage declaration for the area model.
    fn storage(&self) -> StorageReport;

    /// Lifetime SRAM access counts for the energy model. Components without
    /// SRAM macros (or whose accesses are negligible) may return nothing.
    fn accesses(&self) -> Vec<AccessReport> {
        Vec::new()
    }

    /// Number of SRAM port-budget violations observed so far — cycles in
    /// which the component demanded more ports than its macros declare.
    /// A nonzero count means the design as modelled would not map to its
    /// claimed memories in synthesis.
    fn port_violations(&self) -> usize {
        0
    }

    /// Generates this component's raw prediction for a query.
    ///
    /// Called once per fetch packet, at query time; state observed must be
    /// the state as of the query cycle. The returned prediction becomes
    /// visible to the pipeline at this component's latency stage.
    fn predict(&mut self, q: &PredictQuery<'_>) -> Response;

    /// Composes this component's response with its `predict_in` values at
    /// pipeline stage `d`.
    ///
    /// `own` is `None` while `d` is below this component's latency (the
    /// component has not yet responded and must pass its inputs through).
    /// The default implementation field-wise overrides `inputs[0]` with the
    /// component's own prediction — the pass-through / partial-override
    /// behaviour of Section III-F. Arbitration schemes override this.
    fn compose(
        &self,
        width: u8,
        own: Option<&Response>,
        inputs: &[PredictionBundle],
    ) -> PredictionBundle {
        let base = inputs
            .first()
            .copied()
            .unwrap_or_else(|| PredictionBundle::new(width));
        match own {
            Some(r) => base.overridden_by(&r.pred),
            None => base,
        }
    }

    /// Refines the metadata once the component's `predict_in` values at its
    /// response stage are known (e.g. a tournament selector records the
    /// sub-predictions it arbitrated between). Defaults to the provisional
    /// metadata from [`predict`](Self::predict).
    fn finalize_meta(&self, own: &Response, _inputs: &[PredictionBundle]) -> Meta {
        own.meta
    }

    /// Speculative update: the pipeline is acting on a prediction this
    /// component participated in.
    fn fire(&mut self, _ev: &FireEvent<'_>) {}

    /// Fast update on a misprediction, before commit.
    fn mispredict(&mut self, _ev: &UpdateEvent<'_>) {}

    /// Restore state corrupted by a squashed speculative update.
    fn repair(&mut self, _ev: &FireEvent<'_>) {}

    /// Slow, commit-time update from committing branches.
    fn update(&mut self, _ev: &UpdateEvent<'_>) {}

    /// Arms the component's current state as a fast-reset baseline,
    /// returning `true` if the component supports dirty-state resets.
    ///
    /// Components backed by [`SramModel`](cobra_sim::SramModel) arm each
    /// table (plus a snapshot of any scalar state) so that
    /// [`reset_baseline`](Self::reset_baseline) restores predict-time
    /// state by touching only rows mutated since arming. The default
    /// returns `false`, and the composer falls back to a full
    /// serialize/restore of the component via
    /// [`save_state`](Self::save_state) — always correct, just slower.
    fn arm_baseline(&mut self) -> bool {
        false
    }

    /// Restores the state armed by [`arm_baseline`](Self::arm_baseline).
    /// Only called after `arm_baseline` returned `true`; the baseline
    /// stays armed for further resets.
    fn reset_baseline(&mut self) {}

    /// Serializes the component's *complete* mutable state for a
    /// warm-state checkpoint (`.cbs`).
    ///
    /// Deliberately required, not defaulted: a component that holds any
    /// state must decide what to save, and a genuinely stateless one
    /// documents that by writing nothing. The composer frames each
    /// component's fields in a named section whose field count is
    /// validated at restore time, so save/load asymmetries fail loudly.
    fn save_state(&self, w: &mut StateWriter);

    /// Restores state previously written by
    /// [`save_state`](Self::save_state) into a component constructed with
    /// the identical configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the stream is malformed or does not fit
    /// this component's shape; the component must then be discarded.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MAX_FETCH_WIDTH;

    /// A trivial component used to exercise trait defaults.
    struct Fixed {
        taken: bool,
    }

    impl Component for Fixed {
        fn kind(&self) -> &'static str {
            "fixed"
        }
        fn latency(&self) -> u8 {
            1
        }
        fn storage(&self) -> StorageReport {
            StorageReport::new()
        }
        fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
            let mut pred = PredictionBundle::new(q.width);
            for i in 0..q.width as usize {
                pred.slot_mut(i).taken = Some(self.taken);
            }
            Response {
                pred,
                meta: Meta(7),
            }
        }
        fn save_state(&self, w: &mut StateWriter) {
            w.write_bool(self.taken);
        }
        fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
            self.taken = r.read_bool("fixed taken")?;
            Ok(())
        }
    }

    fn query(width: u8) -> PredictQuery<'static> {
        PredictQuery {
            cycle: 0,
            pc: 0x1000,
            width,
            hist: None,
        }
    }

    #[test]
    fn default_compose_passes_through_before_response() {
        let c = Fixed { taken: true };
        let mut below = PredictionBundle::new(4);
        below.slot_mut(0).taken = Some(false);
        let out = c.compose(4, None, &[below]);
        assert_eq!(out, below);
    }

    #[test]
    fn default_compose_overrides_after_response() {
        let mut c = Fixed { taken: true };
        let resp = c.predict(&query(4));
        let mut below = PredictionBundle::new(4);
        below.slot_mut(2).set_target(Some(0x44));
        let out = c.compose(4, Some(&resp), &[below]);
        assert_eq!(out.slot(2).taken, Some(true), "own direction overrides");
        assert_eq!(
            out.slot(2).target(),
            Some(0x44),
            "input target passes through"
        );
    }

    #[test]
    fn default_compose_with_no_inputs_uses_empty_base() {
        let c = Fixed { taken: false };
        let out = c.compose(8, None, &[]);
        assert_eq!(out, PredictionBundle::new(8));
        assert_eq!(out.width() as usize, MAX_FETCH_WIDTH);
    }

    #[test]
    fn default_finalize_meta_keeps_provisional() {
        let mut c = Fixed { taken: true };
        let resp = c.predict(&query(2));
        assert_eq!(c.finalize_meta(&resp, &[]), Meta(7));
    }

    #[test]
    fn label_combines_kind_and_latency() {
        let c = Fixed { taken: true };
        assert_eq!(c.label(), "FIXED1");
    }

    #[test]
    fn slot_pc_steps_by_parcel() {
        let q = query(4);
        assert_eq!(q.slot_pc(0), 0x1000);
        assert_eq!(q.slot_pc(3), 0x1006);
    }

    #[test]
    fn update_event_filters_conditionals() {
        let pred = PredictionBundle::new(4);
        let ghist = HistoryRegister::new(8);
        let res = [
            SlotResolution {
                slot: 0,
                kind: BranchKind::Jump,
                taken: true,
                target: 0x20,
            },
            SlotResolution {
                slot: 1,
                kind: BranchKind::Conditional,
                taken: false,
                target: 0,
            },
        ];
        let ev = UpdateEvent {
            pc: 0,
            width: 4,
            hist: HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist: 0,
            },
            meta: Meta::ZERO,
            pred: &pred,
            resolutions: &res,
            mispredicted_slot: None,
        };
        assert_eq!(ev.conditional_branches().count(), 1);
        assert_eq!(ev.resolution_for(0).unwrap().kind, BranchKind::Jump);
        assert!(ev.resolution_for(3).is_none());
    }
}
