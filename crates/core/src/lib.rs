//! # cobra-core
//!
//! A Rust reproduction of **COBRA** (ISPASS 2021): a framework for
//! evaluating *compositions* of hardware branch predictors.
//!
//! The crate has three layers, mirroring the paper:
//!
//! 1. **The interface** (see [`Component`]): the contract a predictor
//!    sub-component implements — pipelined responses at a declared latency,
//!    histories delivered at Fetch-1, superscalar prediction vectors, an
//!    opaque metadata word round-tripped through the framework, and the
//!    five prediction events (`predict`, `fire`, `mispredict`, `repair`,
//!    `update`).
//! 2. **The sub-component library** ([`components`]): bimodal counter
//!    tables with parameterized indexing, a set-associative BTB and a
//!    micro-BTB, a tournament selector, TAGE, a loop predictor, and
//!    extension components (perceptron, statistical corrector).
//! 3. **The composer** ([`composer`]): compiles a topological description
//!    like `LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1` into a complete predictor
//!    pipeline, and generates the management structures — history file,
//!    repair state machine, and global/local history providers — that keep
//!    predictor state consistent through speculation.
//!
//! The three predictor designs evaluated in the paper (Tournament, B2, and
//! TAGE-L) are provided ready-made in [`designs`].
//!
//! ## Quick example
//!
//! ```
//! use cobra_core::composer::{BranchPredictorUnit, BpuConfig};
//! use cobra_core::designs;
//!
//! let mut bpu = BranchPredictorUnit::build(
//!     &designs::tage_l(),
//!     BpuConfig::default(),
//! ).expect("valid topology");
//!
//! // Query a fetch packet; predictions become visible stage by stage.
//! let id = bpu.query(0x8000_0100).expect("history file has room");
//! bpu.tick();
//! let early = bpu.prediction(id, 1).expect("stage-1 prediction");
//! assert_eq!(early.width(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod components;
pub mod composer;
pub mod designs;
mod error;
mod iface;
pub mod obs;
pub mod sanitize;
mod types;
pub mod validate;

pub use error::{ComposeError, Span};
pub use iface::{
    Component, FieldProfile, FieldSet, FireEvent, HistoryView, IndexDescriptor, PredictQuery,
    Response, SlotResolution, UpdateEvent,
};
pub use types::{
    AccessReport, BranchKind, Meta, PredictionBundle, SlotPrediction, StorageReport,
    MAX_FETCH_WIDTH, SLOT_BYTES,
};
