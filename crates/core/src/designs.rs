//! The three predictor designs evaluated in the paper (Table I / Fig 7).
//!
//! | Design | Topology | Histories |
//! |---|---|---|
//! | Tournament | `TOURNEY3 > [GBIM2 > BTB2, LBIM2]` | 32-bit global, 256×32-bit local |
//! | B2 | `GTAG3 > BTB2 > BIM2` | 16-bit global |
//! | TAGE-L | `LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1` | 64-bit global |
//!
//! Each function returns a [`Design`] whose registry elaborates the
//! paper's parameterization; pass it to
//! [`BranchPredictorUnit::build`](crate::composer::BranchPredictorUnit::build).

use crate::components::{
    Btb, BtbConfig, Gtag, GtagConfig, Hbim, HbimConfig, IndexScheme, LoopConfig, LoopPredictor,
    MicroBtb, MicroBtbConfig, Tage, TageConfig, Tourney, TourneyConfig,
};
use crate::composer::{ComponentRegistry, Design};

/// The "Tournament" design: a globally-indexed selector choosing between
/// untagged global- and local-history counter tables, similar to the
/// Alpha 21264 and riscyOOO predictors.
///
/// Table I: 32-bit global and 256×32-bit local histories, a 2K-entry BTB
/// with a 16K-entry 2-bit BHT, and 1K tournament counters.
pub fn tournament() -> Design {
    let mut registry = ComponentRegistry::new();
    // Alpha-style: the global table is indexed by the history register
    // alone — the untagged indexing whose aliasing Section V-B calls out.
    registry.register_kind("GBIM2", |w| {
        Hbim::new(HbimConfig {
            entries: 16384,
            counter_bits: 2,
            index: IndexScheme::GlobalHistory { bits: 14 },
            latency: 2,
            width: w,
            superscalar: true,
        })
        .into()
    });
    registry.register_kind("LBIM2", |w| {
        Hbim::new(HbimConfig {
            entries: 1024,
            counter_bits: 2,
            index: IndexScheme::LocalHistory { bits: 32 },
            latency: 2,
            width: w,
            superscalar: true,
        })
        .into()
    });
    registry.register_kind("BTB2", |w| Btb::new(BtbConfig::large(w)).into());
    registry.register_kind("TOURNEY3", |w| Tourney::new(TourneyConfig::paper(w)).into());
    Design {
        name: "Tournament".into(),
        topology: "TOURNEY3 > [GBIM2 > BTB2, LBIM2]".into(),
        registry,
        ghist_bits: 32,
        lhist_entries: 256,
    }
}

/// The "B2" design: the original BOOM predictor — a single partially-tagged
/// global-history table backed by a PC-indexed bimodal table.
///
/// Table I: 16-bit global history, 2K partially-tagged plus 16K untagged
/// counters, and a 2K-entry BTB.
pub fn b2() -> Design {
    let mut registry = ComponentRegistry::new();
    registry.register_kind("GTAG3", |w| Gtag::new(GtagConfig::b2(w)).into());
    registry.register_kind("BTB2", |w| Btb::new(BtbConfig::large(w)).into());
    registry.register_kind("BIM2", |w| Hbim::new(HbimConfig::bim(16384, w)).into());
    Design {
        name: "B2".into(),
        topology: "GTAG3 > BTB2 > BIM2".into(),
        registry,
        ghist_bits: 16,
        lhist_entries: 0,
    }
}

/// The "TAGE-L" design: a 7-table TAGE with a loop corrector, micro-BTB,
/// and bimodal base — "vaguely similar to TAGE-SC-L, only with no
/// statistical corrector, and a simpler loop predictor".
///
/// Table I: 64-bit global history, 7 TAGE tables, a 2K-entry BTB with a
/// 32-entry uBTB, and a 256-entry loop predictor.
pub fn tage_l() -> Design {
    let mut registry = ComponentRegistry::new();
    registry.register_kind("LOOP3", |w| LoopPredictor::new(LoopConfig::paper(w)).into());
    registry.register_kind("TAGE3", |w| Tage::new(TageConfig::paper(w)).into());
    registry.register_kind("BTB2", |w| Btb::new(BtbConfig::large(w)).into());
    registry.register_kind("BIM2", |w| Hbim::new(HbimConfig::bim(4096, w)).into());
    registry.register_kind("UBTB1", |w| MicroBtb::new(MicroBtbConfig::small(w)).into());
    Design {
        name: "TAGE-L".into(),
        topology: "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1".into(),
        registry,
        ghist_bits: 64,
        lhist_entries: 0,
    }
}

/// A variant of [`tage_l`] with the TAGE latency overridden — the
/// Section VI-A physical-design experiment (2-cycle vs 3-cycle TAGE
/// arbitration).
pub fn tage_l_with_latency(tage_latency: u8) -> Design {
    let mut d = tage_l();
    d.registry.register_kind("TAGE3", move |w| {
        let mut t = Tage::new(TageConfig::paper(w));
        t.set_latency(tage_latency);
        t.into()
    });
    d.name = format!("TAGE-L/lat{tage_latency}");
    d
}

/// An extension design adding the statistical corrector the paper's TAGE-L
/// deliberately omits: `LOOP3 > SC3 > TAGE3 > BTB2 > BIM2 > UBTB1`.
pub fn tage_sc_l() -> Design {
    use crate::components::{CorrectorConfig, StatisticalCorrector};
    let mut d = tage_l();
    d.registry.register_kind("SC3", |w| {
        StatisticalCorrector::new(CorrectorConfig::small(w)).into()
    });
    d.topology = "LOOP3 > SC3 > TAGE3 > BTB2 > BIM2 > UBTB1".into();
    d.name = "TAGE-SC-L".into();
    d
}

/// An extension design adding an ITTAGE indirect-target predictor above
/// TAGE-L: `ITTAGE3 > LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1`. Indirect
/// dispatch sites (interpreters, virtual calls) get history-correlated
/// targets instead of the BTB's last-target guess.
pub fn tage_l_it() -> Design {
    use crate::components::{Ittage, IttageConfig};
    let mut d = tage_l();
    d.registry
        .register_kind("ITTAGE3", |w| Ittage::new(IttageConfig::small(w)).into());
    d.topology = "ITTAGE3 > LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1".into();
    d.name = "TAGE-L+IT".into();
    d
}

/// An extension design using a perceptron in place of TAGE:
/// `PERC3 > BTB2 > BIM2`.
pub fn perceptron() -> Design {
    use crate::components::{Perceptron, PerceptronConfig};
    let mut registry = ComponentRegistry::new();
    registry.register_kind("PERC3", |w| {
        Perceptron::new(PerceptronConfig::default_size(w)).into()
    });
    registry.register_kind("BTB2", |w| Btb::new(BtbConfig::large(w)).into());
    registry.register_kind("BIM2", |w| Hbim::new(HbimConfig::bim(16384, w)).into());
    Design {
        name: "Perceptron".into(),
        topology: "PERC3 > BTB2 > BIM2".into(),
        registry,
        ghist_bits: 32,
        lhist_entries: 0,
    }
}

/// Every stock design, for sweep harnesses.
pub fn all() -> Vec<Design> {
    vec![tournament(), b2(), tage_l()]
}

/// Every built-in design, paper designs first — what `cobra-lint --all`
/// iterates.
pub fn catalog() -> Vec<Design> {
    vec![
        tournament(),
        b2(),
        tage_l(),
        tage_sc_l(),
        tage_l_it(),
        perceptron(),
        tage_l_with_latency(2),
    ]
}

/// Looks a built-in design up by its name (as reported by
/// [`Design::name`](crate::composer::Design)), case-insensitively.
pub fn by_name(name: &str) -> Option<Design> {
    catalog()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

/// Wraps a raw topology string as an ad-hoc [`Design`] resolved against
/// [`stock_registry`] — the path `cobra-lint` and `cobra-serve` take for
/// topologies that are not in the catalog. The design's name is the
/// topology text itself.
pub fn from_topology(topology: &str, ghist_bits: u32, lhist_entries: u64) -> Design {
    Design {
        name: topology.into(),
        topology: topology.into(),
        registry: stock_registry(),
        ghist_bits,
        lhist_entries,
    }
}

/// A registry holding every component the built-in designs use, under its
/// stock label — the resolution context for linting raw topology strings.
pub fn stock_registry() -> ComponentRegistry {
    let mut registry = ComponentRegistry::new();
    for d in catalog() {
        let names: Vec<String> = d.registry.names().map(String::from).collect();
        for n in names {
            let already = registry.names().any(|r| r == n);
            if !already {
                // Re-elaborate through the owning design so each label keeps
                // its stock parameterization.
                let label = n.clone();
                let dname = d.name.clone();
                registry.register_kind(n, move |w| {
                    by_name(&dname)
                        .expect("catalog design exists")
                        .registry
                        .build(&label, w, None)
                        .expect("label came from this registry")
                });
            }
        }
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composer::{BpuConfig, BranchPredictorUnit};

    #[test]
    fn all_designs_compile() {
        for d in [
            tournament(),
            b2(),
            tage_l(),
            tage_sc_l(),
            tage_l_it(),
            perceptron(),
            tage_l_with_latency(2),
        ] {
            let bpu = BranchPredictorUnit::build(&d, BpuConfig::default());
            assert!(bpu.is_ok(), "design {} failed to build", d.name);
        }
    }

    #[test]
    fn latency_variant_changes_depth() {
        let d3 = BranchPredictorUnit::build(&tage_l(), BpuConfig::default()).unwrap();
        assert_eq!(d3.depth(), 3);
        // With a 2-cycle TAGE the loop predictor (3 cycles) still bounds
        // the depth, but the TAGE responds a stage earlier.
        let d2 = BranchPredictorUnit::build(&tage_l_with_latency(2), BpuConfig::default());
        assert!(d2.is_ok());
    }

    #[test]
    fn storage_ordering_matches_table1() {
        // Table I: TAGE-L (28 KB) is by far the largest; Tournament and B2
        // are of the same order.
        let size = |d: &Design| {
            BranchPredictorUnit::build(d, BpuConfig::default())
                .unwrap()
                .total_storage()
                .kilobytes()
        };
        let t = size(&tournament());
        let b = size(&b2());
        let l = size(&tage_l());
        assert!(
            l > t && l > b,
            "TAGE-L must be the largest: {l} vs {t}, {b}"
        );
    }

    #[test]
    fn tournament_uses_local_histories() {
        let bpu = BranchPredictorUnit::build(&tournament(), BpuConfig::default()).unwrap();
        let meta = bpu.meta_storage();
        assert!(
            meta.srams.iter().any(|(n, _)| n == "local-history-table"),
            "tournament generates a local history provider"
        );
    }
}
