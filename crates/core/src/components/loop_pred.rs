//! A loop predictor ("LOOP3") with speculative iteration counters.
//!
//! The loop predictor corrects the periodic misprediction a counter- or
//! history-based predictor makes at loop exits: once it has observed a
//! branch behave as a loop with a stable trip count, it predicts the exit
//! iteration exactly.
//!
//! This component exercises the parts of the COBRA interface the others do
//! not (paper Section III-G5): it is *updated at query time* — the
//! speculative iteration counter advances as predictions are made — and is
//! therefore *repaired immediately on mispredicts* and on squashes, using
//! the metadata field to restore the counter contents that speculation
//! corrupted.

use crate::iface::{
    Component, FieldProfile, FieldSet, FireEvent, IndexDescriptor, PredictQuery, Response,
    UpdateEvent,
};
use crate::types::{BranchKind, Meta, PredictionBundle, StorageReport};
use cobra_sim::bits;
use cobra_sim::{SnapError, StateReader, StateWriter};

/// Configuration for a [`LoopPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopConfig {
    /// Number of direct-mapped entries (power of two).
    pub entries: u64,
    /// Partial tag width.
    pub tag_bits: u32,
    /// Iteration-counter width (bounds the largest learnable trip count).
    pub iter_bits: u32,
    /// Confidence needed before predictions are offered (trips observed
    /// with the same count).
    pub conf_max: u8,
    /// Response latency.
    pub latency: u8,
    /// Fetch-packet width in slots.
    pub width: u8,
}

impl LoopConfig {
    /// The paper's 256-entry loop predictor.
    pub fn paper(width: u8) -> Self {
        Self {
            entries: 256,
            tag_bits: 10,
            iter_bits: 10,
            conf_max: 7,
            latency: 3,
            width,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    valid: bool,
    tag: u64,
    slot: u8,
    /// Learned trip count: taken iterations before the not-taken exit.
    trip: u32,
    /// Speculative iteration counter, advanced at query time.
    spec_iter: u32,
    /// Architectural iteration counter, advanced at commit.
    arch_iter: u32,
    /// Confidence that `trip` is stable.
    conf: u8,
    /// Replacement age.
    age: u8,
}

/// A loop-exit corrector with speculative iteration tracking.
#[derive(Debug)]
pub struct LoopPredictor {
    cfg: LoopConfig,
    entries: Vec<LoopEntry>,
    baseline: Option<Vec<LoopEntry>>,
}

mod meta_layout {
    pub const HIT: u32 = 0; // 1 bit
    pub const PROVIDED: u32 = 1; // 1 bit: a prediction was offered
    pub const SPEC_BEFORE: u32 = 2; // 12 bits: spec_iter before query update
    pub const PRED_TAKEN: u32 = 14; // 1 bit
    pub const SLOT: u32 = 15; // 3 bits
}

impl LoopPredictor {
    /// Builds a loop predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `iter_bits` exceeds 12
    /// (the metadata layout's speculative-counter field).
    pub fn new(cfg: LoopConfig) -> Self {
        assert!(bits::is_pow2(cfg.entries), "entries must be a power of two");
        assert!(cfg.iter_bits <= 12, "iter_bits exceeds metadata field");
        assert!(cfg.latency >= 1, "latency must be >= 1");
        Self {
            entries: vec![LoopEntry::default(); cfg.entries as usize],
            cfg,
            baseline: None,
        }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &LoopConfig {
        &self.cfg
    }

    fn index(&self, pc: u64) -> usize {
        (bits::mix64(pc >> 1) & bits::mask(bits::clog2(self.cfg.entries))) as usize
    }

    fn tag(&self, pc: u64) -> u64 {
        (bits::mix64(pc >> 1) >> 20) & bits::mask(self.cfg.tag_bits)
    }

    fn max_iter(&self) -> u32 {
        bits::mask(self.cfg.iter_bits) as u32
    }
}

impl Component for LoopPredictor {
    fn kind(&self) -> &'static str {
        "loop"
    }

    fn latency(&self) -> u8 {
        self.cfg.latency
    }

    fn meta_bits(&self) -> u32 {
        18
    }

    fn field_profile(&self) -> FieldProfile {
        // Speaks only on confidently-tracked loops, so nothing is
        // guaranteed on an arbitrary query.
        FieldProfile {
            may: FieldSet::TAKEN,
            always: FieldSet::NONE,
        }
    }

    fn index_functions(&self) -> Vec<IndexDescriptor> {
        vec![IndexDescriptor {
            table: "loop-table".into(),
            sets: self.cfg.entries,
            pc_bits: bits::clog2(self.cfg.entries),
            ghist_bits: 0,
            lhist_bits: 0,
            path_bits: 0,
        }]
    }

    fn storage(&self) -> StorageReport {
        // The loop table needs query-time update and repair alongside
        // prediction: a 2R1W macro.
        let entry_bits = 1 + self.cfg.tag_bits as u64 + 3 + 3 * self.cfg.iter_bits as u64 + 3 + 8;
        let mut r = StorageReport::new();
        r.add_sram(
            "loop-table",
            cobra_sim::SramSpec {
                entries: self.cfg.entries,
                entry_bits,
                ports: cobra_sim::PortKind::TwoReadOneWrite,
                banks: 1,
            },
        );
        r
    }

    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        let mut pred = PredictionBundle::new(q.width);
        let idx = self.index(q.pc);
        let tag = self.tag(q.pc);
        let mut meta = 0u64;
        use meta_layout::*;
        let max_iter = self.max_iter();
        let e = &mut self.entries[idx];
        if e.valid && e.tag == tag {
            meta |= 1 << HIT;
            meta |= ((e.spec_iter as u64) & 0xfff) << SPEC_BEFORE;
            meta |= ((e.slot as u64) & 0x7) << SLOT;
            // The loop hypothesis: taken until spec_iter reaches the trip.
            let hypothesis = e.spec_iter + 1 < e.trip.max(1);
            if e.conf >= self.cfg.conf_max && (e.slot as usize) < q.width as usize {
                pred.slot_mut(e.slot as usize).kind = Some(BranchKind::Conditional);
                pred.slot_mut(e.slot as usize).taken = Some(hypothesis);
                meta |= 1 << PROVIDED;
                if hypothesis {
                    meta |= 1 << PRED_TAKEN;
                }
            }
            // Query-time speculative update (Section III-G5).
            e.spec_iter = if hypothesis {
                (e.spec_iter + 1).min(max_iter)
            } else {
                0
            };
        }
        Response {
            pred,
            meta: Meta(meta),
        }
    }

    /// The loop predictor ignores `fire`: its speculative state already
    /// advanced at query time.
    fn fire(&mut self, _ev: &FireEvent<'_>) {}

    fn repair(&mut self, ev: &FireEvent<'_>) {
        use meta_layout::*;
        if bits::field(ev.meta.0, HIT, 1) == 0 {
            return;
        }
        let idx = self.index(ev.pc);
        let tag = self.tag(ev.pc);
        let e = &mut self.entries[idx];
        if e.valid && e.tag == tag {
            // Restore the speculative counter corrupted by this squashed
            // query, from the metadata snapshot.
            e.spec_iter = bits::field(ev.meta.0, SPEC_BEFORE, 12) as u32;
        }
    }

    fn mispredict(&mut self, ev: &UpdateEvent<'_>) {
        use meta_layout::*;
        let idx = self.index(ev.pc);
        let tag = self.tag(ev.pc);
        let max_iter = self.max_iter();
        let hit = bits::field(ev.meta.0, HIT, 1) == 1;
        let e = &mut self.entries[idx];
        if hit && e.valid && e.tag == tag {
            // Resynchronize the speculative counter with reality: the
            // resolved outcome replaces whatever was speculated.
            if let Some(slot) = ev.mispredicted_slot {
                if slot == e.slot {
                    if let Some(r) = ev.resolution_for(slot) {
                        let before = bits::field(ev.meta.0, SPEC_BEFORE, 12) as u32;
                        e.spec_iter = if r.taken {
                            (before + 1).min(max_iter)
                        } else {
                            0
                        };
                    }
                }
            }
        }
    }

    fn update(&mut self, ev: &UpdateEvent<'_>) {
        let idx = self.index(ev.pc);
        let tag = self.tag(ev.pc);
        let max_iter = self.max_iter();
        let conf_max = self.cfg.conf_max;
        for r in ev.conditional_branches() {
            let e = &mut self.entries[idx];
            if e.valid && e.tag == tag && r.slot == e.slot {
                // Architectural iteration tracking.
                if r.taken {
                    e.arch_iter = (e.arch_iter + 1).min(max_iter);
                } else {
                    let observed_trip = e.arch_iter + 1; // iterations incl. exit
                    if e.trip == observed_trip {
                        e.conf = (e.conf + 1).min(conf_max);
                    } else {
                        e.trip = observed_trip;
                        e.conf = 0;
                    }
                    e.arch_iter = 0;
                    e.age = e.age.saturating_add(1).min(15);
                }
            } else if ev.mispredicted_slot == Some(r.slot) && r.kind == BranchKind::Conditional {
                // Allocate for a mispredicting branch: candidate loop exit.
                let can_replace = !e.valid || e.conf == 0 || e.age == 0;
                if can_replace {
                    *e = LoopEntry {
                        valid: true,
                        tag,
                        slot: r.slot,
                        trip: 0,
                        spec_iter: if r.taken { 1 } else { 0 },
                        arch_iter: if r.taken { 1 } else { 0 },
                        conf: 0,
                        age: 8,
                    };
                } else {
                    e.age = e.age.saturating_sub(1);
                }
            }
        }
    }

    fn arm_baseline(&mut self) -> bool {
        // Loop entries are flop arrays (Copy): clone the whole table.
        self.baseline = Some(self.entries.clone());
        true
    }

    fn reset_baseline(&mut self) {
        if let Some(entries) = &self.baseline {
            self.entries.clone_from(entries);
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        for e in &self.entries {
            w.write_bool(e.valid);
            w.write_u64(e.tag);
            w.write_u64(u64::from(e.slot));
            w.write_u64(u64::from(e.trip));
            w.write_u64(u64::from(e.spec_iter));
            w.write_u64(u64::from(e.arch_iter));
            w.write_u64(u64::from(e.conf));
            w.write_u64(u64::from(e.age));
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        for e in &mut self.entries {
            e.valid = r.read_bool("loop valid")?;
            e.tag = r.read_u64("loop tag")?;
            e.slot = r.read_u64_capped("loop slot", 0xff)? as u8;
            e.trip = r.read_u64_capped("loop trip", u64::from(u32::MAX))? as u32;
            e.spec_iter = r.read_u64_capped("loop spec iter", u64::from(u32::MAX))? as u32;
            e.arch_iter = r.read_u64_capped("loop arch iter", u64::from(u32::MAX))? as u32;
            e.conf = r.read_u64_capped("loop conf", 0xff)? as u8;
            e.age = r.read_u64_capped("loop age", 0xff)? as u8;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{HistoryView, SlotResolution};
    use cobra_sim::HistoryRegister;

    const PC: u64 = 0x9000;
    const SLOT: u8 = 1;

    fn predict(lp: &mut LoopPredictor) -> Response {
        lp.predict(&PredictQuery {
            cycle: 0,
            pc: PC,
            width: 4,
            hist: None,
        })
    }

    fn commit(lp: &mut LoopPredictor, resp: &Response, taken: bool, mispredicted: bool) {
        let ghist = HistoryRegister::new(8);
        let mut pred = resp.pred;
        if pred.slot(SLOT as usize).taken.is_none() {
            pred.slot_mut(SLOT as usize).taken = Some(false);
        }
        let res = [SlotResolution {
            slot: SLOT,
            kind: BranchKind::Conditional,
            taken,
            target: 0x40,
        }];
        let ev = UpdateEvent {
            pc: PC,
            width: 4,
            hist: HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist: 0,
            },
            meta: resp.meta,
            pred: &pred,
            resolutions: &res,
            mispredicted_slot: if mispredicted { Some(SLOT) } else { None },
        };
        if mispredicted {
            lp.mispredict(&ev);
        }
        lp.update(&ev);
    }

    /// Drives `trips` full loops of trip count `n` through the predictor,
    /// returning how many exit iterations were predicted not-taken.
    fn run_loop(lp: &mut LoopPredictor, n: u32, trips: usize) -> usize {
        let mut exits_predicted = 0;
        for _ in 0..trips {
            for i in 1..=n {
                let taken = i < n; // exit on the n-th iteration
                let resp = predict(lp);
                let predicted = resp.pred.slot(SLOT as usize).taken;
                if !taken && predicted == Some(false) {
                    exits_predicted += 1;
                }
                let mispredicted = predicted.map_or(taken, |p| p != taken);
                commit(lp, &resp, taken, mispredicted);
            }
        }
        exits_predicted
    }

    #[test]
    fn learns_stable_trip_count() {
        let mut lp = LoopPredictor::new(LoopConfig::paper(4));
        // Warm up past confidence threshold, then expect exit predictions.
        run_loop(&mut lp, 10, 9);
        let hits = run_loop(&mut lp, 10, 5);
        assert_eq!(hits, 5, "every exit must be predicted after warm-up");
    }

    #[test]
    fn no_prediction_before_confidence() {
        let mut lp = LoopPredictor::new(LoopConfig::paper(4));
        let hits = run_loop(&mut lp, 10, 3);
        assert_eq!(hits, 0, "low confidence must not offer predictions");
    }

    #[test]
    fn trip_change_resets_confidence() {
        let mut lp = LoopPredictor::new(LoopConfig::paper(4));
        run_loop(&mut lp, 10, 9);
        assert_eq!(run_loop(&mut lp, 10, 1), 1);
        // Change the trip count: predictions must stop until re-learned.
        run_loop(&mut lp, 6, 1);
        let hits = run_loop(&mut lp, 6, 3);
        assert_eq!(hits, 0, "confidence must reset after a trip change");
        run_loop(&mut lp, 6, 8);
        assert_eq!(run_loop(&mut lp, 6, 2), 2);
    }

    #[test]
    fn repair_restores_speculative_counter() {
        let mut lp = LoopPredictor::new(LoopConfig::paper(4));
        run_loop(&mut lp, 10, 9);
        // Query twice speculatively (wrong path), then repair both.
        let r1 = predict(&mut lp);
        let r2 = predict(&mut lp);
        let ghist = HistoryRegister::new(8);
        let pred = PredictionBundle::new(4);
        // Repair youngest-first is not required; entries restore their own
        // snapshot. Repair r2 then r1 (forwards-walk does oldest first; both
        // orders must converge because r1's snapshot is the oldest state).
        for r in [&r2, &r1] {
            lp.repair(&FireEvent {
                pc: PC,
                hist: HistoryView {
                    ghist: &ghist,
                    lhist: 0,
                    phist: 0,
                },
                meta: r.meta,
                pred: &pred,
            });
        }
        // Now a clean loop run must still predict every exit.
        let hits = run_loop(&mut lp, 10, 2);
        assert_eq!(hits, 2, "speculative corruption must have been repaired");
    }

    #[test]
    fn metadata_records_spec_counter() {
        let mut lp = LoopPredictor::new(LoopConfig::paper(4));
        run_loop(&mut lp, 4, 9);
        let r1 = predict(&mut lp);
        let r2 = predict(&mut lp);
        let s1 = bits::field(r1.meta.0, meta_layout::SPEC_BEFORE, 12);
        let s2 = bits::field(r2.meta.0, meta_layout::SPEC_BEFORE, 12);
        assert_eq!(s2, s1 + 1, "query-time update advances the counter");
    }

    #[test]
    fn only_the_learned_slot_is_predicted() {
        let mut lp = LoopPredictor::new(LoopConfig::paper(4));
        run_loop(&mut lp, 5, 9);
        let r = predict(&mut lp);
        for i in 0..4usize {
            if i != SLOT as usize {
                assert!(r.pred.slot(i).taken.is_none());
            }
        }
    }

    #[test]
    fn storage_is_a_multiported_macro() {
        let lp = LoopPredictor::new(LoopConfig::paper(8));
        let s = lp.storage();
        assert_eq!(s.srams.len(), 1);
        assert_eq!(s.srams[0].1.ports, cobra_sim::PortKind::TwoReadOneWrite);
        assert!(s.total_bits() > 256 * 40);
    }
}
