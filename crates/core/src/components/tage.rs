//! A TAGE predictor sub-component (Seznec's TAgged GEometric predictor).
//!
//! The component manages a set of partially-tagged tables indexed by
//! geometrically-increasing global-history lengths, following the algorithm
//! of "A new case for the TAGE branch predictor" (MICRO 2011), which the
//! paper's Section III-G4 cites as its reference:
//!
//! * the *provider* is the hitting table with the longest history; the
//!   *alternate* is the next-longest hit;
//! * newly-allocated weak entries may be overridden by the alternate
//!   prediction under control of the `use_alt_on_na` counter;
//! * usefulness counters gate allocation and are periodically aged;
//! * on a misprediction, a new entry is allocated in a longer-history
//!   table with a randomized start to avoid ping-ponging.
//!
//! Entries are fetch-packet shaped (one tag, one counter per prediction
//! slot), making the component superscalar per Section III-C. The metadata
//! word carries the provider/alternate table identities, the provider's
//! counters, and the decisions taken — everything update time needs without
//! a second read port (Section III-G4: "the metadata field is used to track
//! the index of the provider and allocator tables").

use crate::iface::{
    Component, FieldProfile, FieldSet, IndexDescriptor, PredictQuery, Response, UpdateEvent,
};
use crate::types::{Meta, PredictionBundle, StorageReport, MAX_FETCH_WIDTH};
use cobra_sim::bits;
use cobra_sim::{
    HistoryRegister, PortKind, SaturatingCounter, SnapError, Snapshot, SplitMix64, SramModel,
    StateReader, StateWriter,
};

/// Configuration for a [`Tage`] component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// Entries per tagged table (power of two).
    pub table_entries: u64,
    /// Tag width per table, in bits (one entry per table).
    pub tag_bits: Vec<u32>,
    /// Geometric history lengths, shortest first (one per table).
    pub hist_lengths: Vec<u32>,
    /// Prediction counter width.
    pub counter_bits: u8,
    /// Usefulness counter width.
    pub useful_bits: u8,
    /// Response latency (the paper uses 3 after the physical-design fix of
    /// Section VI-A; 2 is the aggressive variant).
    pub latency: u8,
    /// Fetch-packet width in slots.
    pub width: u8,
    /// Updates between usefulness-aging events.
    pub age_period: u64,
}

impl TageConfig {
    /// The paper's 7-table TAGE over a 64-bit global history.
    pub fn paper(width: u8) -> Self {
        Self {
            table_entries: 512,
            tag_bits: vec![7, 7, 8, 8, 9, 10, 11],
            hist_lengths: vec![4, 6, 10, 16, 26, 41, 64],
            counter_bits: 3,
            useful_bits: 2,
            latency: 3,
            width,
            age_period: 256 * 1024,
        }
    }

    /// Number of tagged tables.
    pub fn num_tables(&self) -> usize {
        self.hist_lengths.len()
    }
}

#[derive(Debug, Clone)]
struct TageEntry {
    valid: bool,
    tag: u64,
    ctrs: [u8; MAX_FETCH_WIDTH],
    useful: u8,
}

impl Default for TageEntry {
    fn default() -> Self {
        Self {
            valid: false,
            tag: 0,
            ctrs: [0; MAX_FETCH_WIDTH],
            useful: 0,
        }
    }
}

/// Per-slot metadata layout constants.
mod meta_layout {
    pub const PROVIDER: u32 = 0; // 4 bits: provider table + 1 (0 = none)
    pub const ALT: u32 = 4; // 4 bits: alternate table + 1 (0 = none)
    pub const PROV_U: u32 = 8; // 2 bits: provider usefulness at predict
    pub const CTRS: u32 = 10; // 8 x 3 bits: provider counters per slot
    pub const ALT_TAKEN: u32 = 34; // 8 bits: alternate direction per slot
    pub const USED_ALT: u32 = 42; // 8 bits: whether alt was used per slot
    pub const ALT_VALID: u32 = 50; // 8 bits: alt provided a direction per slot
}

/// A multi-table TAGE predictor sub-component.
#[derive(Debug)]
pub struct Tage {
    cfg: TageConfig,
    tables: Vec<SramModel<TageEntry>>,
    use_alt_on_na: SaturatingCounter,
    rng: SplitMix64,
    update_count: u64,
    baseline: Option<(SaturatingCounter, SplitMix64, u64)>,
}

impl Tage {
    /// Builds a TAGE component.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent: mismatched per-table
    /// vectors, non-power-of-two entries, non-increasing history lengths,
    /// or latency below 2.
    pub fn new(cfg: TageConfig) -> Self {
        assert_eq!(
            cfg.tag_bits.len(),
            cfg.hist_lengths.len(),
            "per-table parameter vectors must agree"
        );
        assert!(
            !cfg.hist_lengths.is_empty(),
            "TAGE needs at least one table"
        );
        assert!(
            cfg.hist_lengths.windows(2).all(|w| w[0] < w[1]),
            "history lengths must strictly increase"
        );
        assert!(
            bits::is_pow2(cfg.table_entries),
            "table entries must be a power of two"
        );
        assert!(cfg.latency >= 2, "TAGE reads history: latency >= 2");
        assert!(cfg.counter_bits <= 3, "meta layout packs 3-bit counters");
        let tables = cfg
            .tag_bits
            .iter()
            .map(|&tb| {
                let entry_bits = 1
                    + tb as u64
                    + cfg.width as u64 * cfg.counter_bits as u64
                    + cfg.useful_bits as u64;
                SramModel::new(
                    cfg.table_entries,
                    entry_bits,
                    PortKind::DualPort,
                    TageEntry::default(),
                )
            })
            .collect();
        Self {
            tables,
            // Start favouring the provider: newly-allocated entries speak
            // for themselves until the chooser learns otherwise.
            use_alt_on_na: SaturatingCounter::new(4, 0),
            rng: SplitMix64::new(0xc0b2a),
            cfg,
            update_count: 0,
            baseline: None,
        }
    }

    /// The component's configuration.
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }

    /// Sets the response latency — used by the Section VI-A experiment,
    /// which compares a 2-cycle against a 3-cycle TAGE arbitration. The
    /// interface lets the component vary its latency "in isolation from
    /// other sub-components".
    pub fn set_latency(&mut self, latency: u8) {
        assert!(latency >= 2, "TAGE reads history: latency >= 2");
        self.cfg.latency = latency;
    }

    fn index(&self, t: usize, pc: u64, ghist: &HistoryRegister) -> u64 {
        let n = bits::clog2(self.cfg.table_entries);
        let hl = self.cfg.hist_lengths[t].min(ghist.width());
        let h = ghist.folded(hl, n);
        (bits::mix64(pc >> 1) ^ h ^ (t as u64).wrapping_mul(0x9e37)) & bits::mask(n)
    }

    fn tag(&self, t: usize, pc: u64, ghist: &HistoryRegister) -> u64 {
        let tb = self.cfg.tag_bits[t];
        let hl = self.cfg.hist_lengths[t].min(ghist.width());
        let h1 = ghist.folded(hl, tb);
        let h2 = ghist.folded(hl, tb.saturating_sub(1).max(1));
        ((bits::mix64(pc >> 1) >> 17) ^ h1 ^ (h2 << 1)) & bits::mask(tb)
    }

    fn counter(&self, raw: u8) -> SaturatingCounter {
        let mut c = SaturatingCounter::new(self.cfg.counter_bits, 0);
        c.set(raw);
        c
    }

    fn weak(&self, raw: u8) -> bool {
        let c = self.counter(raw);
        let mid = c.midpoint();
        c.value() == mid || c.value() + 1 == mid
    }

    fn age_all(&mut self) {
        for t in 0..self.tables.len() {
            for i in 0..self.cfg.table_entries {
                let e = self.tables[t].peek(i).clone();
                if e.valid && e.useful > 0 {
                    let mut e = e;
                    e.useful >>= 1;
                    self.tables[t].poke(i, e);
                }
            }
        }
    }
}

impl Component for Tage {
    fn kind(&self) -> &'static str {
        "tage"
    }

    fn latency(&self) -> u8 {
        self.cfg.latency
    }

    fn meta_bits(&self) -> u32 {
        58
    }

    fn field_profile(&self) -> FieldProfile {
        // Overrides the direction on a tagged hit (or via the base table's
        // alternate), nothing when no table provides.
        FieldProfile {
            may: FieldSet::TAKEN,
            always: FieldSet::NONE,
        }
    }

    fn required_ghist_bits(&self) -> u32 {
        self.cfg.hist_lengths.last().copied().unwrap_or(0)
    }

    fn index_functions(&self) -> Vec<IndexDescriptor> {
        let n = bits::clog2(self.cfg.table_entries);
        self.cfg
            .hist_lengths
            .iter()
            .enumerate()
            .map(|(i, &hl)| IndexDescriptor {
                table: format!("tage-t{i}"),
                sets: self.cfg.table_entries,
                pc_bits: n,
                ghist_bits: hl,
                lhist_bits: 0,
                path_bits: 0,
            })
            .collect()
    }

    fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        for (i, t) in self.tables.iter().enumerate() {
            r.add_sram(format!("tage-t{i}"), t.spec());
        }
        r.add_flops(4 + 64); // use_alt counter + allocation LFSR
        r
    }

    fn accesses(&self) -> Vec<crate::types::AccessReport> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (reads, writes) = t.access_counts();
                crate::types::AccessReport {
                    name: format!("t{i}"),
                    spec: t.spec(),
                    reads,
                    writes,
                    rows_touched: t.rows_touched(),
                }
            })
            .collect()
    }

    fn port_violations(&self) -> usize {
        self.tables.iter().map(|t| t.violations().len()).sum()
    }

    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        let mut pred = PredictionBundle::new(q.width);
        let mut meta = 0u64;
        let Some(h) = &q.hist else {
            return Response {
                pred,
                meta: Meta(0),
            };
        };
        // Find provider (longest hit) and alternate (next hit).
        let mut provider: Option<(usize, TageEntry)> = None;
        let mut alt: Option<(usize, TageEntry)> = None;
        for t in (0..self.tables.len()).rev() {
            let idx = self.index(t, q.pc, h.ghist);
            let tag = self.tag(t, q.pc, h.ghist);
            self.tables[t].begin_cycle(q.cycle);
            let e = self.tables[t].read(idx).clone();
            if e.valid && e.tag == tag {
                if provider.is_none() {
                    provider = Some((t, e));
                } else {
                    alt = Some((t, e));
                    break;
                }
            }
        }
        use meta_layout::*;
        if let Some((pt, pe)) = &provider {
            meta |= ((*pt as u64 + 1) & 0xf) << PROVIDER;
            meta |= ((pe.useful as u64) & 0x3) << PROV_U;
            let use_alt_global = self.use_alt_on_na.is_taken();
            for i in 0..q.width as usize {
                let pc_ctr = pe.ctrs[i];
                meta |= ((pc_ctr as u64) & 0x7) << (CTRS + 3 * i as u32);
                let newly_weak = pe.useful == 0 && self.weak(pc_ctr);
                let mut taken = self.counter(pc_ctr).is_taken();
                let mut used_alt = false;
                if newly_weak && use_alt_global {
                    if let Some((_, ae)) = &alt {
                        taken = self.counter(ae.ctrs[i]).is_taken();
                        used_alt = true;
                    } else {
                        // Alternate is the base predictor below us:
                        // provide nothing and let predict_in pass through.
                        meta |= 1u64 << (USED_ALT + i as u32);
                        continue;
                    }
                }
                if used_alt {
                    meta |= 1u64 << (USED_ALT + i as u32);
                }
                pred.slot_mut(i).taken = Some(taken);
            }
            if let Some((at, ae)) = &alt {
                meta |= ((*at as u64 + 1) & 0xf) << ALT;
                for i in 0..q.width as usize {
                    if self.counter(ae.ctrs[i]).is_taken() {
                        meta |= 1u64 << (ALT_TAKEN + i as u32);
                    }
                    meta |= 1u64 << (ALT_VALID + i as u32);
                }
            }
        }
        Response {
            pred,
            meta: Meta(meta),
        }
    }

    fn update(&mut self, ev: &UpdateEvent<'_>) {
        use meta_layout::*;
        let ghist = ev.hist.ghist;
        let provider_plus1 = bits::field(ev.meta.0, PROVIDER, 4) as usize;
        let alt_plus1 = bits::field(ev.meta.0, ALT, 4) as usize;
        let prov_u = bits::field(ev.meta.0, PROV_U, 2) as u8;
        let mut provider_writeback: Option<(usize, u64, TageEntry)> = None;

        for r in ev.conditional_branches() {
            self.update_count += 1;
            let slot = r.slot as usize;
            let outcome = r.taken;
            let final_taken = ev.pred.slot(slot).taken.unwrap_or(false);
            let mispredicted = final_taken != outcome;

            if provider_plus1 > 0 {
                let pt = provider_plus1 - 1;
                let idx = self.index(pt, ev.pc, ghist);
                let tag = self.tag(pt, ev.pc, ghist);
                let stored_ctr = bits::field(ev.meta.0, CTRS + 3 * r.slot as u32, 3) as u8;
                let prov_taken = self.counter(stored_ctr).is_taken();
                let alt_valid = bits::field(ev.meta.0, ALT_VALID + r.slot as u32, 1) == 1;
                let alt_taken = bits::field(ev.meta.0, ALT_TAKEN + r.slot as u32, 1) == 1;
                let used_alt = bits::field(ev.meta.0, USED_ALT + r.slot as u32, 1) == 1;

                // Train the use_alt_on_na chooser when the provider entry
                // was newly allocated and the predictions disagreed.
                if prov_u == 0 && self.weak(stored_ctr) && alt_valid && alt_taken != prov_taken {
                    self.use_alt_on_na.train(alt_taken == outcome);
                }

                // Accumulate the provider read-modify; a single write per
                // packet commits it below (one write port per table).
                let mut e = self.tables[pt].peek(idx).clone();
                if e.valid && e.tag == tag {
                    // Train the provider counter from the metadata value.
                    let mut c = self.counter(stored_ctr);
                    c.train(outcome);
                    e.ctrs[slot] = c.value();
                    // Usefulness: trained on provider/alternate disagreement.
                    let alt_dir = if alt_valid { alt_taken } else { final_taken };
                    if prov_taken != alt_dir {
                        let mut u = SaturatingCounter::new(self.cfg.useful_bits, 0);
                        u.set(e.useful);
                        u.train(prov_taken == outcome);
                        e.useful = u.value();
                    }
                    provider_writeback = Some((pt, idx, e));
                }
                let _ = used_alt;
            }

            // Allocate on mispredictions, in a longer-history table.
            if mispredicted {
                let start = if provider_plus1 > 0 {
                    provider_plus1
                } else {
                    0
                };
                if start < self.tables.len() {
                    // Randomized start avoids always allocating in the same
                    // next table (Seznec's anti-ping-pong randomization).
                    let span = self.tables.len() - start;
                    let offset = if span > 1 {
                        (self.rng.below(4) as usize).min(span - 1) / 2
                    } else {
                        0
                    };
                    let mut allocated = false;
                    for t in (start + offset)..self.tables.len() {
                        let idx = self.index(t, ev.pc, ghist);
                        let e = self.tables[t].peek(idx).clone();
                        if !e.valid || e.useful == 0 {
                            let mut ne = TageEntry {
                                valid: true,
                                tag: self.tag(t, ev.pc, ghist),
                                ctrs: [SaturatingCounter::weakly_not_taken(self.cfg.counter_bits)
                                    .value();
                                    MAX_FETCH_WIDTH],
                                useful: 0,
                            };
                            let init = if outcome {
                                SaturatingCounter::weakly_taken(self.cfg.counter_bits)
                            } else {
                                SaturatingCounter::weakly_not_taken(self.cfg.counter_bits)
                            };
                            ne.ctrs[slot] = init.value();
                            self.tables[t].begin_cycle(0);
                            self.tables[t].write(idx, ne);
                            allocated = true;
                            break;
                        }
                    }
                    if !allocated {
                        // All candidates useful: decay them.
                        for t in start..self.tables.len() {
                            let idx = self.index(t, ev.pc, ghist);
                            let mut e = self.tables[t].peek(idx).clone();
                            if e.useful > 0 {
                                e.useful -= 1;
                                self.tables[t].poke(idx, e);
                            }
                        }
                    }
                }
            }

            if self.update_count.is_multiple_of(self.cfg.age_period) {
                self.age_all();
            }
        }

        if let Some((pt, idx, e)) = provider_writeback {
            self.tables[pt].begin_cycle(0);
            self.tables[pt].write(idx, e);
        }
        let _ = alt_plus1;
    }

    fn arm_baseline(&mut self) -> bool {
        for t in &mut self.tables {
            t.arm_baseline();
        }
        self.baseline = Some((self.use_alt_on_na, self.rng.clone(), self.update_count));
        true
    }

    fn reset_baseline(&mut self) {
        for t in &mut self.tables {
            t.reset_to_baseline();
        }
        if let Some((chooser, rng, count)) = &self.baseline {
            self.use_alt_on_na = *chooser;
            self.rng = rng.clone();
            self.update_count = *count;
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(u64::from(self.use_alt_on_na.value()));
        w.write_u64(self.update_count);
        self.rng.save_state(w);
        for table in &self.tables {
            table.save_state(w, |w, e| {
                w.write_bool(e.valid);
                w.write_u64(e.tag);
                for &c in &e.ctrs {
                    w.write_u64(u64::from(c));
                }
                w.write_u64(u64::from(e.useful));
            });
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let ua = r.read_u64_capped("tage use_alt_on_na", 0xff)?;
        self.use_alt_on_na.set(ua as u8);
        self.update_count = r.read_u64("tage update count")?;
        self.rng.load_state(r)?;
        for table in &mut self.tables {
            table.load_state(r, |r| {
                let valid = r.read_bool("tage valid")?;
                let tag = r.read_u64("tage tag")?;
                let mut ctrs = [0u8; MAX_FETCH_WIDTH];
                for c in &mut ctrs {
                    *c = r.read_u64_capped("tage counter", 0xff)? as u8;
                }
                let useful = r.read_u64_capped("tage useful", 0xff)? as u8;
                Ok(TageEntry {
                    valid,
                    tag,
                    ctrs,
                    useful,
                })
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{HistoryView, SlotResolution};
    use crate::types::BranchKind;

    fn predict(t: &mut Tage, pc: u64, ghist: &HistoryRegister) -> Response {
        t.predict(&PredictQuery {
            cycle: 0,
            pc,
            width: 4,
            hist: Some(HistoryView {
                ghist,
                lhist: 0,
                phist: 0,
            }),
        })
    }

    fn update(
        t: &mut Tage,
        pc: u64,
        ghist: &HistoryRegister,
        resp: &Response,
        slot: u8,
        outcome: bool,
    ) {
        // Final prediction = the component's own output here (tests drive
        // TAGE stand-alone).
        let mut final_pred = resp.pred;
        if final_pred.slot(slot as usize).taken.is_none() {
            final_pred.slot_mut(slot as usize).taken = Some(false);
        }
        let res = [SlotResolution {
            slot,
            kind: BranchKind::Conditional,
            taken: outcome,
            target: 0x40,
        }];
        t.update(&UpdateEvent {
            pc,
            width: 4,
            hist: HistoryView {
                ghist,
                lhist: 0,
                phist: 0,
            },
            meta: resp.meta,
            pred: &final_pred,
            resolutions: &res,
            mispredicted_slot: if final_pred.slot(slot as usize).taken == Some(outcome) {
                None
            } else {
                Some(slot)
            },
        });
    }

    /// Runs a history-correlated branch: taken iff the previous outcome of a
    /// "leader" pattern bit is set. A bimodal predictor cannot learn it; a
    /// history predictor can.
    fn run_correlated(t: &mut Tage, iterations: usize) -> (usize, usize) {
        let mut ghist = HistoryRegister::new(64);
        let pc = 0x4_0000;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..iterations {
            let pattern_bit = (i / 3) % 2 == 0; // period-6 pattern
            let outcome = pattern_bit;
            let resp = predict(t, pc, &ghist);
            if i > iterations / 2 {
                total += 1;
                // Effective direction: a TAGE miss falls through to the
                // static not-taken default of the composed pipeline.
                if resp.pred.slot(0).taken.unwrap_or(false) == outcome {
                    correct += 1;
                }
            }
            update(t, pc, &ghist, &resp, 0, outcome);
            ghist.push(outcome);
        }
        (correct, total)
    }

    #[test]
    fn learns_history_pattern() {
        let mut t = Tage::new(TageConfig::paper(4));
        let (correct, total) = run_correlated(&mut t, 400);
        assert!(
            correct * 100 >= total * 95,
            "TAGE should learn a period-6 pattern: {correct}/{total}"
        );
    }

    #[test]
    fn cold_tage_provides_nothing() {
        let mut t = Tage::new(TageConfig::paper(4));
        let ghist = HistoryRegister::new(64);
        let r = predict(&mut t, 0x1234, &ghist);
        for i in 0..4 {
            assert_eq!(r.pred.slot(i).taken, None);
        }
        assert_eq!(r.meta.0, 0);
    }

    #[test]
    fn allocation_on_mispredict_creates_provider() {
        let mut t = Tage::new(TageConfig::paper(4));
        let mut ghist = HistoryRegister::new(64);
        ghist.push_all([true, false, true, true, false]);
        let r = predict(&mut t, 0x8000, &ghist);
        update(&mut t, 0x8000, &ghist, &r, 0, true); // mispredict (None -> false != true)
        let r = predict(&mut t, 0x8000, &ghist);
        assert!(
            bits::field(r.meta.0, meta_layout::PROVIDER, 4) > 0,
            "an entry must have been allocated"
        );
    }

    #[test]
    fn provider_counter_trains_toward_outcome() {
        let mut t = Tage::new(TageConfig::paper(4));
        let mut ghist = HistoryRegister::new(64);
        ghist.push_all([true; 10]);
        // Allocate, then train taken thrice; prediction must be taken.
        for _ in 0..4 {
            let r = predict(&mut t, 0xa000, &ghist);
            update(&mut t, 0xa000, &ghist, &r, 1, true);
        }
        let r = predict(&mut t, 0xa000, &ghist);
        assert_eq!(r.pred.slot(1).taken, Some(true));
    }

    #[test]
    fn latency_override_for_section_6a() {
        let mut t = Tage::new(TageConfig::paper(4));
        assert_eq!(t.latency(), 3);
        t.set_latency(2);
        assert_eq!(t.latency(), 2);
    }

    #[test]
    fn storage_reports_all_tables() {
        let t = Tage::new(TageConfig::paper(8));
        let r = t.storage();
        assert_eq!(r.srams.len(), 7);
        // Per entry: 1 valid + tag + 8x3 counters + 2 useful.
        let expected: u64 = [7u64, 7, 8, 8, 9, 10, 11]
            .iter()
            .map(|tb| 512 * (1 + tb + 24 + 2))
            .sum();
        assert_eq!(r.total_bits() - 68, expected);
    }

    #[test]
    fn distinct_histories_use_distinct_entries() {
        let mut t = Tage::new(TageConfig::paper(4));
        let mut h1 = HistoryRegister::new(64);
        h1.push_all([true; 16]);
        let mut h2 = HistoryRegister::new(64);
        h2.push_all([false; 16]);
        for _ in 0..4 {
            let r = predict(&mut t, 0xb000, &h1);
            update(&mut t, 0xb000, &h1, &r, 0, true);
            let r = predict(&mut t, 0xb000, &h2);
            update(&mut t, 0xb000, &h2, &r, 0, false);
        }
        let r1 = predict(&mut t, 0xb000, &h1);
        let r2 = predict(&mut t, 0xb000, &h2);
        assert_eq!(r1.pred.slot(0).taken, Some(true));
        // Under h2 the default (not-taken) was always right, so TAGE never
        // allocated: no prediction, falling through to not-taken.
        assert!(!r2.pred.slot(0).taken.unwrap_or(false));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_monotone_history_lengths_rejected() {
        let mut cfg = TageConfig::paper(4);
        cfg.hist_lengths = vec![4, 4, 10];
        cfg.tag_bits = vec![7, 7, 8];
        let _ = Tage::new(cfg);
    }
}
