//! A large set-associative branch target buffer (2-cycle "BTB2").
//!
//! The BTB learns the *kind* and *target* of control-flow instructions. It
//! provides a partial prediction (Section III-F): it fills in `kind` and
//! `target` and passes any incoming direction prediction through, exactly
//! like the decoupled BTB of the paper's Fig 3. Set associativity is made
//! affordable by the metadata field, which records the hit way at predict
//! time so the update needs no second tag-match (Section III-G2).

use crate::iface::{
    Component, FieldProfile, FieldSet, IndexDescriptor, PredictQuery, Response, UpdateEvent,
};
use crate::types::{BranchKind, Meta, PredictionBundle, StorageReport};
use cobra_sim::bits;
use cobra_sim::{PortKind, SnapError, SramModel, StateReader, StateWriter};

/// Configuration for a [`Btb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total entries (power of two).
    pub entries: u64,
    /// Ways per set (power of two, ≤ 8).
    pub assoc: u64,
    /// Partial tag width in bits.
    pub tag_bits: u32,
    /// Stored target width in bits (an offset-compressed target field).
    pub target_bits: u32,
    /// Response latency.
    pub latency: u8,
    /// Fetch-packet width in slots.
    pub width: u8,
}

impl BtbConfig {
    /// The paper's 2K-entry, 2-cycle BTB. Targets are stored as
    /// offset-compressed 22-bit fields and tags are partial, the standard
    /// storage optimizations (Section II-A cites \[37\], \[40\] on predictor
    /// storage efficiency).
    pub fn large(width: u8) -> Self {
        Self {
            entries: 2048,
            assoc: 4,
            tag_bits: 12,
            target_bits: 22,
            latency: 2,
            width,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    kind: Option<BranchKind>,
    target: u64,
}

/// A set-associative BTB, banked by prediction slot.
#[derive(Debug)]
pub struct Btb {
    cfg: BtbConfig,
    ways: Vec<SramModel<BtbEntry>>,
    /// Round-robin replacement pointer (a small flop in hardware).
    victim_ptr: u64,
    armed_victim_ptr: Option<u64>,
}

impl Btb {
    /// Builds a BTB.
    ///
    /// # Panics
    ///
    /// Panics if geometry parameters are not powers of two or the
    /// associativity exceeds 8.
    pub fn new(cfg: BtbConfig) -> Self {
        assert!(bits::is_pow2(cfg.entries), "entries must be a power of two");
        assert!(
            bits::is_pow2(cfg.assoc) && cfg.assoc <= 8,
            "assoc must be a power of two <= 8"
        );
        assert!(cfg.entries >= cfg.assoc, "fewer entries than ways");
        assert!(cfg.latency >= 1, "latency must be >= 1");
        let sets = cfg.entries / cfg.assoc;
        assert!(
            sets.is_multiple_of(cfg.width as u64),
            "sets must divide across slot banks"
        );
        let entry_bits = 1 + cfg.tag_bits as u64 + 3 + cfg.target_bits as u64;
        // Each way is banked by prediction slot: a packet's parallel
        // lookups touch distinct banks.
        let ways = (0..cfg.assoc)
            .map(|_| {
                SramModel::new_banked(
                    sets,
                    entry_bits,
                    PortKind::DualPort,
                    cfg.width as u64,
                    BtbEntry::default(),
                )
            })
            .collect();
        Self {
            cfg,
            ways,
            victim_ptr: 0,
            armed_victim_ptr: None,
        }
    }

    /// The BTB's configuration.
    pub fn config(&self) -> &BtbConfig {
        &self.cfg
    }

    fn sets(&self) -> u64 {
        self.cfg.entries / self.cfg.assoc
    }

    fn set_index(&self, slot: usize, slot_pc: u64) -> u64 {
        let rows = self.sets() / self.cfg.width as u64;
        let row = bits::mix64(slot_pc >> 1) & bits::mask(bits::clog2(rows));
        slot as u64 * rows + row
    }

    fn tag(&self, slot_pc: u64) -> u64 {
        (bits::mix64(slot_pc >> 1) >> 24) & bits::mask(self.cfg.tag_bits)
    }

    fn meta_shift(slot: usize) -> u32 {
        // Per slot: 1 hit bit + 3 way bits.
        slot as u32 * 4
    }
}

impl Component for Btb {
    fn kind(&self) -> &'static str {
        "btb"
    }

    fn latency(&self) -> u8 {
        self.cfg.latency
    }

    fn meta_bits(&self) -> u32 {
        self.cfg.width as u32 * 4
    }

    fn field_profile(&self) -> FieldProfile {
        // Populates kind and target on a hit, nothing on a miss.
        FieldProfile {
            may: FieldSet::KIND.union(FieldSet::TARGET),
            always: FieldSet::NONE,
        }
    }

    fn index_functions(&self) -> Vec<IndexDescriptor> {
        // All ways share one set index: a full-width PC hash over the
        // per-slot row space. No history reaches the index.
        let rows = self.sets() / self.cfg.width as u64;
        let pc_bits = bits::clog2(rows);
        (0..self.ways.len())
            .map(|i| IndexDescriptor {
                table: format!("btb-way{i}"),
                sets: rows,
                pc_bits,
                ghist_bits: 0,
                lhist_bits: 0,
                path_bits: 0,
            })
            .collect()
    }

    fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        for (i, way) in self.ways.iter().enumerate() {
            r.add_sram(format!("btb-way{i}"), way.spec());
        }
        r.add_flops(8); // replacement pointer
        r
    }

    fn accesses(&self) -> Vec<crate::types::AccessReport> {
        self.ways
            .iter()
            .enumerate()
            .map(|(i, way)| {
                let (reads, writes) = way.access_counts();
                crate::types::AccessReport {
                    name: format!("way{i}"),
                    spec: way.spec(),
                    reads,
                    writes,
                    rows_touched: way.rows_touched(),
                }
            })
            .collect()
    }

    fn port_violations(&self) -> usize {
        self.ways.iter().map(|t| t.violations().len()).sum()
    }

    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        let mut pred = PredictionBundle::new(q.width);
        let mut meta = 0u64;
        // One accounting cycle per way per packet: every slot reads its
        // own bank, so per-bank counts (and hence violations) match the
        // per-lookup reset exactly while skipping width-1 counter fills.
        for way in &mut self.ways {
            way.begin_cycle(q.cycle);
        }
        let rows = self.sets() / self.cfg.width as u64;
        let row_mask = bits::mask(bits::clog2(rows));
        let tag_mask = bits::mask(self.cfg.tag_bits);
        for i in 0..q.width as usize {
            let h = bits::mix64(q.slot_pc(i) >> 1);
            let set = i as u64 * rows + (h & row_mask);
            let tag = (h >> 24) & tag_mask;
            for (w, way) in self.ways.iter_mut().enumerate() {
                let e = *way.read(set);
                if e.valid && e.tag == tag {
                    pred.slot_mut(i).kind = e.kind;
                    pred.slot_mut(i).set_target(Some(e.target));
                    meta |= (1 | ((w as u64) << 1)) << Self::meta_shift(i);
                    break;
                }
            }
        }
        Response {
            pred,
            meta: Meta(meta),
        }
    }

    fn update(&mut self, ev: &UpdateEvent<'_>) {
        for r in ev.resolutions {
            // Learn targets of taken control flow; refresh the kind of
            // anything that hit.
            let slot_pc = ev.pc + r.slot as u64 * crate::types::SLOT_BYTES;
            let set = self.set_index(r.slot as usize, slot_pc);
            let tag = self.tag(slot_pc);
            let m = ev.meta.0 >> Self::meta_shift(r.slot as usize);
            let hit = m & 1 == 1;
            let hit_way = (m >> 1) & 0x7;
            if hit {
                // Recover the way from metadata: no re-lookup needed.
                let way = &mut self.ways[hit_way as usize];
                way.begin_cycle(0);
                let mut e = *way.peek(set);
                if e.tag == tag {
                    e.kind = Some(r.kind);
                    if r.taken {
                        e.target = r.target;
                    }
                    way.write(set, e);
                }
            } else if r.taken {
                let victim = self.victim_ptr % self.cfg.assoc;
                self.victim_ptr = self.victim_ptr.wrapping_add(1);
                let way = &mut self.ways[victim as usize];
                way.begin_cycle(0);
                way.write(
                    set,
                    BtbEntry {
                        valid: true,
                        tag,
                        kind: Some(r.kind),
                        target: r.target,
                    },
                );
            }
        }
    }

    fn arm_baseline(&mut self) -> bool {
        for way in &mut self.ways {
            way.arm_baseline();
        }
        self.armed_victim_ptr = Some(self.victim_ptr);
        true
    }

    fn reset_baseline(&mut self) {
        for way in &mut self.ways {
            way.reset_to_baseline();
        }
        if let Some(p) = self.armed_victim_ptr {
            self.victim_ptr = p;
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.victim_ptr);
        for way in &self.ways {
            way.save_state(w, |w, e| {
                w.write_bool(e.valid);
                w.write_u64(e.tag);
                w.write_u64(BranchKind::encode_opt(e.kind));
                w.write_u64(e.target);
            });
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.victim_ptr = r.read_u64("btb victim ptr")?;
        for way in &mut self.ways {
            way.load_state(r, |r| {
                Ok(BtbEntry {
                    valid: r.read_bool("btb valid")?,
                    tag: r.read_u64("btb tag")?,
                    kind: BranchKind::decode_opt(r.read_u64("btb kind")?)?,
                    target: r.read_u64("btb target")?,
                })
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{HistoryView, SlotResolution};
    use cobra_sim::HistoryRegister;

    fn query(pc: u64) -> PredictQuery<'static> {
        PredictQuery {
            cycle: 0,
            pc,
            width: 4,
            hist: None,
        }
    }

    fn resolve(btb: &mut Btb, pc: u64, meta: Meta, res: &[SlotResolution]) {
        let ghist = HistoryRegister::new(8);
        let pred = PredictionBundle::new(4);
        btb.update(&UpdateEvent {
            pc,
            width: 4,
            hist: HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist: 0,
            },
            meta,
            pred: &pred,
            resolutions: res,
            mispredicted_slot: None,
        });
    }

    #[test]
    fn learns_taken_branch_target() {
        let mut btb = Btb::new(BtbConfig::large(4));
        let r = btb.predict(&query(0x1000));
        assert!(r.pred.slot(1).target().is_none());
        resolve(
            &mut btb,
            0x1000,
            r.meta,
            &[SlotResolution {
                slot: 1,
                kind: BranchKind::Conditional,
                taken: true,
                target: 0x2000,
            }],
        );
        let r = btb.predict(&query(0x1000));
        assert_eq!(r.pred.slot(1).target(), Some(0x2000));
        assert_eq!(r.pred.slot(1).kind, Some(BranchKind::Conditional));
        assert_eq!(r.pred.slot(1).taken, None, "BTB never predicts direction");
    }

    #[test]
    fn does_not_install_not_taken_branches() {
        let mut btb = Btb::new(BtbConfig::large(4));
        let r = btb.predict(&query(0x1000));
        resolve(
            &mut btb,
            0x1000,
            r.meta,
            &[SlotResolution {
                slot: 0,
                kind: BranchKind::Conditional,
                taken: false,
                target: 0,
            }],
        );
        let r = btb.predict(&query(0x1000));
        assert!(r.pred.slot(0).kind.is_none());
    }

    #[test]
    fn retarget_on_hit_updates_in_place() {
        let mut btb = Btb::new(BtbConfig::large(4));
        let r = btb.predict(&query(0x3000));
        resolve(
            &mut btb,
            0x3000,
            r.meta,
            &[SlotResolution {
                slot: 2,
                kind: BranchKind::Indirect,
                taken: true,
                target: 0xaaa0,
            }],
        );
        let r = btb.predict(&query(0x3000));
        assert_eq!(r.pred.slot(2).target(), Some(0xaaa0));
        resolve(
            &mut btb,
            0x3000,
            r.meta,
            &[SlotResolution {
                slot: 2,
                kind: BranchKind::Indirect,
                taken: true,
                target: 0xbbb0,
            }],
        );
        let r = btb.predict(&query(0x3000));
        assert_eq!(r.pred.slot(2).target(), Some(0xbbb0));
    }

    #[test]
    fn associativity_holds_conflicting_pcs() {
        // Four PCs mapping to different sets would be luck; instead verify
        // that installing many distinct branches keeps at least the most
        // recent `assoc` alive in some set by checking a recently-installed
        // branch still hits after several other installs.
        let mut btb = Btb::new(BtbConfig {
            entries: 64,
            assoc: 4,
            ..BtbConfig::large(4)
        });
        let pcs: Vec<u64> = (0..8).map(|i| 0x1_0000 + i * 0x400).collect();
        for &pc in &pcs {
            let r = btb.predict(&query(pc));
            resolve(
                &mut btb,
                pc,
                r.meta,
                &[SlotResolution {
                    slot: 0,
                    kind: BranchKind::Jump,
                    taken: true,
                    target: pc + 0x88,
                }],
            );
        }
        let last = *pcs.last().unwrap();
        let r = btb.predict(&query(last));
        assert_eq!(r.pred.slot(0).target(), Some(last + 0x88));
    }

    #[test]
    fn meta_records_hit_way() {
        let mut btb = Btb::new(BtbConfig::large(4));
        let r = btb.predict(&query(0x5000));
        resolve(
            &mut btb,
            0x5000,
            r.meta,
            &[SlotResolution {
                slot: 0,
                kind: BranchKind::Call,
                taken: true,
                target: 0x9000,
            }],
        );
        let r = btb.predict(&query(0x5000));
        assert_eq!(r.meta.0 & 1, 1, "hit bit set for slot 0");
    }

    #[test]
    fn storage_scales_with_geometry() {
        let btb = Btb::new(BtbConfig::large(8));
        let bits = btb.storage().total_bits();
        // 2048 entries x (1 valid + 12 tag + 3 kind + 22 target) + 8 flops
        assert_eq!(bits, 2048 * 38 + 8);
    }

    #[test]
    fn slots_are_independent() {
        let mut btb = Btb::new(BtbConfig::large(4));
        let r = btb.predict(&query(0x7000));
        resolve(
            &mut btb,
            0x7000,
            r.meta,
            &[
                SlotResolution {
                    slot: 0,
                    kind: BranchKind::Conditional,
                    taken: true,
                    target: 0x100,
                },
                SlotResolution {
                    slot: 3,
                    kind: BranchKind::Ret,
                    taken: true,
                    target: 0x200,
                },
            ],
        );
        let r = btb.predict(&query(0x7000));
        assert_eq!(r.pred.slot(0).target(), Some(0x100));
        assert_eq!(r.pred.slot(3).kind, Some(BranchKind::Ret));
        assert!(r.pred.slot(1).kind.is_none());
    }
}
