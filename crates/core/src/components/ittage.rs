//! An ITTAGE-style indirect-target predictor (extension component).
//!
//! The paper's designs predict indirect-jump targets only through the BTB
//! (last-target prediction), and its Section III-G notes the library is "a
//! representative subset" that other predictor types can extend. This
//! component follows Seznec's ITTAGE: tagged tables over geometrically
//! increasing global-history lengths store full targets, so polymorphic
//! call sites and switch dispatch get history-correlated target
//! prediction.
//!
//! The component provides a *partial* prediction in the interface's sense:
//! it overrides only the `target` of slots its `predict_in` already marks
//! as indirect jumps, passing everything else through — the same
//! decoupling the paper's Fig 3 shows for the BTB.

use crate::iface::{
    Component, FieldProfile, FieldSet, IndexDescriptor, PredictQuery, Response, UpdateEvent,
};
use crate::types::{BranchKind, Meta, PredictionBundle, StorageReport};
use cobra_sim::bits;
use cobra_sim::{
    HistoryRegister, PortKind, SaturatingCounter, SnapError, SramModel, StateReader, StateWriter,
};

/// Configuration for an [`Ittage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IttageConfig {
    /// Entries per tagged table (power of two).
    pub table_entries: u64,
    /// Tag width per table.
    pub tag_bits: Vec<u32>,
    /// Global-history length per table (0 = PC-only base table).
    pub hist_lengths: Vec<u32>,
    /// Stored target width (offset-compressed).
    pub target_bits: u32,
    /// Response latency.
    pub latency: u8,
    /// Fetch-packet width in slots.
    pub width: u8,
}

impl IttageConfig {
    /// A three-table ITTAGE over 0/8/24-bit histories.
    pub fn small(width: u8) -> Self {
        Self {
            table_entries: 256,
            tag_bits: vec![9, 10, 11],
            hist_lengths: vec![0, 8, 24],
            target_bits: 22,
            latency: 3,
            width,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ItEntry {
    valid: bool,
    tag: u64,
    target: u64,
    /// Confidence counter raw value (2-bit).
    ctr: u8,
}

/// A tagged geometric-history indirect-target predictor.
#[derive(Debug)]
pub struct Ittage {
    cfg: IttageConfig,
    tables: Vec<SramModel<ItEntry>>,
}

mod meta_layout {
    pub const SLOT: u32 = 0; // 3 bits: slot the prediction applied to
    pub const PROVIDER: u32 = 3; // 3 bits: provider table + 1 (0 = none)
    pub const CTR: u32 = 6; // 2 bits: provider confidence at predict
}

impl Ittage {
    /// Builds the predictor.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent per-table vectors, non-power-of-two entries,
    /// or latency below 2 (history user).
    pub fn new(cfg: IttageConfig) -> Self {
        assert_eq!(cfg.tag_bits.len(), cfg.hist_lengths.len());
        assert!(!cfg.hist_lengths.is_empty(), "need at least one table");
        assert!(bits::is_pow2(cfg.table_entries));
        assert!(cfg.latency >= 2, "history users need latency >= 2");
        assert!(
            cfg.table_entries.is_multiple_of(cfg.width as u64),
            "entries must divide across slot banks"
        );
        let tables = cfg
            .tag_bits
            .iter()
            .map(|&tb| {
                SramModel::new_banked(
                    cfg.table_entries,
                    1 + tb as u64 + cfg.target_bits as u64 + 2,
                    PortKind::DualPort,
                    cfg.width as u64,
                    ItEntry::default(),
                )
            })
            .collect();
        Self { cfg, tables }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &IttageConfig {
        &self.cfg
    }

    fn index(&self, t: usize, slot: usize, slot_pc: u64, ghist: &HistoryRegister) -> u64 {
        let rows = self.cfg.table_entries / self.cfg.width as u64;
        let n = bits::clog2(rows);
        let hl = self.cfg.hist_lengths[t].min(ghist.width());
        let h = if hl == 0 { 0 } else { ghist.folded(hl, n) };
        let row = (bits::mix64(slot_pc >> 1) ^ h ^ ((t as u64) << 5)) & bits::mask(n);
        slot as u64 * rows + row
    }

    fn tag(&self, t: usize, slot_pc: u64, ghist: &HistoryRegister) -> u64 {
        let tb = self.cfg.tag_bits[t];
        let hl = self.cfg.hist_lengths[t].min(ghist.width());
        let h = if hl == 0 { 0 } else { ghist.folded(hl, tb) };
        ((bits::mix64(slot_pc >> 1) >> 19) ^ (h << 1)) & bits::mask(tb)
    }

    /// Longest-history hit for `slot_pc`, as `(table, entry)`.
    fn lookup(
        &mut self,
        cycle: u64,
        slot: usize,
        slot_pc: u64,
        ghist: &HistoryRegister,
    ) -> Option<(usize, ItEntry)> {
        for t in (0..self.tables.len()).rev() {
            let idx = self.index(t, slot, slot_pc, ghist);
            self.tables[t].begin_cycle(cycle);
            let e = *self.tables[t].read(idx);
            if e.valid && e.tag == self.tag(t, slot_pc, ghist) {
                return Some((t, e));
            }
        }
        None
    }
}

impl Component for Ittage {
    fn kind(&self) -> &'static str {
        "ittage"
    }

    fn latency(&self) -> u8 {
        self.cfg.latency
    }

    fn meta_bits(&self) -> u32 {
        8
    }

    fn field_profile(&self) -> FieldProfile {
        // Overrides the target of indirect branches on a tagged hit only.
        FieldProfile {
            may: FieldSet::TARGET,
            always: FieldSet::NONE,
        }
    }

    fn required_ghist_bits(&self) -> u32 {
        self.cfg.hist_lengths.iter().copied().max().unwrap_or(0)
    }

    fn index_functions(&self) -> Vec<IndexDescriptor> {
        let rows = self.cfg.table_entries / self.cfg.width as u64;
        let n = bits::clog2(rows);
        self.cfg
            .hist_lengths
            .iter()
            .enumerate()
            .map(|(i, &hl)| IndexDescriptor {
                table: format!("ittage-t{i}"),
                sets: rows,
                pc_bits: n,
                ghist_bits: hl,
                lhist_bits: 0,
                path_bits: 0,
            })
            .collect()
    }

    fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        for (i, t) in self.tables.iter().enumerate() {
            r.add_sram(format!("ittage-t{i}"), t.spec());
        }
        r
    }

    fn accesses(&self) -> Vec<crate::types::AccessReport> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (reads, writes) = t.access_counts();
                crate::types::AccessReport {
                    name: format!("t{i}"),
                    spec: t.spec(),
                    reads,
                    writes,
                    rows_touched: t.rows_touched(),
                }
            })
            .collect()
    }

    fn port_violations(&self) -> usize {
        self.tables.iter().map(|t| t.violations().len()).sum()
    }

    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        // Like the BTB, the ITTAGE looks every slot up in parallel; only
        // addresses where an indirect jump was actually observed ever have
        // matching tags, so a hit identifies an indirect site by itself.
        let mut pred = PredictionBundle::new(q.width);
        let mut meta = 0u64;
        if let Some(h) = &q.hist {
            for i in 0..q.width as usize {
                if let Some((t, e)) = self.lookup(q.cycle, i, q.slot_pc(i), h.ghist) {
                    if e.ctr >= 1 {
                        pred.slot_mut(i).set_target(Some(e.target));
                        use meta_layout::*;
                        meta |= (i as u64 & 0x7) << SLOT;
                        meta |= ((t as u64 + 1) & 0x7) << PROVIDER;
                        meta |= (e.ctr as u64 & 0x3) << CTR;
                    }
                }
            }
        }
        Response {
            pred,
            meta: Meta(meta),
        }
    }

    fn update(&mut self, ev: &UpdateEvent<'_>) {
        for r in ev.resolutions {
            if !matches!(r.kind, BranchKind::Indirect) || !r.taken {
                continue;
            }
            let slot_pc = ev.pc + r.slot as u64 * crate::types::SLOT_BYTES;
            let ghist = ev.hist.ghist;
            // Train the provider; allocate on a wrong or missing target.
            let slot = r.slot as usize;
            let provider = {
                let mut found = None;
                for t in (0..self.tables.len()).rev() {
                    let idx = self.index(t, slot, slot_pc, ghist);
                    let e = *self.tables[t].peek(idx);
                    if e.valid && e.tag == self.tag(t, slot_pc, ghist) {
                        found = Some((t, idx, e));
                        break;
                    }
                }
                found
            };
            match provider {
                Some((t, idx, mut e)) => {
                    let mut c = SaturatingCounter::new(2, 0);
                    c.set(e.ctr);
                    if e.target == r.target {
                        c.increment();
                        e.ctr = c.value();
                        self.tables[t].poke(idx, e);
                    } else {
                        c.decrement();
                        e.ctr = c.value();
                        if c.value() == 0 {
                            e.target = r.target;
                        }
                        self.tables[t].poke(idx, e);
                        // Also allocate in a longer table for this context.
                        if t + 1 < self.tables.len() {
                            let nt = t + 1;
                            let nidx = self.index(nt, slot, slot_pc, ghist);
                            let ntag = self.tag(nt, slot_pc, ghist);
                            let cur = *self.tables[nt].peek(nidx);
                            if !cur.valid || cur.ctr == 0 {
                                self.tables[nt].poke(
                                    nidx,
                                    ItEntry {
                                        valid: true,
                                        tag: ntag,
                                        target: r.target,
                                        ctr: 1,
                                    },
                                );
                            }
                        }
                    }
                }
                None => {
                    // Allocate in the base table.
                    let idx = self.index(0, slot, slot_pc, ghist);
                    let tag0 = self.tag(0, slot_pc, ghist);
                    let cur = *self.tables[0].peek(idx);
                    if !cur.valid || cur.ctr == 0 {
                        self.tables[0].poke(
                            idx,
                            ItEntry {
                                valid: true,
                                tag: tag0,
                                target: r.target,
                                ctr: 1,
                            },
                        );
                    } else {
                        let mut e = cur;
                        e.ctr -= 1;
                        self.tables[0].poke(idx, e);
                    }
                }
            }
        }
    }

    fn arm_baseline(&mut self) -> bool {
        for t in &mut self.tables {
            t.arm_baseline();
        }
        true
    }

    fn reset_baseline(&mut self) {
        for t in &mut self.tables {
            t.reset_to_baseline();
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        for table in &self.tables {
            table.save_state(w, |w, e| {
                w.write_bool(e.valid);
                w.write_u64(e.tag);
                w.write_u64(e.target);
                w.write_u64(u64::from(e.ctr));
            });
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        for table in &mut self.tables {
            table.load_state(r, |r| {
                Ok(ItEntry {
                    valid: r.read_bool("ittage valid")?,
                    tag: r.read_u64("ittage tag")?,
                    target: r.read_u64("ittage target")?,
                    ctr: r.read_u64_capped("ittage counter", 0xff)? as u8,
                })
            })?;
        }
        Ok(())
    }
}

impl Ittage {
    /// Looks up a predicted target for an indirect CFI at `slot_pc` under
    /// `ghist`, with its confidence. Used by tests and by hosts wanting a
    /// direct target query outside the composed pipeline.
    pub fn predict_target(
        &mut self,
        cycle: u64,
        slot_pc: u64,
        ghist: &HistoryRegister,
    ) -> Option<(u64, u8)> {
        self.lookup(cycle, 0, slot_pc, ghist)
            .map(|(_, e)| (e.target, e.ctr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{HistoryView, SlotResolution};

    fn resolve(it: &mut Ittage, pc: u64, ghist: &HistoryRegister, target: u64) {
        let pred = PredictionBundle::new(4);
        let res = [SlotResolution {
            slot: 0,
            kind: BranchKind::Indirect,
            taken: true,
            target,
        }];
        it.update(&UpdateEvent {
            pc,
            width: 4,
            hist: HistoryView {
                ghist,
                lhist: 0,
                phist: 0,
            },
            meta: Meta::ZERO,
            pred: &pred,
            resolutions: &res,
            mispredicted_slot: None,
        });
    }

    #[test]
    fn learns_a_monomorphic_target() {
        let mut it = Ittage::new(IttageConfig::small(4));
        let ghist = HistoryRegister::new(32);
        assert!(it.predict_target(0, 0x1000, &ghist).is_none());
        resolve(&mut it, 0x1000, &ghist, 0x4000);
        resolve(&mut it, 0x1000, &ghist, 0x4000);
        let (t, ctr) = it.predict_target(0, 0x1000, &ghist).expect("hit");
        assert_eq!(t, 0x4000);
        assert!(ctr >= 1);
    }

    #[test]
    fn history_separates_polymorphic_targets() {
        let mut it = Ittage::new(IttageConfig::small(4));
        let mut h1 = HistoryRegister::new(32);
        h1.push_all([true; 10]);
        let mut h2 = HistoryRegister::new(32);
        h2.push_all([false; 10]);
        // Same site, two targets selected by history.
        for _ in 0..6 {
            resolve(&mut it, 0x2000, &h1, 0xaaa0);
            resolve(&mut it, 0x2000, &h2, 0xbbb0);
        }
        let (t1, _) = it.predict_target(0, 0x2000, &h1).expect("hit under h1");
        let (t2, _) = it.predict_target(0, 0x2000, &h2).expect("hit under h2");
        assert_eq!(t1, 0xaaa0, "history 1 selects target A");
        assert_eq!(t2, 0xbbb0, "history 2 selects target B");
    }

    #[test]
    fn target_change_retrains_after_confidence_drains() {
        let mut it = Ittage::new(IttageConfig::small(4));
        let ghist = HistoryRegister::new(32);
        for _ in 0..4 {
            resolve(&mut it, 0x3000, &ghist, 0x1_1110);
        }
        // Switch targets: confidence must drain before replacement.
        for _ in 0..6 {
            resolve(&mut it, 0x3000, &ghist, 0x2_2220);
        }
        let (t, _) = it.predict_target(0, 0x3000, &ghist).expect("hit");
        assert_eq!(t, 0x2_2220);
    }

    #[test]
    fn storage_reports_tables() {
        let it = Ittage::new(IttageConfig::small(8));
        assert_eq!(it.storage().srams.len(), 3);
    }

    #[test]
    fn non_indirect_resolutions_are_ignored() {
        let mut it = Ittage::new(IttageConfig::small(4));
        let ghist = HistoryRegister::new(32);
        let pred = PredictionBundle::new(4);
        let res = [SlotResolution {
            slot: 0,
            kind: BranchKind::Conditional,
            taken: true,
            target: 0x4000,
        }];
        it.update(&UpdateEvent {
            pc: 0x1000,
            width: 4,
            hist: HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist: 0,
            },
            meta: Meta::ZERO,
            pred: &pred,
            resolutions: &res,
            mispredicted_slot: None,
        });
        assert!(it.predict_target(0, 0x1000, &ghist).is_none());
    }
}
