//! A single partially-tagged global-history counter table ("GTAG3").
//!
//! This is the backing predictor of the paper's "B2" design — the predictor
//! shipped with the original BOOM core: one table of fetch-packet entries,
//! each holding a partial tag plus one counter per prediction slot, indexed
//! and tagged by hashes of the fetch PC and global history. On a tag miss
//! it predicts nothing (pass-through); entries are allocated when the
//! pipeline mispredicts.

use crate::iface::{
    Component, FieldProfile, FieldSet, IndexDescriptor, PredictQuery, Response, UpdateEvent,
};
use crate::types::{Meta, PredictionBundle, StorageReport};
use cobra_sim::bits;
use cobra_sim::{
    HistoryRegister, PortKind, SaturatingCounter, SnapError, SramModel, StateReader, StateWriter,
};

/// Configuration for a [`Gtag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtagConfig {
    /// Number of packet entries (power of two).
    pub entries: u64,
    /// Partial tag width in bits.
    pub tag_bits: u32,
    /// Counter width in bits.
    pub counter_bits: u8,
    /// Global-history length hashed into index and tag.
    pub hist_bits: u32,
    /// Response latency.
    pub latency: u8,
    /// Fetch-packet width in slots.
    pub width: u8,
}

impl GtagConfig {
    /// The B2 design's 2K-entry partially-tagged table over a 16-bit global
    /// history.
    pub fn b2(width: u8) -> Self {
        Self {
            entries: 2048,
            tag_bits: 10,
            counter_bits: 2,
            hist_bits: 16,
            latency: 3,
            width,
        }
    }
}

#[derive(Debug, Clone)]
struct GtagEntry {
    valid: bool,
    tag: u64,
    ctrs: [u8; crate::types::MAX_FETCH_WIDTH],
    /// Usefulness: protects entries that have predicted correctly from
    /// being evicted by every passing misprediction.
    useful: u8,
}

impl Default for GtagEntry {
    fn default() -> Self {
        Self {
            valid: false,
            tag: 0,
            ctrs: [0; crate::types::MAX_FETCH_WIDTH],
            useful: 0,
        }
    }
}

/// A partially-tagged global-history table with per-slot counters.
#[derive(Debug)]
pub struct Gtag {
    cfg: GtagConfig,
    table: SramModel<GtagEntry>,
}

impl Gtag {
    /// Builds the table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or the latency is below 2
    /// (the component reads global history).
    pub fn new(cfg: GtagConfig) -> Self {
        assert!(bits::is_pow2(cfg.entries), "entries must be a power of two");
        assert!(cfg.latency >= 2, "history users need latency >= 2");
        let entry_bits = 1 + cfg.tag_bits as u64 + cfg.width as u64 * cfg.counter_bits as u64 + 2;
        Self {
            table: SramModel::new(
                cfg.entries,
                entry_bits,
                PortKind::DualPort,
                GtagEntry::default(),
            ),
            cfg,
        }
    }

    /// The table's configuration.
    pub fn config(&self) -> &GtagConfig {
        &self.cfg
    }

    fn index(&self, pc: u64, ghist: &HistoryRegister) -> u64 {
        let n = bits::clog2(self.cfg.entries);
        let h = ghist.folded(self.cfg.hist_bits.min(ghist.width()), n);
        (bits::mix64(pc >> 1) ^ h) & bits::mask(n)
    }

    fn tag(&self, pc: u64, ghist: &HistoryRegister) -> u64 {
        let h = ghist.folded(self.cfg.hist_bits.min(ghist.width()), self.cfg.tag_bits);
        ((bits::mix64(pc >> 1) >> 13) ^ (h << 1)) & bits::mask(self.cfg.tag_bits)
    }

    fn counter(&self, raw: u8) -> SaturatingCounter {
        let mut c = SaturatingCounter::new(self.cfg.counter_bits, 0);
        c.set(raw);
        c
    }
}

impl Component for Gtag {
    fn kind(&self) -> &'static str {
        "gtag"
    }

    fn latency(&self) -> u8 {
        self.cfg.latency
    }

    fn meta_bits(&self) -> u32 {
        1 + self.cfg.width as u32 * self.cfg.counter_bits as u32
    }

    fn field_profile(&self) -> FieldProfile {
        // Overrides the direction on a tag hit, nothing on a miss.
        FieldProfile {
            may: FieldSet::TAKEN,
            always: FieldSet::NONE,
        }
    }

    fn required_ghist_bits(&self) -> u32 {
        self.cfg.hist_bits
    }

    fn index_functions(&self) -> Vec<IndexDescriptor> {
        vec![IndexDescriptor {
            table: "gtag-table".into(),
            sets: self.cfg.entries,
            pc_bits: bits::clog2(self.cfg.entries),
            ghist_bits: self.cfg.hist_bits,
            lhist_bits: 0,
            path_bits: 0,
        }]
    }

    fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        r.add_sram("gtag-table", self.table.spec());
        r
    }

    fn accesses(&self) -> Vec<crate::types::AccessReport> {
        let (reads, writes) = self.table.access_counts();
        vec![crate::types::AccessReport {
            name: "table".into(),
            spec: self.table.spec(),
            reads,
            writes,
            rows_touched: self.table.rows_touched(),
        }]
    }

    fn port_violations(&self) -> usize {
        self.table.violations().len()
    }

    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        self.table.begin_cycle(q.cycle);
        let mut pred = PredictionBundle::new(q.width);
        let mut meta = 0u64;
        if let Some(h) = &q.hist {
            let idx = self.index(q.pc, h.ghist);
            let tag = self.tag(q.pc, h.ghist);
            let e = self.table.read(idx).clone();
            if e.valid && e.tag == tag {
                meta |= 1;
                for i in 0..q.width as usize {
                    let c = self.counter(e.ctrs[i]);
                    pred.slot_mut(i).taken = Some(c.is_taken());
                    meta |= (e.ctrs[i] as u64) << (1 + i as u32 * self.cfg.counter_bits as u32);
                }
            }
        }
        Response {
            pred,
            meta: Meta(meta),
        }
    }

    fn update(&mut self, ev: &UpdateEvent<'_>) {
        self.table.begin_cycle(0);
        let idx = self.index(ev.pc, ev.hist.ghist);
        let tag = self.tag(ev.pc, ev.hist.ghist);
        let hit_at_predict = ev.meta.0 & 1 == 1;
        let cb = self.cfg.counter_bits as u32;
        if hit_at_predict {
            // Train the counters recovered from metadata and write back.
            let mut e = self.table.peek(idx).clone();
            if !(e.valid && e.tag == tag) {
                return; // entry was since reallocated; drop the update
            }
            for r in ev.conditional_branches() {
                let stored = bits::field(ev.meta.0, 1 + r.slot as u32 * cb, cb) as u8;
                let was_correct = self.counter(stored).is_taken() == r.taken;
                let mut c = self.counter(stored);
                c.train(r.taken);
                e.ctrs[r.slot as usize] = c.value();
                let mut u = SaturatingCounter::new(2, 0);
                u.set(e.useful);
                u.train(was_correct);
                e.useful = u.value();
            }
            self.table.write(idx, e);
        } else if ev.mispredicted_slot.is_some() {
            // Allocate on a misprediction the base predictor got wrong —
            // but never over a still-useful entry.
            {
                let cur = self.table.peek(idx).clone();
                if cur.valid && cur.useful > 0 {
                    let mut cur = cur;
                    cur.useful -= 1;
                    self.table.poke(idx, cur);
                    return;
                }
            }
            let mut e = GtagEntry {
                valid: true,
                tag,
                ctrs: [SaturatingCounter::weakly_not_taken(self.cfg.counter_bits).value();
                    crate::types::MAX_FETCH_WIDTH],
                useful: 0,
            };
            for r in ev.conditional_branches() {
                let init = if r.taken {
                    SaturatingCounter::weakly_taken(self.cfg.counter_bits)
                } else {
                    SaturatingCounter::weakly_not_taken(self.cfg.counter_bits)
                };
                e.ctrs[r.slot as usize] = init.value();
            }
            self.table.write(idx, e);
        }
    }

    fn arm_baseline(&mut self) -> bool {
        self.table.arm_baseline();
        true
    }

    fn reset_baseline(&mut self) {
        self.table.reset_to_baseline();
    }

    fn save_state(&self, w: &mut StateWriter) {
        self.table.save_state(w, |w, e| {
            w.write_bool(e.valid);
            w.write_u64(e.tag);
            for &c in &e.ctrs {
                w.write_u64(u64::from(c));
            }
            w.write_u64(u64::from(e.useful));
        });
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.table.load_state(r, |r| {
            let valid = r.read_bool("gtag valid")?;
            let tag = r.read_u64("gtag tag")?;
            let mut ctrs = [0u8; crate::types::MAX_FETCH_WIDTH];
            for c in &mut ctrs {
                *c = r.read_u64_capped("gtag counter", 0xff)? as u8;
            }
            let useful = r.read_u64_capped("gtag useful", 0xff)? as u8;
            Ok(GtagEntry {
                valid,
                tag,
                ctrs,
                useful,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{HistoryView, SlotResolution};
    use crate::types::BranchKind;

    fn cond(slot: u8, taken: bool) -> SlotResolution {
        SlotResolution {
            slot,
            kind: BranchKind::Conditional,
            taken,
            target: 0x40,
        }
    }

    fn run_update(
        g: &mut Gtag,
        pc: u64,
        ghist: &HistoryRegister,
        meta: Meta,
        res: &[SlotResolution],
        mispredicted: bool,
    ) {
        let pred = PredictionBundle::new(4);
        g.update(&UpdateEvent {
            pc,
            width: 4,
            hist: HistoryView {
                ghist,
                lhist: 0,
                phist: 0,
            },
            meta,
            pred: &pred,
            resolutions: res,
            mispredicted_slot: if mispredicted {
                Some(res[0].slot)
            } else {
                None
            },
        });
    }

    fn predict(g: &mut Gtag, pc: u64, ghist: &HistoryRegister) -> Response {
        g.predict(&PredictQuery {
            cycle: 0,
            pc,
            width: 4,
            hist: Some(HistoryView {
                ghist,
                lhist: 0,
                phist: 0,
            }),
        })
    }

    #[test]
    fn misses_until_allocated_on_mispredict() {
        let mut g = Gtag::new(GtagConfig::b2(4));
        let ghist = HistoryRegister::new(32);
        let r = predict(&mut g, 0x1000, &ghist);
        assert_eq!(r.pred.slot(0).taken, None, "tag miss provides nothing");
        // A correct-prediction update must NOT allocate.
        run_update(&mut g, 0x1000, &ghist, r.meta, &[cond(0, true)], false);
        let r = predict(&mut g, 0x1000, &ghist);
        assert_eq!(r.pred.slot(0).taken, None);
        // A mispredict allocates.
        run_update(&mut g, 0x1000, &ghist, r.meta, &[cond(0, true)], true);
        let r = predict(&mut g, 0x1000, &ghist);
        assert_eq!(r.pred.slot(0).taken, Some(true));
    }

    #[test]
    fn history_correlation_separates_contexts() {
        let mut g = Gtag::new(GtagConfig::b2(4));
        let mut h1 = HistoryRegister::new(32);
        h1.push_all([true; 8]);
        let mut h0 = HistoryRegister::new(32);
        h0.push_all([false; 8]);
        let r = predict(&mut g, 0x2000, &h1);
        run_update(&mut g, 0x2000, &h1, r.meta, &[cond(1, true)], true);
        let r = predict(&mut g, 0x2000, &h0);
        run_update(&mut g, 0x2000, &h0, r.meta, &[cond(1, false)], true);
        // Now the same PC predicts differently under the two histories.
        let r1 = predict(&mut g, 0x2000, &h1);
        let r0 = predict(&mut g, 0x2000, &h0);
        assert_eq!(r1.pred.slot(1).taken, Some(true));
        assert_eq!(r0.pred.slot(1).taken, Some(false));
    }

    #[test]
    fn hit_training_strengthens_counters() {
        let mut g = Gtag::new(GtagConfig::b2(4));
        let ghist = HistoryRegister::new(32);
        let r = predict(&mut g, 0x3000, &ghist);
        run_update(&mut g, 0x3000, &ghist, r.meta, &[cond(2, false)], true);
        for _ in 0..3 {
            let r = predict(&mut g, 0x3000, &ghist);
            assert_eq!(r.pred.slot(2).taken, Some(false));
            run_update(&mut g, 0x3000, &ghist, r.meta, &[cond(2, false)], false);
        }
        // One taken outcome must not flip a now-strong counter.
        let r = predict(&mut g, 0x3000, &ghist);
        run_update(&mut g, 0x3000, &ghist, r.meta, &[cond(2, true)], false);
        let r2 = predict(&mut g, 0x3000, &ghist);
        assert_eq!(r2.pred.slot(2).taken, Some(false));
        let _ = r;
    }

    #[test]
    fn latency_below_two_rejected() {
        let result = std::panic::catch_unwind(|| {
            Gtag::new(GtagConfig {
                latency: 1,
                ..GtagConfig::b2(4)
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn storage_counts_tags_and_counters() {
        let g = Gtag::new(GtagConfig::b2(4));
        // 2048 x (1 valid + 10 tag + 4x2 counters + 2 useful)
        assert_eq!(g.storage().total_bits(), 2048 * 21);
    }
}
